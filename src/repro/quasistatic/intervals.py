"""Interval partitioning (paper §5.1, FTQS line 10).

After the tree's sub-schedules exist, we must decide *when* the online
scheduler should switch from a parent schedule SS_P to a sub-schedule
SS_i hanging off the completion of process P_i.  The paper traces all
(integer) completion times of P_i between the best-possible and the
worst-possible and compares the utility the two schedules would
produce; switching makes sense where SS_i wins, and is allowed only up
to the latest completion time t_ic at which SS_i still guarantees the
hard deadlines.

For the piecewise-constant utility functions the paper uses, the
utility-vs-completion-time curves of both tails are step functions, so
the comparison only changes value at a bounded set of *critical
points* (utility breakpoints shifted by each process's offset in the
tail, plus period-overrun points).  We therefore evaluate the
difference once per critical segment, which is exact and much cheaper
than evaluating every integer tick; when a non-piecewise-constant
utility function is present, a sampling fallback with a configurable
stride is mixed in.

The safety bound t_ic is found by bisection: the rebased sub-schedule's
worst-case analysis is monotone in its start time, so feasibility flips
exactly once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.model.application import Application
from repro.scheduling.fschedule import FSchedule
from repro.utility.stale import stale_coefficients


@dataclass(frozen=True)
class TailTerm:
    """One soft process of a schedule tail, as seen from the switch.

    Starting the tail at ``tc`` completes the process at ``tc + S``
    where ``S`` is the sum of the (random) execution times of the tail
    processes up to and including it.  The term records the mean and
    variance of ``S`` (execution times are independent uniforms on
    [BCET, WCET], the paper's §6 distribution) plus the bounds needed
    for the single-process exact case.
    """

    alpha: float
    fn: object
    mean: float
    variance: float
    lo_sum: int
    hi_sum: int
    count: int


def _survival(term: TailTerm, x: float) -> float:
    """P(S > x) under the tail-sum distribution of ``term``.

    Exact for a single uniform process; a normal (CLT) approximation
    for sums of two or more.  Degenerate (zero-variance) sums fall
    back to a step function.
    """
    if x < term.lo_sum:
        return 1.0
    if x >= term.hi_sum:
        return 0.0
    if term.count == 1 or term.variance <= 0:
        span = term.hi_sum - term.lo_sum
        if span <= 0:
            return 0.0
        return min(1.0, max(0.0, (term.hi_sum - x) / span))
    z = (x - term.mean) / math.sqrt(term.variance)
    return 0.5 * (1.0 - math.erf(z / math.sqrt(2.0)))


@dataclass(frozen=True)
class TailProfile:
    """Precomputed utility profile of a schedule tail.

    Exposes two evaluations at a switch time ``tc``:

    * :meth:`utility` — the deterministic average-case value (every
      process at its AET), the quantity FTSS optimizes;
    * :meth:`expected` — the expectation over the execution-time
      distribution, which is what actually materializes when the online
      scheduler commits to this tail at ``tc``.  Interval partitioning
      compares expectations: a point comparison at the AET can favour a
      tail whose utility breakpoint sits just beyond the average
      completion even though half the probability mass falls past it.
    """

    terms: Tuple[TailTerm, ...]
    period: int

    def utility(self, tc: int) -> float:
        """Average-case (point) utility of starting the tail at ``tc``."""
        total = 0.0
        for term in self.terms:
            t = tc + int(round(term.mean))
            if t > self.period or t < 0:
                continue
            total += term.alpha * term.fn.value_at(t)
        return total

    def expected(self, tc: int) -> float:
        """Expected utility of starting the tail at ``tc``.

        For piecewise-constant utility functions the expectation is
        computed exactly (given the survival-function model of the tail
        sums): Σ v_i · P(completion in segment i), with the period
        cutoff as a final zero-value segment.  Other functions are
        approximated by averaging over five distribution quantiles.
        """
        total = 0.0
        for term in self.terms:
            if term.fn.is_piecewise_constant():
                total += term.alpha * self._expected_piecewise(term, tc)
            else:
                total += term.alpha * self._expected_quantiles(term, tc)
        return total

    def _expected_piecewise(self, term: TailTerm, tc: int) -> float:
        # Segment boundaries (absolute completion times): the function
        # holds its value up to and including each breakpoint; beyond
        # the period everything is worth zero.
        boundaries = [b for b in term.fn.breakpoints() if b < self.period]
        boundaries.append(self.period)
        expected = 0.0
        prev_survival = 1.0
        prev_bound = None
        for bound in boundaries:
            survival = _survival(term, bound - tc)
            mass = prev_survival - survival
            if mass > 0:
                # Value on (prev_bound, bound]: sample just above the
                # previous boundary (value_at is right-continuous in
                # our step convention).
                probe = bound if prev_bound is None else prev_bound + 1
                expected += mass * term.fn.value_at(max(0, probe))
            prev_survival = survival
            prev_bound = bound
        # Beyond the period the value is zero - nothing to add.
        return expected

    def _expected_quantiles(self, term: TailTerm, tc: int) -> float:
        sigma = math.sqrt(max(term.variance, 0.0))
        expected = 0.0
        for z in (-1.2816, -0.5244, 0.0, 0.5244, 1.2816):
            s = term.mean + z * sigma
            s = min(max(s, term.lo_sum), term.hi_sum)
            t = tc + s
            value = 0.0 if t > self.period or t < 0 else term.fn.value_at(int(t))
            expected += value / 5.0
        return expected

    def critical_points(self, lo: int, hi: int, stride: int = 0) -> List[int]:
        """Sample points in [lo, hi] for the win/lose comparison.

        Includes ``lo``, the AET-shifted utility breakpoints and period
        overrun points (where the average-case value changes), plus a
        uniform grid — the expectation is smooth in ``tc``, so sign
        changes need grid coverage, not just breakpoints.
        """
        points = {lo, hi}
        for term in self.terms:
            offset = int(round(term.mean))
            if term.fn.is_piecewise_constant():
                for bp in term.fn.breakpoints():
                    candidate = bp - offset + 1
                    if lo <= candidate <= hi:
                        points.add(candidate)
            overrun = self.period - offset + 1
            if lo <= overrun <= hi:
                points.add(overrun)
        step = stride if stride > 0 else max(1, (hi - lo) // 48)
        points.update(range(lo, hi + 1, step))
        return sorted(points)


def tail_profile(
    app: Application, schedule: FSchedule, from_position: int = 0
) -> TailProfile:
    """Utility profile of ``schedule`` from entry ``from_position`` on.

    Accumulates the mean/variance of the completion-time sums; the α
    coefficients use the schedule's full dropping decision (prior and
    local), which does not depend on the start time.
    """
    alphas = stale_coefficients(app.graph, schedule.all_dropped)
    terms = []
    mean = 0.0
    variance = 0.0
    lo_sum = 0
    hi_sum = 0
    count = 0
    for entry in schedule.entries[from_position:]:
        proc = app.process(entry.name)
        mean += proc.aet
        span = proc.wcet - proc.bcet
        variance += (span * span) / 12.0
        lo_sum += proc.bcet
        hi_sum += proc.wcet
        count += 1
        if proc.is_soft:
            terms.append(
                TailTerm(
                    alpha=alphas[entry.name],
                    fn=proc.utility,
                    mean=mean,
                    variance=variance,
                    lo_sum=lo_sum,
                    hi_sum=hi_sum,
                    count=count,
                )
            )
    return TailProfile(terms=tuple(terms), period=app.period)


def rebased(schedule: FSchedule, start_time: int) -> FSchedule:
    """Copy of ``schedule`` starting at ``start_time`` (same decisions)."""
    return FSchedule(
        schedule.app,
        schedule.entries,
        start_time=start_time,
        fault_budget=schedule.fault_budget,
        prior_completed=schedule.prior_completed,
        prior_dropped=schedule.prior_dropped,
        slack_sharing=schedule.slack_sharing,
    )


def latest_safe_start(
    schedule: FSchedule, lo: int, hi: int
) -> Optional[int]:
    """Largest start time in [lo, hi] keeping ``schedule`` schedulable.

    ``None`` when the schedule is infeasible even when started at
    ``lo``.  Bisection is valid because every worst-case completion is
    ``start + constant``, so feasibility is monotone in the start time.
    """
    if not rebased(schedule, lo).is_schedulable():
        return None
    if rebased(schedule, hi).is_schedulable():
        return hi
    low, high = lo, hi  # invariant: low feasible, high infeasible
    while high - low > 1:
        mid = (low + high) // 2
        if rebased(schedule, mid).is_schedulable():
            low = mid
        else:
            high = mid
    return low


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of interval partitioning for one (parent, child) pair.

    ``intervals`` are the maximal inclusive completion-time windows
    where switching wins; ``improvement`` is the expected utility gain
    of having the switch available, assuming the completion time is
    uniform over the traced range — the quantity FTQS ranks children
    by ("the most significant improvement", paper §5.1).
    """

    intervals: Tuple[Tuple[int, int], ...]
    improvement: float

    @property
    def beneficial(self) -> bool:
        return bool(self.intervals) and self.improvement > 0


def partition(
    app: Application,
    parent: FSchedule,
    parent_position: int,
    child: FSchedule,
    lo: int,
    hi: int,
    stride: int = 0,
) -> PartitionResult:
    """Interval partitioning of one switch candidate (paper §5.1).

    Compares the expected utility of continuing ``parent`` after
    ``parent_position`` against starting ``child``, for completion
    times ``tc`` in ``[lo, hi]``; both tails cover the same remaining
    process set, so their utilities are directly comparable.  The
    returned windows carry a strictly positive gain and are clipped to
    the child's safety bound t_ic; the improvement score integrates
    the gain over the *traced* range (not just the winning windows),
    so a child that wins hugely on a sliver scores like one that wins
    slightly everywhere — matching an expected-utility view under a
    uniform completion-time prior.
    """
    if lo > hi:
        return PartitionResult(intervals=(), improvement=0.0)
    trace_span = hi - lo + 1
    safe_hi = latest_safe_start(child, lo, hi)
    if safe_hi is None:
        return PartitionResult(intervals=(), improvement=0.0)
    hi = min(hi, safe_hi)
    if lo > hi:
        return PartitionResult(intervals=(), improvement=0.0)
    parent_profile = tail_profile(app, parent, parent_position + 1)
    child_profile = tail_profile(app, child)
    points = sorted(
        set(parent_profile.critical_points(lo, hi, stride))
        | set(child_profile.critical_points(lo, hi, stride))
    )
    # Switching is worthwhile only when the child's *expected* utility
    # beats the parent's by a real margin: expectations are computed
    # under an approximate distribution model, so a hair-thin edge is
    # more likely model error than a genuine win (and each arc taken
    # costs a (cheap) runtime switch).
    margin = 1e-6
    intervals: List[Tuple[int, int]] = []
    gain_integral = 0.0
    current_start: Optional[int] = None
    for idx, point in enumerate(points):
        gain = child_profile.expected(point) - parent_profile.expected(point)
        seg_end = points[idx + 1] - 1 if idx + 1 < len(points) else hi
        wins = gain > margin
        if wins:
            gain_integral += gain * (seg_end - point + 1)
        if wins and current_start is None:
            current_start = point
        if not wins and current_start is not None:
            intervals.append((current_start, point - 1))
            current_start = None
        if wins and idx + 1 == len(points):
            intervals.append((current_start, seg_end))
            current_start = None
    valid = tuple((a, b) for a, b in intervals if a <= b)
    return PartitionResult(
        intervals=valid,
        improvement=gain_integral / trace_span,
    )


def beneficial_intervals(
    app: Application,
    parent: FSchedule,
    parent_position: int,
    child: FSchedule,
    lo: int,
    hi: int,
    stride: int = 0,
) -> List[Tuple[int, int]]:
    """Compatibility wrapper: just the winning windows of
    :func:`partition`."""
    return list(
        partition(app, parent, parent_position, child, lo, hi, stride).intervals
    )
