"""Schedule similarity for the FTQS expansion order (paper §5.1 line 4).

``FindMostSimilarSubschedule`` is left undefined in the paper beyond
its goal: "our strategy is to eventually generate the most different
sub-schedules" while the tree size is capped.  We quantify similarity
between two schedules as the normalized agreement of their orderings:

* positional agreement — the fraction of positions (over the shorter
  common tail of processes) executing the same process, and
* set agreement (Jaccard index) of the executed process sets (two
  schedules that drop different processes are less similar).

The expansion strategy in :mod:`repro.quasistatic.ftqs` picks, among
the not-yet-expanded nodes of the current layer, the one whose schedule
is *most similar* to the schedules already in the tree: such a node
contributes little diversity itself, so descending through it (whose
children re-plan from new completion times) is where new, genuinely
different schedules come from.  Ties break toward higher expected
utility, then lower node id (determinism).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.quasistatic.tree import QSNode, QSTree
from repro.scheduling.fschedule import FSchedule


def order_similarity(a: Sequence[str], b: Sequence[str]) -> float:
    """Positional agreement of two process orders, in [0, 1]."""
    if not a and not b:
        return 1.0
    common = min(len(a), len(b))
    if common == 0:
        return 0.0
    matches = sum(1 for x, y in zip(a, b) if x == y)
    return matches / max(len(a), len(b))


def set_similarity(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard index of the executed process sets, in [0, 1]."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def schedule_similarity(a: FSchedule, b: FSchedule) -> float:
    """Combined similarity of two schedules, in [0, 1].

    Average of the positional and set agreements; 1.0 means identical
    order and process selection.
    """
    return 0.5 * (
        order_similarity(a.order, b.order) + set_similarity(a.order, b.order)
    )


def similarity_to_tree(tree: QSTree, node: QSNode) -> float:
    """Highest similarity of ``node``'s schedule to any *other* node."""
    best = 0.0
    for other in tree:
        if other.node_id == node.node_id:
            continue
        best = max(best, schedule_similarity(node.schedule, other.schedule))
    return best


def find_most_similar_unexpanded(
    tree: QSTree, layer: int
) -> Optional[QSNode]:
    """FTQS line 4: the node to expand next on ``layer``.

    Returns ``None`` when every node of the layer has been expanded
    (FTQS then moves to the next layer).
    """
    candidates: List[QSNode] = [
        n for n in tree if n.layer == layer and not n.expanded
    ]
    if not candidates:
        return None

    def key(node: QSNode):
        return (
            -similarity_to_tree(tree, node),
            -node.schedule.expected_utility(),
            node.node_id,
        )

    return min(candidates, key=key)
