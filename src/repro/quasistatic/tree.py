"""The fault-tolerant quasi-static tree Φ (paper §3, Fig. 5).

The tree's nodes are f-schedules; its arcs are *schedule switches*,
annotated with the condition under which the online scheduler performs
them: "if process P_i completes in the interval [lo, hi] (and at least
``required_faults`` faults have been observed), switch to the child
schedule".  The completion-time intervals come from interval
partitioning (:mod:`repro.quasistatic.intervals`); the fault condition
realizes the fault-specific schedule groups of Fig. 5 — a child
generated under the assumption that ``f`` faults already happened
reserves recovery slack for only ``k - f`` more, so the switch is safe
only once at least ``f`` faults have indeed been observed.

Children contain only the *tail* of the execution: a child switched-to
after P_i lists the processes scheduled from that point on; the prefix
(recorded in the child schedule's ``prior_completed``) already ran
under the parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.errors import SchedulingError
from repro.scheduling.fschedule import FSchedule


@dataclass(frozen=True)
class SwitchArc:
    """A conditional schedule switch (an arc of the quasi-static tree).

    Attributes
    ----------
    process:
        The process whose completion triggers the evaluation of this
        arc (completion *after* any re-executions).
    lo, hi:
        Inclusive completion-time interval in which switching is both
        beneficial for the expected utility and safe for the hard
        deadlines (``hi`` is capped by the latest safe switch time
        t_ic of §5.1).
    required_faults:
        Minimum number of faults that must have been observed for the
        switch to be safe; the target schedule only reserves recovery
        slack for ``k - required_faults`` further faults.
    target:
        Node id of the child schedule.
    """

    process: str
    lo: int
    hi: int
    required_faults: int
    target: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise SchedulingError(
                f"empty switch interval [{self.lo}, {self.hi}]"
            )
        if self.required_faults < 0:
            raise SchedulingError("required_faults must be non-negative")

    def matches(self, completion_time: int, observed_faults: int) -> bool:
        """True when the observed situation satisfies the condition."""
        return (
            self.lo <= completion_time <= self.hi
            and observed_faults >= self.required_faults
        )


@dataclass
class QSNode:
    """One node of the quasi-static tree: an f-schedule plus metadata."""

    node_id: int
    schedule: FSchedule
    parent_id: Optional[int] = None
    layer: int = 0
    switch_process: Optional[str] = None
    assumed_faults: int = 0
    expanded: bool = False
    arcs: List[SwitchArc] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def arcs_for(self, process: str) -> List[SwitchArc]:
        """Arcs evaluated when ``process`` completes."""
        return [a for a in self.arcs if a.process == process]


class QSTree:
    """The quasi-static tree Φ: nodes, arcs and bookkeeping for FTQS."""

    def __init__(self, root_schedule: FSchedule):
        self._nodes: Dict[int, QSNode] = {}
        self._next_id = 0
        self.root_id = self._add(
            QSNode(node_id=0, schedule=root_schedule, layer=0)
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add(self, node: QSNode) -> int:
        if node.node_id != self._next_id:
            raise SchedulingError("node ids must be assigned by the tree")
        self._nodes[node.node_id] = node
        self._next_id += 1
        return node.node_id

    def add_child(
        self,
        parent_id: int,
        schedule: FSchedule,
        switch_process: str,
        assumed_faults: int,
        layer: int,
    ) -> QSNode:
        """Attach a sub-schedule below ``parent_id`` (arcs added later).

        The switch *condition* is attached separately once interval
        partitioning has run; a child without any arc is unreachable
        and pruned by :meth:`prune_unreachable`.
        """
        parent = self.node(parent_id)
        if switch_process not in parent.schedule:
            raise SchedulingError(
                f"switch process {switch_process!r} not in parent schedule"
            )
        node = QSNode(
            node_id=self._next_id,
            schedule=schedule,
            parent_id=parent_id,
            layer=layer,
            switch_process=switch_process,
            assumed_faults=assumed_faults,
        )
        self._add(node)
        return node

    def add_arc(self, parent_id: int, arc: SwitchArc) -> None:
        if arc.target not in self._nodes:
            raise SchedulingError(f"arc targets unknown node {arc.target}")
        self.node(parent_id).arcs.append(arc)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> QSNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SchedulingError(f"unknown node id {node_id}") from None

    @property
    def root(self) -> QSNode:
        return self.node(self.root_id)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[QSNode]:
        return iter(self._nodes.values())

    def nodes(self) -> List[QSNode]:
        return list(self._nodes.values())

    def children(self, node_id: int) -> List[QSNode]:
        return [n for n in self._nodes.values() if n.parent_id == node_id]

    def different_schedules(self) -> int:
        """Number of *distinct* schedules in the tree (FTQS line 3).

        Distinctness is judged by the schedule signature (order and
        re-execution caps), matching the paper's intent of counting
        genuinely different scheduling alternatives, not tree nodes.
        """
        return len({n.schedule.signature() for n in self._nodes.values()})

    def depth(self) -> int:
        """Longest root-to-leaf distance (in switches)."""
        depths = {self.root_id: 0}
        frontier = [self.root_id]
        best = 0
        while frontier:
            nid = frontier.pop()
            for child in self.children(nid):
                depths[child.node_id] = depths[nid] + 1
                best = max(best, depths[child.node_id])
                frontier.append(child.node_id)
        return best

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def prune_unreachable(self) -> int:
        """Remove nodes no arc points to; returns the number removed.

        Interval partitioning may find that switching to a generated
        sub-schedule is never beneficial (or never safe); such nodes
        would only waste the memory the paper's M budget is there to
        protect.
        """
        reachable: Set[int] = {self.root_id}
        frontier = [self.root_id]
        while frontier:
            nid = frontier.pop()
            for arc in self.node(nid).arcs:
                if arc.target not in reachable:
                    reachable.add(arc.target)
                    frontier.append(arc.target)
        doomed = [nid for nid in self._nodes if nid not in reachable]
        for nid in doomed:
            del self._nodes[nid]
        for node in self._nodes.values():
            node.arcs = [a for a in node.arcs if a.target in reachable]
        return len(doomed)

    def validate(self) -> None:
        """Check structural invariants; raises on violation."""
        for node in self._nodes.values():
            if node.parent_id is not None and node.parent_id not in self._nodes:
                raise SchedulingError(
                    f"node {node.node_id} has unknown parent {node.parent_id}"
                )
            for arc in node.arcs:
                if arc.target not in self._nodes:
                    raise SchedulingError(
                        f"node {node.node_id} arc targets missing node "
                        f"{arc.target}"
                    )
                if arc.process not in node.schedule:
                    raise SchedulingError(
                        f"node {node.node_id} arc keyed on {arc.process!r} "
                        f"which its schedule does not contain"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QSTree(nodes={len(self)}, distinct="
            f"{self.different_schedules()}, depth={self.depth()})"
        )
