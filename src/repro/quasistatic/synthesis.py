"""Fast FTQS synthesis engine (the design-time counterpart of PR 1/2).

:mod:`repro.quasistatic.ftqs` remains the *behavioral oracle* of tree
construction — deliberately simple, one full FTSS run per candidate,
interval partitioning evaluated point by point.  This module rebuilds
that hot path for paper-scale sweeps while producing **byte-identical
trees** (``tests/test_synthesis_differential.py`` asserts node, arc,
interval and schedule equality over a randomized corpus, for any job
count):

* **Memoized tail scheduling** — one :class:`_Ctx` per build compiles
  the application into lookup tables (execution times, recovery needs,
  soft successor lists, the global modified-deadline EDF order) and
  memoizes every pure evaluation the FTSS heuristics repeat:
  stale-value coefficient maps per dropped set, greedy soft orders and
  hypothetical utilities per (pool, clock, dropped set), and whole
  tail schedules per (budget, start, completed, dropped).  The
  feasibility probes run against :class:`_FastOracle`, which shares
  the app tables, filters the prefix's hard order out of the global
  EDF sort (a subsequence of a static sort is the sort of the subset)
  and collapses the per-probe hard-tail walk using the fact that hard
  processes carry full-budget re-execution caps, so only the running
  maximum of their recovery costs can contribute to the shared demand.

* **Vectorized interval partitioning** — the safety bound t_ic falls
  out of a closed form (worst-case completions are ``start + const``,
  so feasibility flips at ``min(deadline_i - const_i, period -
  const_last)``; no bisection), and the expected-utility profiles are
  evaluated over *all* critical points at once with NumPy, keeping the
  scalar path's accumulation order per point so every float is
  bit-identical.  Schedule similarity is maintained incrementally (a
  per-node running maximum updated on insertion) instead of O(tree)
  per query.

* **Parallel candidate layer** — the candidates of one FTQS expansion
  are independent; with ``jobs > 1`` they are sharded across a
  persistent :class:`~repro.runtime.engine.parallel.TaskPool` whose
  workers hold their own engine context, and merged in generation
  order, so the admitted children (and therefore node ids, arcs and
  the final tree) are identical for any job count.
"""

from __future__ import annotations

import math
import time
import weakref
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.quasistatic.ftqs import DEFAULT_FTQS_CONFIG, FTQSConfig
from repro.quasistatic.intervals import PartitionResult, TailProfile, TailTerm
from repro.quasistatic.similarity import schedule_similarity
from repro.quasistatic.tree import QSNode, QSTree, SwitchArc
from repro.scheduling.feasibility import TopNeeds
from repro.scheduling.fschedule import FSchedule, ScheduledEntry
from repro.scheduling.ftss import ftss
from repro.scheduling.priority import SUCCESSOR_WEIGHT
from repro.scheduling.schedulability import edf_hard_order
from repro.utility.functions import StepUtility, TabulatedUtility
from repro.utility.stale import stale_coefficients

def _compile_utility(process) -> Callable[[int], float]:
    """A fast evaluator for ``process.utility_at``.

    Step-shaped functions (the paper's canonical shape) compile into a
    bisect over their breakpoint times with the *stored* step values,
    so every returned float is the exact object the interpreted scan
    would return.  Other shapes keep the bound method.
    """
    fn = getattr(process, "utility", None)
    if isinstance(fn, StepUtility):
        times = [t for t, _ in fn.steps]
        values = [v for _, v in fn.steps]
        initial = fn.initial

        def step_value(t: int) -> float:
            # value_at applies every step with step_t < t.
            taken = bisect_left(times, t)
            return initial if taken == 0 else values[taken - 1]

        return step_value
    if isinstance(fn, TabulatedUtility):
        times = [t for t, _ in fn.samples]
        values = [v for _, v in fn.samples]

        def tabulated_value(t: int) -> float:
            # value_at applies every sample with sample_t <= t.
            taken = bisect_right(times, t)
            return values[0] if taken == 0 else values[taken - 1]

        return tabulated_value
    return process.utility_at


def _demand(items: List[Tuple[int, int]], faults: int) -> int:
    """:func:`shared_recovery_demand` with tuple-order sorting.

    Sorting ``(cost, cap)`` tuples descending instead of by ``-cost``
    only reorders equal-cost entries, which cannot change the greedy
    total (equal-cost takes commute), and skips the per-call lambda.
    """
    if faults <= 0:
        return 0
    remaining = faults
    total = 0
    for cost, cap in sorted(items, reverse=True):
        if remaining <= 0:
            break
        take = cap if cap < remaining else remaining
        total += take * cost
        remaining -= take
    return total


@dataclass
class SynthesisStats:
    """Counters of one (or several, merged) fast tree constructions.

    ``memo_hits`` counts candidates whose tail schedule came out of the
    memo instead of a fresh FTSS run; with ``jobs > 1`` the workers'
    memos are process-local, so the counters reflect only parent-side
    work.  ``store_hits``/``store_misses`` count tree-store lookups
    when the caller synthesizes through a
    :class:`repro.pipeline.store.TreeStore` (a hit skips the build
    entirely, so ``trees_built`` stays untouched); a corrupted or
    error-raising entry counts as a miss.  :meth:`absorb_store` folds
    in the store's backend-level error count and backend name so the
    summary line can report them.
    """

    trees_built: int = 0
    nodes_expanded: int = 0
    candidates_evaluated: int = 0
    memo_hits: int = 0
    tails_scheduled: int = 0
    wall_seconds: float = 0.0
    store_hits: int = 0
    store_misses: int = 0
    store_errors: int = 0
    store_retries: int = 0
    store_degraded: int = 0
    store_backend: str = ""

    def merge(self, other: "SynthesisStats") -> None:
        self.trees_built += other.trees_built
        self.nodes_expanded += other.nodes_expanded
        self.candidates_evaluated += other.candidates_evaluated
        self.memo_hits += other.memo_hits
        self.tails_scheduled += other.tails_scheduled
        self.wall_seconds += other.wall_seconds
        self.store_hits += other.store_hits
        self.store_misses += other.store_misses
        self.store_errors += other.store_errors
        self.store_retries += other.store_retries
        self.store_degraded += other.store_degraded
        self.store_backend = self.store_backend or other.store_backend

    def absorb_store(self, store) -> None:
        """Fold one :class:`~repro.pipeline.store.TreeStore`'s
        backend-level view in: the read-error count (entries that
        raised and degraded to misses) and the backend's name.  Hits
        and misses are *not* taken from the store — the pipeline
        counts them per run, while a shared store's counters span its
        whole lifetime."""
        metrics = store.metrics
        self.store_errors += metrics.errors
        self.store_retries += metrics.retries
        self.store_degraded += metrics.degraded
        self.store_backend = store.backend_name

    def summary_line(self) -> str:
        """One-line summary mirroring the simulate fast-path line."""
        store = ""
        if (
            self.store_hits
            or self.store_misses
            or self.store_errors
            or self.store_backend
        ):
            backend = self.store_backend or "store"
            store = (
                f", store[{backend}] {self.store_hits} hits / "
                f"{self.store_misses} misses / "
                f"{self.store_errors} errors"
            )
            # Resilience counters ride along only when they fired, so
            # the common-case line (and its exact-string tests) is
            # unchanged.
            if self.store_retries:
                store += f" / {self.store_retries} retries"
            if self.store_degraded:
                store += (
                    f" / {self.store_degraded} degraded-to-memory ops"
                )
        return (
            f"synthesis: {self.trees_built} tree(s), "
            f"{self.nodes_expanded} nodes expanded, "
            f"{self.candidates_evaluated} candidates "
            f"({self.memo_hits} memo hits), "
            f"{self.wall_seconds:.2f}s"
            f"{store}"
        )


class _Ctx:
    """Compiled per-application tables plus the evaluation memos."""

    def __init__(self, app, config: FTQSConfig):
        self.app = app
        self.config = config
        graph = app.graph
        self.period = app.period
        self.names: List[str] = list(graph.process_names)
        self.wcet = {p.name: p.wcet for p in app.processes}
        self.bcet = {p.name: p.bcet for p in app.processes}
        self.aet = {p.name: p.aet for p in app.processes}
        self.deadline = {p.name: p.deadline for p in app.processes}
        self.need = {p.name: app.recovery_need(p.name) for p in app.processes}
        self.mu = {
            p.name: app.recovery_overhead(p.name) for p in app.processes
        }
        self.hard_set: Set[str] = {p.name for p in app.hard}
        self.soft_set: Set[str] = {p.name for p in app.soft}
        self.soft_names: List[str] = [p.name for p in app.soft]
        self.preds = {n: graph.predecessors(n) for n in self.names}
        self.succs = {n: graph.successors(n) for n in self.names}
        self.utility_at = {
            n: _compile_utility(graph[n]) for n in self.names
        }
        # Soft successors only: the lookahead term of the MU priority
        # skips hard successors unconditionally, so prefiltering them
        # does not change which terms enter the sum.
        self.soft_succ = {
            n: [
                (s, self.aet[s], self.utility_at[s])
                for s in self.succs[n]
                if s in self.soft_set
            ]
            for n in self.names
        }
        # Global modified-deadline EDF order of every hard process: the
        # order is a static sort, so the remaining-hard order of any
        # prefix is this list filtered (see schedulability.py).
        self.edf_hard_full: List[str] = edf_hard_order(
            app, [p.name for p in app.hard]
        )
        self.decision_time = (
            self.aet if config.ftss.optimize_for == "aet" else self.wcet
        )
        self._alphas: Dict[FrozenSet[str], Dict[str, float]] = {}
        self._greedy: Dict[Tuple, List[str]] = {}
        self._hyp: Dict[Tuple, float] = {}

    # ------------------------------------------------------------------
    # Memoized pure evaluations
    # ------------------------------------------------------------------
    def alphas(self, dropped: FrozenSet[str]) -> Dict[str, float]:
        """Stale coefficients per dropped set (delegates on miss)."""
        hit = self._alphas.get(dropped)
        if hit is None:
            hit = stale_coefficients(self.app.graph, dropped)
            self._alphas[dropped] = hit
        return hit

    def priorities(
        self,
        ready: Sequence[str],
        clock: int,
        dropped: FrozenSet[str],
        alphas: Dict[str, float],
        weight: float,
    ) -> Dict[str, float]:
        """Exact clone of :func:`repro.scheduling.priority.soft_priorities`."""
        period = self.period
        aet = self.aet
        utility_at = self.utility_at
        soft_succ = self.soft_succ
        out: Dict[str, float] = {}
        for name in ready:
            duration = aet[name]
            completion = clock + duration
            if completion > period:
                own = 0.0
            else:
                own = alphas[name] * utility_at[name](completion)
            lookahead = 0.0
            for succ, succ_aet, succ_utility in soft_succ[name]:
                if succ in dropped:
                    continue
                succ_completion = completion + succ_aet
                if succ_completion > period:
                    continue
                lookahead += alphas[succ] * succ_utility(succ_completion)
            out[name] = (own + weight * lookahead) / max(duration, 1)
        return out

    @staticmethod
    def best_of(priorities: Dict[str, float]) -> str:
        """``max(sorted(names), key=priorities.get)`` without sorting:
        the smallest name among the argmax set (same pick for any
        iteration order)."""
        pick = None
        best = None
        for name, value in priorities.items():
            if (
                best is None
                or value > best
                or (value == best and name < pick)
            ):
                best = value
                pick = name
        return pick

    def greedy_order(
        self, pool: Sequence[str], now: int, dropped: FrozenSet[str]
    ) -> List[str]:
        """Memoized clone of :func:`repro.scheduling.dropping.greedy_soft_order`.

        Maintains in-pool predecessor counts instead of rescanning the
        remaining set, which turns the ready-list maintenance from
        O(s²·deg) into O(s + edges) per call.  Callers must not mutate
        the returned list.
        """
        key = (frozenset(pool), now, dropped)
        hit = self._greedy.get(key)
        if hit is not None:
            return hit
        alphas = self.alphas(dropped)
        remaining = set(key[0])
        preds = self.preds
        indegree = {
            n: sum(1 for p in preds[n] if p in remaining) for n in remaining
        }
        order: List[str] = []
        clock = now
        while remaining:
            ready = [n for n in remaining if indegree[n] == 0]
            if not ready:
                # Mirror the reference's cycle fallback.
                ready = sorted(remaining)
            priorities = self.priorities(
                ready, clock, dropped, alphas, SUCCESSOR_WEIGHT
            )
            pick = self.best_of(priorities)
            order.append(pick)
            remaining.remove(pick)
            for succ in self.succs[pick]:
                if succ in remaining:
                    indegree[succ] -= 1
            clock += self.aet[pick]
        self._greedy[key] = order
        return order

    def hyp_utility(
        self, order: Sequence[str], now: int, dropped: FrozenSet[str]
    ) -> float:
        """Memoized clone of :func:`repro.scheduling.dropping.hypothetical_utility`."""
        key = (tuple(order), now, dropped)
        hit = self._hyp.get(key)
        if hit is not None:
            return hit
        executed = set(order)
        dropped_all = set(dropped)
        for name in self.soft_names:
            if name not in executed and name not in dropped_all:
                dropped_all.add(name)
        alphas = self.alphas(frozenset(dropped_all))
        clock = now
        total = 0.0
        period = self.period
        for name in order:
            clock += self.aet[name]
            if clock > period:
                continue
            total += alphas[name] * self.utility_at[name](clock)
        self._hyp[key] = total
        return total


class _FastOracle:
    """Drop-in for :class:`~repro.scheduling.feasibility.FeasibilityOracle`
    over the compiled app tables.

    Exactness argument for the collapsed hard-tail walk: the reference
    probe appends each remaining hard process with a full-budget
    re-execution cap to the demand top-list and re-evaluates the shared
    demand.  A cap ≥ budget entry absorbs every fault not claimed by a
    strictly more expensive entry, so of all hard entries appended so
    far only the one with the maximal recovery cost can contribute —
    the demand equals ``shared_recovery_demand(prefix items + candidate
    item + (running max hard cost, budget))``, which only needs
    recomputing when the running maximum changes.  All quantities are
    integers, so equality is exact
    (``tests/test_synthesis_differential.py::
    test_fast_oracle_matches_reference_oracle`` cross-checks against
    the reference oracle on randomized prefixes and probes).
    """

    __slots__ = (
        "ctx",
        "budget",
        "slack_sharing",
        "_start",
        "_prefix_wcet",
        "_top",
        "_private_demand",
        "_prefix_infeasible",
        "_hard_scheduled",
        "_hard_order",
        "_rem",
        "_soft_limit",
    )

    def __init__(
        self,
        ctx: _Ctx,
        fault_budget: int,
        start_time: int,
        prior_completed: FrozenSet[str],
        slack_sharing: bool,
    ):
        self.ctx = ctx
        self.budget = fault_budget
        self.slack_sharing = slack_sharing
        self._start = start_time
        self._prefix_wcet = 0
        self._top = TopNeeds(fault_budget)
        self._private_demand = 0
        self._prefix_infeasible = False
        self._hard_scheduled: Set[str] = set()
        self._hard_order = [
            n for n in ctx.edf_hard_full if n not in prior_completed
        ]
        self._rem: Optional[List[Tuple[str, int, int, int]]] = None
        self._soft_limit: Optional[int] = None

    def on_schedule(self, name: str, reexecutions: int) -> None:
        ctx = self.ctx
        self._prefix_wcet += ctx.wcet[name]
        if reexecutions > 0:
            # The soft-probe limit depends only on the demand state and
            # the remaining hard order — invalidate it exactly when one
            # of those changes (below for the hard order).
            self._soft_limit = None
            if self.slack_sharing:
                self._top.add(ctx.need[name], reexecutions)
            else:
                self._private_demand += ctx.need[name] * min(
                    reexecutions, self.budget
                )
        if name in ctx.hard_set:
            self._hard_scheduled.add(name)
            self._rem = None
            self._soft_limit = None
            demand = (
                self._top.demand()
                if self.slack_sharing
                else self._private_demand
            )
            if self._start + self._prefix_wcet + demand > ctx.deadline[name]:
                self._prefix_infeasible = True

    def _remaining(self) -> List[Tuple[str, int, int, int]]:
        if self._rem is None:
            ctx = self.ctx
            scheduled = self._hard_scheduled
            self._rem = [
                (n, ctx.wcet[n], ctx.need[n], ctx.deadline[n])
                for n in self._hard_order
                if n not in scheduled
            ]
        return self._rem

    def _soft_probe_limit(self) -> int:
        """Largest pre-hard-tail clock a zero-re-execution soft probe
        may reach and stay feasible.

        The hard-tail walk for ``extra=None`` depends only on the
        prefix state: its demand sequence is fixed, so the per-step
        deadline tests collapse to one precomputed bound —
        ``min_j(deadline_j - Σwcet_j - demand_j)`` plus the period
        test — and each probe is a single integer comparison.
        """
        if self._soft_limit is None:
            budget = self.budget
            cum_wcet = 0
            limit: Optional[int] = None
            if self.slack_sharing:
                base_items = self._top._items
                demand = self._top.demand()
                running_max = -1
                for _, wcet, need, deadline in self._remaining():
                    cum_wcet += wcet
                    if need > running_max:
                        running_max = need
                        demand = _demand(
                            base_items + [(running_max, budget)], budget
                        )
                    slack = deadline - cum_wcet - demand
                    if limit is None or slack < limit:
                        limit = slack
            else:
                demand = self._private_demand
                for _, wcet, need, deadline in self._remaining():
                    cum_wcet += wcet
                    demand += need * budget
                    slack = deadline - cum_wcet - demand
                    if limit is None or slack < limit:
                        limit = slack
            period_slack = self.ctx.period - cum_wcet - demand
            if limit is None or period_slack < limit:
                limit = period_slack
            self._soft_limit = limit
        return self._soft_limit

    def check(
        self, candidate: str, reexecutions: Optional[int] = None
    ) -> bool:
        if self._prefix_infeasible:
            return False
        ctx = self.ctx
        budget = self.budget
        hard_candidate = candidate in ctx.hard_set
        if reexecutions is None:
            reexecutions = budget if hard_candidate else 0
        clock = self._start + self._prefix_wcet + ctx.wcet[candidate]
        if not hard_candidate and reexecutions == 0:
            return clock <= self._soft_probe_limit()
        if self.slack_sharing:
            extra = (
                (ctx.need[candidate], reexecutions)
                if reexecutions > 0
                else None
            )
            demand = self._top.demand(extra)
        else:
            demand = self._private_demand + ctx.need[candidate] * min(
                reexecutions, budget
            )
        if hard_candidate and clock + demand > ctx.deadline[candidate]:
            return False

        if self.slack_sharing:
            base_items = list(self._top._items)
            if extra is not None:
                base_items.append((extra[0], min(extra[1], budget)))
            running_max = -1
            for name, wcet, need, deadline in self._remaining():
                if name == candidate:
                    continue
                clock += wcet
                if need > running_max:
                    running_max = need
                    demand = _demand(
                        base_items + [(running_max, budget)], budget
                    )
                if clock + demand > deadline:
                    return False
        else:
            for name, wcet, need, deadline in self._remaining():
                if name == candidate:
                    continue
                clock += wcet
                demand += need * budget
                if clock + demand > deadline:
                    return False
        return clock + demand <= ctx.period

    def schedulable_subset(self, candidates: Sequence[str]) -> List[str]:
        return [name for name in candidates if self.check(name)]

    def extended(self, name: str, reexecutions: int) -> "_FastOracle":
        clone = _FastOracle.__new__(_FastOracle)
        clone.ctx = self.ctx
        clone.budget = self.budget
        clone.slack_sharing = self.slack_sharing
        clone._start = self._start
        clone._prefix_wcet = self._prefix_wcet
        clone._top = self._top.copy()
        clone._private_demand = self._private_demand
        clone._prefix_infeasible = self._prefix_infeasible
        clone._hard_scheduled = set(self._hard_scheduled)
        clone._hard_order = self._hard_order
        clone._rem = self._rem  # rebuilt lists are never mutated
        clone._soft_limit = self._soft_limit
        clone.on_schedule(name, reexecutions)
        return clone


class _TailRun:
    """One fast FTSS run — an exact clone of :func:`repro.scheduling.ftss.ftss`
    over the compiled tables and memos (``fast_paths=True`` semantics;
    runs with ``fast_paths=False`` are delegated to the reference)."""

    def __init__(
        self,
        ctx: _Ctx,
        fault_budget: int,
        start_time: int,
        prior_completed: FrozenSet[str],
        prior_dropped: FrozenSet[str],
    ):
        self.ctx = ctx
        self.config = ctx.config.ftss
        self.budget = fault_budget
        self.start_time = start_time
        self.prior_completed = prior_completed
        self.prior_dropped = prior_dropped
        self.entries: List[ScheduledEntry] = []
        self.dropped: Set[str] = set()
        self.clock = start_time
        self._scheduled: Set[str] = set()
        self._settled: Set[str] = set(prior_completed) | set(prior_dropped)
        self._all_dropped: FrozenSet[str] = frozenset(prior_dropped)
        self.ready: Set[str] = set()
        for name in ctx.names:
            if name in self._settled:
                continue
            if all(p in self._settled for p in ctx.preds[name]):
                self.ready.add(name)
        self.oracle = _FastOracle(
            ctx,
            fault_budget,
            start_time,
            prior_completed,
            self.config.slack_sharing,
        )

    # -- state transitions ---------------------------------------------
    def _settle(self, name: str) -> None:
        self._settled.add(name)
        self.ready.discard(name)
        for succ in self.ctx.succs[name]:
            if succ not in self._settled and all(
                p in self._settled for p in self.ctx.preds[succ]
            ):
                self.ready.add(succ)

    def _drop(self, name: str) -> None:
        self.dropped.add(name)
        self._all_dropped = frozenset(self.dropped | self.prior_dropped)
        self._settle(name)

    def _schedule(self, name: str, reexecutions: int) -> None:
        self.entries.append(ScheduledEntry(name, reexecutions))
        self.clock += self.ctx.decision_time[name]
        self.oracle.on_schedule(name, reexecutions)
        self._scheduled.add(name)
        self._settle(name)

    def _unscheduled_soft(self) -> List[str]:
        return [
            n
            for n in self.ctx.soft_names
            if n not in self._scheduled
            and n not in self._all_dropped
            and n not in self.prior_completed
        ]

    # -- heuristic steps ------------------------------------------------
    def _determine_dropping(self, ready: Sequence[str]) -> List[str]:
        ctx = self.ctx
        dropped = self._all_dropped
        pool = self._unscheduled_soft()
        keep_order = ctx.greedy_order(pool, self.clock, dropped)
        keep_utility = ctx.hyp_utility(keep_order, self.clock, dropped)
        to_drop: List[str] = []
        for name in ready:
            if name not in ctx.soft_set:
                continue
            rest = [n for n in keep_order if n != name]
            drop_utility = ctx.hyp_utility(
                rest, self.clock, dropped | {name}
            )
            if keep_utility <= drop_utility:
                to_drop.append(name)
        return to_drop

    def _forced_choice(self, ready_soft: Sequence[str]) -> Optional[str]:
        if not ready_soft:
            return None
        ctx = self.ctx
        dropped = self._all_dropped
        pool = self._unscheduled_soft()
        keep_order = ctx.greedy_order(pool, self.clock, dropped)
        keep_utility = ctx.hyp_utility(keep_order, self.clock, dropped)
        losses: Dict[str, float] = {}
        for name in ready_soft:
            rest = [n for n in keep_order if n != name]
            drop_utility = ctx.hyp_utility(
                rest, self.clock, dropped | {name}
            )
            losses[name] = keep_utility - drop_utility
        return min(sorted(losses), key=lambda n: losses[n])

    def _best_process(self, candidates: Sequence[str]) -> str:
        ctx = self.ctx
        soft_candidates = [n for n in candidates if n in ctx.soft_set]
        if soft_candidates:
            dropped = self._all_dropped
            priorities = ctx.priorities(
                soft_candidates,
                self.clock,
                dropped,
                ctx.alphas(dropped),
                self.config.successor_weight,
            )
            return ctx.best_of(priorities)
        hard_candidates = [n for n in candidates if n in ctx.hard_set]
        return min(
            sorted(hard_candidates), key=lambda n: (ctx.deadline[n], n)
        )

    def _allotment(self, name: str) -> int:
        ctx = self.ctx
        config = self.config
        if not config.soft_reexecution or self.budget == 0:
            return 0
        rest = [n for n in self._unscheduled_soft() if n != name]
        without: Optional[_FastOracle] = None
        without_checks: Dict[str, bool] = {}
        granted = 0
        for r in range(1, self.budget + 1):
            if not self.oracle.check(name, reexecutions=r):
                break
            if rest:
                # Second-order probe: would the reserved slack push
                # other soft processes out of schedulability?  The
                # no-grant side does not depend on r — probe it once.
                if without is None:
                    without = self.oracle.extended(name, 0)
                with_grant = self.oracle.extended(name, r)
                squeezed = False
                for other in rest:
                    ok_without = without_checks.get(other)
                    if ok_without is None:
                        ok_without = without.check(other)
                        without_checks[other] = ok_without
                    if ok_without and not with_grant.check(other):
                        squeezed = True
                        break
                if squeezed:
                    break
            if not self._beneficial(name, r, rest):
                break
            granted = r
        return granted

    def _beneficial(self, name: str, r: int, rest: Sequence[str]) -> bool:
        ctx = self.ctx
        t = ctx.decision_time[name]
        mu = ctx.mu[name]
        dropped = self._all_dropped

        completion = self.clock + (r + 1) * t + r * mu
        keep_order = ctx.greedy_order(rest, completion, dropped)
        keep_utility = ctx.hyp_utility(
            [name] + keep_order, self.clock + r * (t + mu), dropped
        )

        giveup_time = self.clock + r * t + (r - 1) * mu if r > 0 else self.clock
        drop_dropped = dropped | {name}
        drop_order = ctx.greedy_order(rest, giveup_time, drop_dropped)
        drop_utility = ctx.hyp_utility(drop_order, giveup_time, drop_dropped)
        return keep_utility > drop_utility

    # -- the list-scheduling loop ---------------------------------------
    def run(self) -> Optional[FSchedule]:
        ctx = self.ctx
        config = self.config
        while self.ready:
            ready_sorted = sorted(self.ready)
            if config.drop_heuristic:
                for name in self._determine_dropping(ready_sorted):
                    self._drop(name)
                if not self.ready:
                    break
                ready_sorted = sorted(self.ready)

            schedulable = self.oracle.schedulable_subset(ready_sorted)

            while not schedulable:
                ready_soft = [
                    n for n in sorted(self.ready) if n in ctx.soft_set
                ]
                victim = self._forced_choice(ready_soft)
                if victim is None:
                    break
                self._drop(victim)
                if not self.ready:
                    break
                schedulable = self.oracle.schedulable_subset(
                    sorted(self.ready)
                )
            if not self.ready:
                break
            if not schedulable:
                return None

            best = self._best_process(schedulable)
            if best in ctx.hard_set:
                reexecutions = self.budget
            else:
                reexecutions = self._allotment(best)
            self._schedule(best, reexecutions)

        schedule = FSchedule(
            ctx.app,
            self.entries,
            start_time=self.start_time,
            fault_budget=self.budget,
            prior_completed=self.prior_completed,
            prior_dropped=self.prior_dropped,
            slack_sharing=config.slack_sharing,
        )
        if not schedule.is_schedulable():
            return None
        return schedule


# ----------------------------------------------------------------------
# Vectorized interval partitioning
# ----------------------------------------------------------------------
def fast_latest_safe_start(
    schedule: FSchedule, lo: int, hi: int, ctx: Optional[_Ctx] = None
) -> Optional[int]:
    """Closed-form :func:`repro.quasistatic.intervals.latest_safe_start`.

    Every worst-case completion of a rebased schedule is ``start +
    const`` with the constant independent of the start time, so the
    schedule is feasible exactly for ``start <= min_i(deadline_i -
    const_i, period - const_last)`` — no bisection needed.
    """
    app = schedule.app
    scheduled = {e.name for e in schedule.entries}
    for proc in app.hard:
        if proc.name not in scheduled and proc.name not in schedule.prior_completed:
            return None  # a missing hard process is infeasible at any start
    if ctx is None:
        wcet = {p.name: p.wcet for p in app.processes}
        need = {p.name: app.recovery_need(p.name) for p in app.processes}
        deadline = {p.name: p.deadline for p in app.processes}
        hard_set = {p.name for p in app.hard}
    else:
        wcet, need, deadline, hard_set = (
            ctx.wcet,
            ctx.need,
            ctx.deadline,
            ctx.hard_set,
        )
    budget = schedule.fault_budget
    clock = 0
    total = 0
    top = TopNeeds(budget)
    private = 0
    limit: Optional[int] = None
    for entry in schedule.entries:
        clock += wcet[entry.name]
        if entry.reexecutions > 0:
            if schedule.slack_sharing:
                top.add(need[entry.name], entry.reexecutions)
            else:
                private += need[entry.name] * min(
                    entry.reexecutions, budget
                )
        demand = top.demand() if schedule.slack_sharing else private
        total = clock + demand
        if entry.name in hard_set:
            slack = deadline[entry.name] - total
            if limit is None or slack < limit:
                limit = slack
    period_slack = app.period - total
    if limit is None or period_slack < limit:
        limit = period_slack
    if lo > limit:
        return None
    return min(hi, limit)


def _survival_batch(term: TailTerm, x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.quasistatic.intervals._survival` — the
    same IEEE operations per element, branch dispatch via masks."""
    out = np.zeros(x.shape[0], dtype=np.float64)
    below = x < term.lo_sum
    out[below] = 1.0
    mid = ~below & (x < term.hi_sum)
    if not np.any(mid):
        return out
    x_mid = x[mid]
    if term.count == 1 or term.variance <= 0:
        span = term.hi_sum - term.lo_sum
        if span <= 0:
            out[mid] = 0.0
        else:
            out[mid] = np.minimum(
                1.0, np.maximum(0.0, (term.hi_sum - x_mid) / span)
            )
    else:
        sigma = math.sqrt(term.variance)
        sqrt2 = math.sqrt(2.0)
        # math.erf elementwise: SciPy's erf is not guaranteed to round
        # identically, and bit-equality with the scalar path is the
        # whole contract here.
        out[mid] = [
            0.5 * (1.0 - math.erf(((value - term.mean) / sigma) / sqrt2))
            for value in x_mid.tolist()
        ]
    return out


def _expected_piecewise_batch(
    term: TailTerm, points: np.ndarray, period: int
) -> np.ndarray:
    """Vectorized ``TailProfile._expected_piecewise`` over all points."""
    boundaries = [b for b in term.fn.breakpoints() if b < period]
    boundaries.append(period)
    expected = np.zeros(points.shape[0], dtype=np.float64)
    prev_survival = np.ones(points.shape[0], dtype=np.float64)
    prev_bound: Optional[int] = None
    for bound in boundaries:
        survival = _survival_batch(term, bound - points)
        mass = prev_survival - survival
        probe = bound if prev_bound is None else prev_bound + 1
        value = term.fn.value_at(max(0, probe))
        expected = expected + np.where(mass > 0, mass * value, 0.0)
        prev_survival = survival
        prev_bound = bound
    return expected


def _expected_quantiles(term: TailTerm, tc: int, period: int) -> float:
    """Scalar ``TailProfile._expected_quantiles`` (non-PC utilities are
    rare; the scalar path keeps them exact without compiling them)."""
    sigma = math.sqrt(max(term.variance, 0.0))
    expected = 0.0
    for z in (-1.2816, -0.5244, 0.0, 0.5244, 1.2816):
        s = term.mean + z * sigma
        s = min(max(s, term.lo_sum), term.hi_sum)
        t = tc + s
        value = 0.0 if t > period or t < 0 else term.fn.value_at(int(t))
        expected += value / 5.0
    return expected


def expected_batch(
    profile: TailProfile, points: Sequence[int]
) -> np.ndarray:
    """``profile.expected(tc)`` for every ``tc`` in ``points`` at once.

    Accumulates per-term contributions in term order with the same
    float operations as the scalar method, so each element is
    bit-identical to the scalar evaluation at that point.
    """
    pts = np.asarray(points, dtype=np.int64)
    total = np.zeros(pts.shape[0], dtype=np.float64)
    for term in profile.terms:
        if term.fn.is_piecewise_constant():
            values = _expected_piecewise_batch(term, pts, profile.period)
        else:
            values = np.array(
                [
                    _expected_quantiles(term, int(tc), profile.period)
                    for tc in pts
                ],
                dtype=np.float64,
            )
        total = total + term.alpha * values
    return total


@dataclass
class _CandidateResult:
    """One admissible candidate, ready for deterministic admission."""

    position: int
    assumed_faults: int
    switch_process: str
    tail: FSchedule
    intervals: Tuple[Tuple[int, int], ...]
    improvement: float


#: Worker-process engine installed by :func:`_synthesis_worker_init`.
_SYNTH_WORKER: Optional["SynthesisEngine"] = None


def _synthesis_worker_init(app, config: FTQSConfig) -> None:
    global _SYNTH_WORKER
    _SYNTH_WORKER = SynthesisEngine(app, config, jobs=1)


def _synthesis_worker_eval(task):
    """Evaluate one (position, faults) candidate in a worker.

    Returns a picklable reduction of :class:`_CandidateResult` (the
    tail's entries; the parent rebuilds the schedule from its own
    context) or ``None`` for non-admissible candidates.
    """
    engine = _SYNTH_WORKER
    (
        spec,
        position,
        switch_process,
        faults,
        start,
        hi,
        prefix_completed,
        parent_signature,
    ) = task
    schedule = engine._schedule_from_spec(spec)
    candidate = engine._evaluate(
        schedule,
        position,
        switch_process,
        faults,
        start,
        hi,
        prefix_completed,
        parent_signature,
    )
    if candidate is None:
        return None
    return (
        tuple(candidate.tail.entries),
        candidate.intervals,
        candidate.improvement,
    )


#: Worker engine for *contextual* tasks on a shared generic pool:
#: ``(token, engine)`` of the most recently seen context.
_SYNTH_CTX: Optional[Tuple[int, "SynthesisEngine"]] = None


def _synthesis_worker_eval_ctx(task):
    """Contextual twin of :func:`_synthesis_worker_eval`.

    ``task`` is ``(token, app, config, inner)``.  Workers of a generic
    pool (one pool per experiment run, spawned without an initializer
    — see :class:`repro.pipeline.resources.ResourceManager`) build
    their engine on first sight of a token and replace it when a new
    token arrives, so one pool serves every application of a sweep.
    The engine itself is the same ``jobs=1`` engine the initializer
    path installs, hence identical candidate evaluations.
    """
    global _SYNTH_WORKER, _SYNTH_CTX
    token, app, config, inner = task
    if _SYNTH_CTX is None or _SYNTH_CTX[0] != token:
        _SYNTH_CTX = (token, SynthesisEngine(app, config, jobs=1))
    # _synthesis_worker_eval reads the module global; point it at the
    # current context so both task forms share one evaluation path.
    _SYNTH_WORKER = _SYNTH_CTX[1]
    return _synthesis_worker_eval(inner)


class SynthesisEngine:
    """The fast FTQS tree builder (see the module docstring).

    One engine instance holds the compiled tables, memos and (for
    ``jobs > 1``) the persistent worker pool; ``build()`` may be called
    repeatedly — e.g. once per M of a Table 1 sweep — and later builds
    reuse every memoized tail.  Use as a context manager (or call
    :meth:`close`) when ``jobs > 1`` so the pool is released
    deterministically.

    ``pool`` may be a *borrowed* generic
    :class:`~repro.runtime.engine.parallel.TaskPool` (owned by a
    :class:`repro.pipeline.resources.ResourceManager`): candidate tasks
    then carry their own (app, config) context instead of relying on a
    pool initializer, so one pool spawned once serves every
    application of an experiment sweep; :meth:`close` leaves it
    running.
    """

    def __init__(
        self,
        app,
        config: FTQSConfig = DEFAULT_FTQS_CONFIG,
        jobs: int = 1,
        stats: Optional[SynthesisStats] = None,
        pool=None,
    ):
        self.app = app
        self.config = config
        self.jobs = max(1, int(jobs))
        self.ctx = _Ctx(app, config)
        self.stats = stats if stats is not None else SynthesisStats()
        self._tail_memo: Dict[Tuple, Optional[FSchedule]] = {}
        self._profile_cache: Dict[Tuple[int, int], TailProfile] = {}
        self._spec_cache: Dict[Tuple, FSchedule] = {}
        self._pool = None
        self._borrowed_pool = pool
        self._ctx_token = None
        self._finalizer = None
        self._best_similarity: Dict[int, float] = {}
        self._expected_utility: Dict[int, float] = {}
        self._signatures: Set[Tuple] = set()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._borrowed_pool is not None:
            if self._ctx_token is None:
                from repro.runtime.engine.parallel import next_context_token

                self._ctx_token = next_context_token()
            return self._borrowed_pool
        if self._pool is None:
            from repro.runtime.engine.parallel import TaskPool

            self._pool = TaskPool(
                self.jobs,
                initializer=_synthesis_worker_init,
                initargs=(self.app, self.config),
            )
            self._finalizer = weakref.finalize(
                self, TaskPool.close, self._pool
            )
        return self._pool

    def close(self) -> None:
        """Terminate the candidate worker pool (no-op when jobs == 1
        or when the pool is borrowed from a resource manager)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._pool = None
        self._ctx_token = None

    def __enter__(self) -> "SynthesisEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Memoized tail scheduling
    # ------------------------------------------------------------------
    def _tail(
        self,
        fault_budget: int,
        start: int,
        prior_completed: FrozenSet[str],
        prior_dropped: FrozenSet[str],
    ) -> Optional[FSchedule]:
        key = (fault_budget, start, prior_completed, prior_dropped)
        if key in self._tail_memo:
            self.stats.memo_hits += 1
            return self._tail_memo[key]
        self.stats.tails_scheduled += 1
        if not self.config.ftss.fast_paths:
            # The reference slow probes differ from the fast ones in
            # second-order greedy effects; honour the ablation by
            # delegating (memoization still applies).
            tail = ftss(
                self.app,
                fault_budget=fault_budget,
                start_time=start,
                prior_completed=prior_completed,
                prior_dropped=prior_dropped,
                config=self.config.ftss,
            )
        else:
            tail = _TailRun(
                self.ctx, fault_budget, start, prior_completed, prior_dropped
            ).run()
        self._tail_memo[key] = tail
        return tail

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------
    def _profile(self, schedule: FSchedule, from_position: int) -> TailProfile:
        """Clone of :func:`repro.quasistatic.intervals.tail_profile`
        with memoized stale coefficients, cached by schedule value.

        The profile reads only the entry list, the dropped sets derived
        from it and the priors — not the start time — so the key is the
        value identity of those inputs (an ``id()``-based key could be
        recycled across builds of a persistent engine)."""
        key = (
            schedule.signature(),
            schedule.prior_completed,
            schedule.prior_dropped,
            from_position,
        )
        hit = self._profile_cache.get(key)
        if hit is not None:
            return hit
        ctx = self.ctx
        alphas = ctx.alphas(frozenset(schedule.all_dropped))
        terms = []
        mean = 0.0
        variance = 0.0
        lo_sum = 0
        hi_sum = 0
        count = 0
        for entry in schedule.entries[from_position:]:
            name = entry.name
            mean += ctx.aet[name]
            span = ctx.wcet[name] - ctx.bcet[name]
            variance += (span * span) / 12.0
            lo_sum += ctx.bcet[name]
            hi_sum += ctx.wcet[name]
            count += 1
            if name in ctx.soft_set:
                terms.append(
                    TailTerm(
                        alpha=alphas[name],
                        fn=self.app.process(name).utility,
                        mean=mean,
                        variance=variance,
                        lo_sum=lo_sum,
                        hi_sum=hi_sum,
                        count=count,
                    )
                )
        profile = TailProfile(terms=tuple(terms), period=ctx.period)
        self._profile_cache[key] = profile
        return profile

    def _partition(
        self,
        parent: FSchedule,
        parent_position: int,
        child: FSchedule,
        lo: int,
        hi: int,
    ) -> PartitionResult:
        """Clone of :func:`repro.quasistatic.intervals.partition` with
        the closed-form safety bound and batched expectations."""
        stride = self.config.interval_stride
        if lo > hi:
            return PartitionResult(intervals=(), improvement=0.0)
        trace_span = hi - lo + 1
        safe_hi = fast_latest_safe_start(child, lo, hi, self.ctx)
        if safe_hi is None:
            return PartitionResult(intervals=(), improvement=0.0)
        hi = min(hi, safe_hi)
        if lo > hi:
            return PartitionResult(intervals=(), improvement=0.0)
        parent_profile = self._profile(parent, parent_position + 1)
        child_profile = self._profile(child, 0)
        points = sorted(
            set(parent_profile.critical_points(lo, hi, stride))
            | set(child_profile.critical_points(lo, hi, stride))
        )
        gains = expected_batch(child_profile, points) - expected_batch(
            parent_profile, points
        )
        margin = 1e-6
        intervals: List[Tuple[int, int]] = []
        gain_integral = 0.0
        current_start: Optional[int] = None
        n_points = len(points)
        for idx, point in enumerate(points):
            gain = gains[idx]
            seg_end = points[idx + 1] - 1 if idx + 1 < n_points else hi
            wins = gain > margin
            if wins:
                gain_integral += gain * (seg_end - point + 1)
            if wins and current_start is None:
                current_start = point
            if not wins and current_start is not None:
                intervals.append((current_start, point - 1))
                current_start = None
            if wins and idx + 1 == n_points:
                intervals.append((current_start, seg_end))
                current_start = None
        valid = tuple((a, b) for a, b in intervals if a <= b)
        return PartitionResult(
            intervals=valid,
            improvement=float(gain_integral) / trace_span,
        )

    def _evaluate(
        self,
        schedule: FSchedule,
        position: int,
        switch_process: str,
        faults: int,
        start: int,
        hi: int,
        prefix_completed: FrozenSet[str],
        parent_signature: Tuple,
    ) -> Optional[_CandidateResult]:
        """Tail + partition of one (position, faults) candidate."""
        config = self.config
        self.stats.candidates_evaluated += 1
        tail = self._tail(
            schedule.fault_budget - faults,
            start,
            prefix_completed,
            frozenset(schedule.prior_dropped),
        )
        if tail is None or len(tail) == 0:
            return None
        if faults == 0 and tail.signature() == parent_signature:
            return None
        if config.use_interval_partitioning:
            result = self._partition(schedule, position, tail, start, hi)
        else:
            safe_hi = fast_latest_safe_start(tail, start, hi, self.ctx)
            if safe_hi is None:
                return None
            result = PartitionResult(
                intervals=((start, safe_hi),), improvement=1.0
            )
        if not result.beneficial:
            return None
        return _CandidateResult(
            position=position,
            assumed_faults=faults,
            switch_process=switch_process,
            tail=tail,
            intervals=result.intervals,
            improvement=result.improvement,
        )

    # ------------------------------------------------------------------
    # Per-node candidate generation
    # ------------------------------------------------------------------
    def _node_prefix_data(self, schedule: FSchedule):
        """Cumulative best/worst-case data per position, computed once
        per node instead of O(n) per candidate."""
        ctx = self.ctx
        app = self.app
        k = app.k
        entries = schedule.entries
        best_clock = sum(ctx.bcet[n] for n in schedule.prior_completed)
        worst_clock = sum(ctx.wcet[n] for n in schedule.prior_completed)
        top = TopNeeds(k)
        for n in schedule.prior_completed:
            top.add(ctx.need[n], k)
        prefix_best: List[int] = []
        worst_completion: List[int] = []
        prefix_sets: List[FrozenSet[str]] = []
        done = set(schedule.prior_completed)
        for entry in entries:
            prefix_best.append(best_clock)
            best_clock += ctx.bcet[entry.name]
            worst_clock += ctx.wcet[entry.name]
            cap = (
                entry.reexecutions if entry.name in ctx.soft_set else k
            )
            if cap > 0:
                top.add(ctx.need[entry.name], cap)
            worst_completion.append(
                min(worst_clock + top.demand(), ctx.period)
            )
            done.add(entry.name)
            prefix_sets.append(frozenset(done))
        return prefix_best, worst_completion, prefix_sets

    def _schedule_spec(self, schedule: FSchedule) -> Tuple:
        return (
            schedule.entries,
            schedule.start_time,
            schedule.fault_budget,
            tuple(sorted(schedule.prior_completed)),
            tuple(sorted(schedule.prior_dropped)),
            schedule.slack_sharing,
        )

    def _schedule_from_spec(self, spec: Tuple) -> FSchedule:
        hit = self._spec_cache.get(spec)
        if hit is None:
            entries, start, budget, completed, dropped, sharing = spec
            hit = FSchedule(
                self.app,
                list(entries),
                start_time=start,
                fault_budget=budget,
                prior_completed=completed,
                prior_dropped=dropped,
                slack_sharing=sharing,
            )
            self._spec_cache[spec] = hit
        return hit

    def _candidates(self, node: QSNode) -> List[_CandidateResult]:
        ctx = self.ctx
        config = self.config
        schedule = node.schedule
        entries = schedule.entries
        budget = schedule.fault_budget
        if len(entries) < 2:
            return []
        prefix_best, worst_completion, prefix_sets = self._node_prefix_data(
            schedule
        )
        jobs_plan: List[Tuple] = []
        for position in range(len(entries) - 1):
            entry = entries[position]
            fault_range = [0]
            if config.fault_children and budget > 0:
                max_f = min(
                    entry.reexecutions, budget, config.max_fault_variants
                )
                fault_range += list(range(1, max_f + 1))
            hi = worst_completion[position]
            parent_signature = tuple(
                (e.name, e.reexecutions) for e in entries[position + 1 :]
            )
            for faults in fault_range:
                start = (
                    prefix_best[position]
                    + (faults + 1) * ctx.bcet[entry.name]
                    + faults * ctx.mu[entry.name]
                )
                if start > hi:
                    continue
                jobs_plan.append(
                    (
                        position,
                        entry.name,
                        faults,
                        start,
                        hi,
                        prefix_sets[position],
                        parent_signature,
                    )
                )

        results: List[_CandidateResult] = []
        if self.jobs > 1 and len(jobs_plan) > 1:
            spec = self._schedule_spec(schedule)
            tasks = [
                (spec, position, name, faults, start, hi, prefix, signature)
                for position, name, faults, start, hi, prefix, signature
                in jobs_plan
            ]
            self.stats.candidates_evaluated += len(tasks)
            pool = self._ensure_pool()
            if self._borrowed_pool is not None:
                # Every task carries (app, config): Pool has no way to
                # target specific workers, so a one-shot "prime"
                # broadcast cannot be made reliable, and the parent
                # never knows which workers already hold the token.
                # The cost is bounded, not per-task: Pool.map pickles
                # tasks in chunks and pickle memoizes repeated object
                # references within a chunk, so the app serializes
                # once per chunk (~4 per worker per map call).
                raw = pool.map(
                    _synthesis_worker_eval_ctx,
                    [
                        (self._ctx_token, self.app, self.config, task)
                        for task in tasks
                    ],
                )
            else:
                raw = pool.map(_synthesis_worker_eval, tasks)
            prior_dropped = frozenset(schedule.prior_dropped)
            for item, outcome in zip(jobs_plan, raw):
                if outcome is None:
                    continue
                position, name, faults, start, hi, prefix, _ = item
                tail_entries, intervals, improvement = outcome
                tail = FSchedule(
                    self.app,
                    list(tail_entries),
                    start_time=start,
                    fault_budget=budget - faults,
                    prior_completed=prefix,
                    prior_dropped=prior_dropped,
                    slack_sharing=config.ftss.slack_sharing,
                )
                results.append(
                    _CandidateResult(
                        position=position,
                        assumed_faults=faults,
                        switch_process=name,
                        tail=tail,
                        intervals=intervals,
                        improvement=improvement,
                    )
                )
        else:
            for position, name, faults, start, hi, prefix, sig in jobs_plan:
                candidate = self._evaluate(
                    schedule, position, name, faults, start, hi, prefix, sig
                )
                if candidate is not None:
                    results.append(candidate)
        return results

    # ------------------------------------------------------------------
    # Tree growth
    # ------------------------------------------------------------------
    def _register(self, tree: QSTree, node: QSNode) -> None:
        """Incremental similarity bookkeeping on node insertion.

        Updates the running per-node maxima on both sides, so a later
        ``similarity_to_tree`` query is a dict lookup; max over the
        same float set as the reference's full scan, hence identical.
        """
        best = 0.0
        for other in tree:
            if other.node_id == node.node_id:
                continue
            value = schedule_similarity(node.schedule, other.schedule)
            if value > best:
                best = value
            if value > self._best_similarity.get(other.node_id, 0.0):
                self._best_similarity[other.node_id] = value
        self._best_similarity[node.node_id] = best

    def _expected(self, node: QSNode) -> float:
        hit = self._expected_utility.get(node.node_id)
        if hit is None:
            hit = node.schedule.expected_utility()
            self._expected_utility[node.node_id] = hit
        return hit

    def _pick_expansion(self, tree: QSTree, layer: int) -> Optional[QSNode]:
        candidates = [
            n for n in tree if n.layer == layer and not n.expanded
        ]
        if not candidates:
            return None

        def key(node: QSNode):
            return (
                -self._best_similarity[node.node_id],
                -self._expected(node),
                node.node_id,
            )

        return min(candidates, key=key)

    def _expand(self, tree: QSTree, node: QSNode, layer: int) -> None:
        node.expanded = True
        self.stats.nodes_expanded += 1
        candidates = self._candidates(node)
        candidates.sort(
            key=lambda c: (-c.improvement, c.position, c.assumed_faults)
        )
        app_k = self.app.k
        for candidate in candidates:
            if len(self._signatures) >= self.config.max_schedules:
                break
            child = tree.add_child(
                node.node_id,
                candidate.tail,
                switch_process=candidate.switch_process,
                assumed_faults=candidate.assumed_faults,
                layer=layer,
            )
            self._signatures.add(candidate.tail.signature())
            required = app_k - candidate.tail.fault_budget
            for lo, hi in candidate.intervals:
                tree.add_arc(
                    node.node_id,
                    SwitchArc(
                        process=candidate.switch_process,
                        lo=lo,
                        hi=hi,
                        required_faults=required,
                        target=child.node_id,
                    ),
                )
            self._register(tree, child)

    def build(self, root_schedule: FSchedule) -> QSTree:
        """Grow the quasi-static tree Φ — fast twin of
        :func:`repro.quasistatic.ftqs.ftqs`."""
        started = time.perf_counter()
        config = self.config
        self._best_similarity = {}
        self._expected_utility = {}
        self._signatures = {root_schedule.signature()}
        tree = QSTree(root_schedule)
        self._best_similarity[tree.root_id] = 0.0
        try:
            if config.max_schedules == 1 or len(root_schedule) <= 1:
                return tree
            max_layer = len(self.app.graph.process_names)
            self._expand(tree, tree.root, 1)
            layer = 1
            while len(self._signatures) < config.max_schedules:
                candidate = self._pick_expansion(tree, layer)
                if candidate is None:
                    layer += 1
                    if layer > max_layer:
                        break
                    if not any(not n.expanded for n in tree):
                        break
                    continue
                self._expand(tree, candidate, layer + 1)
            tree.prune_unreachable()
            tree.validate()
            return tree
        finally:
            self.stats.trees_built += 1
            self.stats.wall_seconds += time.perf_counter() - started


def ftqs_fast(
    app,
    root_schedule: FSchedule,
    config: FTQSConfig = DEFAULT_FTQS_CONFIG,
    jobs: int = 1,
    stats: Optional[SynthesisStats] = None,
    pool=None,
) -> QSTree:
    """Build the quasi-static tree with the fast synthesis engine.

    Byte-identical to :func:`repro.quasistatic.ftqs.ftqs` with
    ``synthesis="reference"`` for any ``jobs`` count.  ``pool`` may be
    a shared generic :class:`~repro.runtime.engine.parallel.TaskPool`
    (see :class:`repro.pipeline.resources.ResourceManager`); it is
    borrowed, not closed.
    """
    with SynthesisEngine(
        app, config, jobs=jobs, stats=stats, pool=pool
    ) as engine:
        return engine.build(root_schedule)
