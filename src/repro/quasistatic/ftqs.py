"""FTQS — fault-tolerant quasi-static scheduling (paper §5.1, Fig. 7)
and the overall scheduling strategy (paper §5, Fig. 6).

FTQS grows the quasi-static tree Φ from the root f-schedule S_root in
layers of sub-schedules:

* ``CreateSubschedules(S, k, layer)`` re-plans the tail of schedule S
  after each of its processes P_i, assuming P_i completes at its
  best-possible time (all history at BCET) — and, for processes with
  re-execution allotments, also assuming 1..f faults already hit P_i
  (these fault-conditioned children reserve slack for only ``k - f``
  further faults, realizing the fault groups of Fig. 5);
* the expansion order is driven by schedule similarity
  (``FindMostSimilarSubschedule``): descending through nodes similar
  to what the tree already holds is where genuinely different
  schedules are found;
* growth stops when the number of *different* schedules reaches M;
* finally, interval partitioning computes, for every generated child,
  the completion-time window in which switching to it is beneficial
  and safe, and children that never win are pruned.

The produced tree is what the online scheduler
(:class:`repro.runtime.OnlineScheduler`) executes with negligible
runtime overhead: at each process completion it scans the current
node's arcs for that process — a handful of integer comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import UnschedulableError
from repro.model.application import Application
from repro.quasistatic.intervals import (
    PartitionResult,
    latest_safe_start,
    partition,
)
from repro.quasistatic.similarity import find_most_similar_unexpanded
from repro.quasistatic.tree import QSNode, QSTree, SwitchArc
from repro.scheduling.fschedule import FSchedule, shared_recovery_demand
from repro.scheduling.ftss import FTSSConfig, ftss


@dataclass(frozen=True)
class FTQSConfig:
    """Tunables of the quasi-static tree construction.

    Attributes
    ----------
    max_schedules:
        M — the bound on *different* schedules in the tree (paper
        Table 1 sweeps this).
    fault_children:
        Generate fault-conditioned sub-schedules (1..f faults in the
        switch process) in addition to the no-fault ones.  Disabling
        them yields a pure completion-time tree (the structure of
        Cortes et al. [3] made fault tolerant), cheaper to build and
        only slightly worse in faulty scenarios.
    max_fault_variants:
        Cap on the number of fault-conditioned children per position
        (1 generates only the single-fault child, etc.); bounds the
        construction cost for large k.
    interval_stride:
        Sampling stride forwarded to interval partitioning for
        non-piecewise-constant utility functions (0 = automatic).
    ftss:
        Configuration for the embedded FTSS runs.
    use_interval_partitioning:
        The ``ablation-interval`` switch: when off, each child gets a
        naive arc spanning from its generation assumption to its latest
        safe switch time without comparing utilities.
    """

    max_schedules: int = 16
    fault_children: bool = True
    max_fault_variants: int = 1
    interval_stride: int = 0
    ftss: FTSSConfig = field(default_factory=FTSSConfig)
    use_interval_partitioning: bool = True

    def __post_init__(self) -> None:
        if self.max_schedules < 1:
            raise ValueError("max_schedules must be at least 1")
        if self.max_fault_variants < 0:
            raise ValueError("max_fault_variants must be non-negative")


DEFAULT_FTQS_CONFIG = FTQSConfig()

#: The interchangeable tree-construction engines of :func:`ftqs`.
SYNTHESIS_ENGINES = ("reference", "fast")


def best_case_completion(
    app: Application, node_schedule: FSchedule, position: int, faults: int
) -> int:
    """Best-possible completion time of the process at ``position``.

    All history (prior completions and the schedule prefix) executes at
    BCET, and the ``faults`` failed attempts of the process itself each
    cost a best-case run plus the recovery overhead (paper §5.1: "the
    best-possible, when all processes scheduled before P_i and P_i
    itself are executed with their best-case execution times").
    """
    graph = app.graph
    clock = sum(graph[n].bcet for n in node_schedule.prior_completed)
    for entry in node_schedule.entries[:position]:
        clock += graph[entry.name].bcet
    proc = graph[node_schedule.entries[position].name]
    mu = app.recovery_overhead(proc.name)
    return clock + (faults + 1) * proc.bcet + faults * mu


def worst_case_completion(
    app: Application, node_schedule: FSchedule, position: int
) -> int:
    """Worst-possible completion time of the process at ``position``.

    All history at WCET plus the full shared recovery demand of the
    application's fault budget over the recoverable history — the
    "worst-case fault scenario (with k faults)" end of the tracing
    range.  Clipped to the period: completions beyond it cannot occur
    in a feasible run.
    """
    graph = app.graph
    clock = sum(graph[n].wcet for n in node_schedule.prior_completed)
    needs: List[Tuple[int, int]] = []
    for name in node_schedule.prior_completed:
        needs.append((app.recovery_need(name), app.k))
    for entry in node_schedule.entries[: position + 1]:
        clock += graph[entry.name].wcet
        cap = entry.reexecutions if graph[entry.name].is_soft else app.k
        if cap > 0:
            needs.append((app.recovery_need(entry.name), cap))
    clock += shared_recovery_demand(needs, app.k)
    return min(clock, app.period)


@dataclass
class _Candidate:
    """A generated sub-schedule awaiting admission to the tree."""

    tail: FSchedule
    switch_process: str
    position: int
    assumed_faults: int
    result: PartitionResult


def _generate_candidates(
    app: Application, node: QSNode, config: FTQSConfig
) -> List[_Candidate]:
    """All scored sub-schedule candidates of ``node``.

    For every position of the node's schedule (and, for processes with
    re-execution allotments, for every assumed fault count up to the
    configured bound), re-plan the tail with FTSS from the best-case
    completion and run interval partitioning against continuing the
    parent.  Candidates that never win (or are unsafe everywhere) are
    discarded here — keeping them would waste the M budget the tree
    size limit exists to protect.
    """
    schedule = node.schedule
    budget = schedule.fault_budget
    candidates: List[_Candidate] = []
    for position, entry in enumerate(schedule.entries):
        if position == len(schedule.entries) - 1:
            continue  # no tail left to re-plan after the last process
        fault_range = [0]
        if config.fault_children and budget > 0:
            max_f = min(entry.reexecutions, budget, config.max_fault_variants)
            fault_range += list(range(1, max_f + 1))
        prefix_names = {e.name for e in schedule.entries[: position + 1]}
        parent_tail_signature = tuple(
            (e.name, e.reexecutions)
            for e in schedule.entries[position + 1 :]
        )
        hi = worst_case_completion(app, schedule, position)
        for faults in fault_range:
            start = best_case_completion(app, schedule, position, faults)
            if start > hi:
                continue
            tail = ftss(
                app,
                fault_budget=budget - faults,
                start_time=start,
                prior_completed=schedule.prior_completed | prefix_names,
                prior_dropped=schedule.prior_dropped,
                config=config.ftss,
            )
            if tail is None or len(tail) == 0:
                continue
            if faults == 0 and tail.signature() == parent_tail_signature:
                continue  # switching would be a no-op
            if config.use_interval_partitioning:
                result = partition(
                    app,
                    schedule,
                    position,
                    tail,
                    start,
                    hi,
                    stride=config.interval_stride,
                )
            else:
                # ablation-interval: switch whenever safe, no utility
                # comparison; a nominal unit improvement keeps the
                # admission order well-defined.
                safe_hi = latest_safe_start(tail, start, hi)
                if safe_hi is None:
                    continue
                result = PartitionResult(
                    intervals=((start, safe_hi),), improvement=1.0
                )
            if not result.beneficial:
                continue
            candidates.append(
                _Candidate(
                    tail=tail,
                    switch_process=entry.name,
                    position=position,
                    assumed_faults=faults,
                    result=result,
                )
            )
    return candidates


def create_subschedules(
    app: Application,
    tree: QSTree,
    node: QSNode,
    layer: int,
    config: FTQSConfig,
) -> List[QSNode]:
    """Generate and admit the sub-schedules of ``node`` (FTQS lines
    2/7).

    Candidates are admitted in decreasing order of their expected
    improvement ("we have to keep only those sub-schedules ... that
    lead to the most significant improvement in terms of the overall
    utility", §5.1) until the tree holds M different schedules.  Arcs
    (the switch conditions) are attached immediately from the
    partitioning result.
    """
    node.expanded = True
    candidates = _generate_candidates(app, node, config)
    candidates.sort(
        key=lambda c: (-c.result.improvement, c.position, c.assumed_faults)
    )
    children: List[QSNode] = []
    for candidate in candidates:
        if tree.different_schedules() >= config.max_schedules:
            break
        child = tree.add_child(
            node.node_id,
            candidate.tail,
            switch_process=candidate.switch_process,
            assumed_faults=candidate.assumed_faults,
            layer=layer,
        )
        required = app.k - candidate.tail.fault_budget
        for lo, hi in candidate.result.intervals:
            tree.add_arc(
                node.node_id,
                SwitchArc(
                    process=candidate.switch_process,
                    lo=lo,
                    hi=hi,
                    required_faults=required,
                    target=child.node_id,
                ),
            )
        children.append(child)
    return children


def interval_partitioning(
    app: Application, tree: QSTree, config: FTQSConfig
) -> None:
    """FTQS line 10, standalone: (re)compute all switch conditions.

    The integrated construction attaches arcs at admission time; this
    pass exists for callers that assemble trees manually (tests, IO
    round-trips) and recomputes every child's condition from scratch.
    """
    for node in tree:
        node.arcs = []
    for child in list(tree):
        if child.is_root:
            continue
        parent = tree.node(child.parent_id)
        position = parent.schedule.position(child.switch_process)
        lo = best_case_completion(
            app, parent.schedule, position, child.assumed_faults
        )
        hi = worst_case_completion(app, parent.schedule, position)
        if lo > hi:
            continue
        required = app.k - child.schedule.fault_budget
        if config.use_interval_partitioning:
            result = partition(
                app,
                parent.schedule,
                position,
                child.schedule,
                lo,
                hi,
                stride=config.interval_stride,
            )
            intervals = list(result.intervals)
        else:
            safe_hi = latest_safe_start(child.schedule, lo, hi)
            intervals = [] if safe_hi is None else [(lo, safe_hi)]
        for interval_lo, interval_hi in intervals:
            tree.add_arc(
                parent.node_id,
                SwitchArc(
                    process=child.switch_process,
                    lo=interval_lo,
                    hi=interval_hi,
                    required_faults=required,
                    target=child.node_id,
                ),
            )


def ftqs(
    app: Application,
    root_schedule: FSchedule,
    config: FTQSConfig = DEFAULT_FTQS_CONFIG,
    *,
    synthesis: str = "fast",
    jobs: int = 1,
    stats=None,
    pool=None,
) -> QSTree:
    """Build the fault-tolerant quasi-static tree Φ (paper Fig. 7).

    Two interchangeable synthesis engines construct the tree:

    * ``synthesis="reference"`` — the oracle below: one full FTSS run
      per candidate, point-by-point interval partitioning;
    * ``synthesis="fast"`` (default) — the memoized/vectorized engine
      of :mod:`repro.quasistatic.synthesis`, byte-identical trees
      (asserted by ``tests/test_synthesis_differential.py``) several
      times faster; ``jobs > 1`` additionally shards each expansion
      layer's candidates across worker processes (also identical for
      any job count).  ``stats`` may be a
      :class:`~repro.quasistatic.synthesis.SynthesisStats` to
      accumulate construction counters across calls, and ``pool`` a
      shared generic :class:`~repro.runtime.engine.parallel.TaskPool`
      borrowed from a
      :class:`repro.pipeline.resources.ResourceManager` (used only by
      the fast engine with ``jobs > 1``).
    """
    if synthesis == "fast":
        from repro.quasistatic.synthesis import ftqs_fast

        return ftqs_fast(
            app, root_schedule, config, jobs=jobs, stats=stats, pool=pool
        )
    if synthesis != "reference":
        raise ValueError(
            f"unknown synthesis engine {synthesis!r}; expected one of "
            f"{SYNTHESIS_ENGINES}"
        )
    return ftqs_reference(app, root_schedule, config)


def ftqs_reference(
    app: Application,
    root_schedule: FSchedule,
    config: FTQSConfig = DEFAULT_FTQS_CONFIG,
) -> QSTree:
    """The behavioral oracle of tree construction (paper Fig. 7,
    followed literally)."""
    tree = QSTree(root_schedule)
    if config.max_schedules == 1 or len(root_schedule) <= 1:
        return tree

    max_layer = len(app.graph.process_names)
    create_subschedules(app, tree, tree.root, 1, config)
    layer = 1
    while tree.different_schedules() < config.max_schedules:
        candidate = find_most_similar_unexpanded(tree, layer)
        if candidate is None:
            layer += 1
            if layer > max_layer:
                break
            if not any(not n.expanded for n in tree):
                break
            continue
        create_subschedules(app, tree, candidate, layer + 1, config)
    tree.prune_unreachable()
    tree.validate()
    return tree


@dataclass
class SchedulingStrategyResult:
    """Output of the overall scheduling strategy (paper Fig. 6).

    ``stats`` carries the fast engine's construction counters when the
    caller supplied a collector (``None`` otherwise).
    """

    app: Application
    root_schedule: FSchedule
    tree: QSTree
    stats: Optional[object] = None

    @property
    def schedulable(self) -> bool:
        return True  # construction raises when unschedulable

    def summary(self) -> str:
        return (
            f"root={len(self.root_schedule)} processes, tree nodes="
            f"{len(self.tree)}, distinct schedules="
            f"{self.tree.different_schedules()}"
        )


def schedule_application(
    app: Application,
    max_schedules: int = 16,
    config: Optional[FTQSConfig] = None,
    *,
    synthesis: str = "fast",
    jobs: int = 1,
    stats=None,
    pool=None,
) -> SchedulingStrategyResult:
    """The paper's ``SchedulingStrategy`` (Fig. 6).

    Generates the root f-schedule with FTSS; raises
    :class:`~repro.errors.UnschedulableError` when no fault-tolerant
    schedule exists; otherwise grows the quasi-static tree with FTQS
    (``synthesis``/``jobs``/``stats``/``pool`` route to :func:`ftqs`).
    """
    if config is None:
        config = FTQSConfig(max_schedules=max_schedules)
    root = ftss(app, config=config.ftss)
    if root is None:
        raise UnschedulableError(
            "no f-schedule meets all hard deadlines under the fault "
            "hypothesis"
        )
    tree = ftqs(
        app,
        root,
        config,
        synthesis=synthesis,
        jobs=jobs,
        stats=stats,
        pool=pool,
    )
    return SchedulingStrategyResult(
        app=app, root_schedule=root, tree=tree, stats=stats
    )
