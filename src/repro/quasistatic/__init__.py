"""Quasi-static scheduling: tree, similarity, intervals, FTQS."""

from repro.quasistatic.ftqs import (
    DEFAULT_FTQS_CONFIG,
    FTQSConfig,
    SYNTHESIS_ENGINES,
    SchedulingStrategyResult,
    best_case_completion,
    create_subschedules,
    ftqs,
    ftqs_reference,
    interval_partitioning,
    schedule_application,
    worst_case_completion,
)
from repro.quasistatic.synthesis import (
    SynthesisEngine,
    SynthesisStats,
    ftqs_fast,
)
from repro.quasistatic.intervals import (
    TailProfile,
    beneficial_intervals,
    latest_safe_start,
    tail_profile,
)
from repro.quasistatic.similarity import (
    find_most_similar_unexpanded,
    order_similarity,
    schedule_similarity,
    set_similarity,
)
from repro.quasistatic.tree import QSNode, QSTree, SwitchArc

__all__ = [
    "DEFAULT_FTQS_CONFIG",
    "FTQSConfig",
    "SYNTHESIS_ENGINES",
    "QSNode",
    "QSTree",
    "SchedulingStrategyResult",
    "SwitchArc",
    "TailProfile",
    "beneficial_intervals",
    "best_case_completion",
    "create_subschedules",
    "find_most_similar_unexpanded",
    "ftqs",
    "ftqs_fast",
    "ftqs_reference",
    "SynthesisEngine",
    "SynthesisStats",
    "interval_partitioning",
    "latest_safe_start",
    "order_similarity",
    "schedule_application",
    "schedule_similarity",
    "set_similarity",
    "tail_profile",
    "worst_case_completion",
]
