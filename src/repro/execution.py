"""The unified execution surface: which engine runs a Monte-Carlo
evaluation, and how it is spread over cores.

Every layer that used to grow its own ``engine=``/``jobs=`` knobs —
:class:`~repro.evaluation.montecarlo.MonteCarloEvaluator`, the
experiment configs, the ``repro`` CLI, the HTTP service — now consumes
one :class:`ExecutionConfig` value:

* ``engine`` — which simulator replays the scenarios: ``reference``
  (the oracle event loop), ``batched`` (the NumPy array engine) or
  ``kernel`` (the generated-C core).  Results are bit-identical;
  only speed differs.
* ``mode`` — how the scenario range is spread over cores: ``inline``
  (single in-process run), ``processes`` (deterministic sharding
  across ``multiprocessing`` workers) or ``threads`` (deterministic
  sharding across a thread pool against the kernel's GIL-releasing
  call; non-kernel engines fall back to process sharding with a
  counted reason — see :mod:`repro.runtime.engine.threads`).
* ``workers`` — the shard/worker count (1 for ``inline``).

The compact spec-string grammar is ``ENGINE[@MODE[:WORKERS]]``::

    reference             # oracle, inline
    kernel@threads:8      # generated-C kernel, 8 GIL-free threads
    batched@processes:4   # NumPy engine, 4 worker processes

Sharding is outcome-preserving for any mode and worker count, so an
:class:`ExecutionConfig` is pure routing: it never changes results,
which is why checkpoint fingerprints mask it (see
``pipeline/checkpoint.py``).

The legacy keywords remain as deprecated aliases — ``engine=E,
jobs=N`` maps onto ``E@processes:N`` (or inline for ``N == 1``) via
:func:`resolve_execution`, which emits a :class:`DeprecationWarning`.
This module deliberately imports nothing heavier than the error type,
so the CLI and service layers can parse specs without dragging in
NumPy.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.errors import RuntimeModelError

ENGINES = ("reference", "batched", "kernel")
MODES = ("inline", "processes", "threads")


def choices_line() -> str:
    """The one-line enumeration every bad-spec error ends with."""
    return (
        f"valid engines: {', '.join(ENGINES)}; "
        f"valid modes: {', '.join(MODES)}"
    )


@dataclass(frozen=True)
class ExecutionConfig:
    """One validated (engine, mode, workers) routing decision.

    Frozen and hashable, so it keys executor caches directly.
    """

    engine: str = "batched"
    mode: str = "inline"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise RuntimeModelError(
                f"unknown engine {self.engine!r}; {choices_line()}"
            )
        if self.mode not in MODES:
            raise RuntimeModelError(
                f"unknown execution mode {self.mode!r}; {choices_line()}"
            )
        if not isinstance(self.workers, int) or isinstance(
            self.workers, bool
        ):
            raise RuntimeModelError(
                f"workers must be a positive integer, got {self.workers!r}"
            )
        if self.workers < 1:
            raise RuntimeModelError(
                f"workers must be positive, got {self.workers}"
            )
        if self.mode == "inline" and self.workers != 1:
            raise RuntimeModelError(
                f"inline execution is single-worker; got "
                f"workers={self.workers} (use "
                f"'@processes:{self.workers}' or "
                f"'@threads:{self.workers}')"
            )

    # ------------------------------------------------------------------
    # Spec-string grammar
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "ExecutionConfig":
        """Parse ``ENGINE[@MODE[:WORKERS]]`` (e.g. ``kernel@threads:8``).

        A bare engine name means inline execution; a mode without a
        worker count means one worker.  Every malformed spec raises a
        :class:`RuntimeModelError` whose single-line message enumerates
        the valid engines and modes.
        """
        if not isinstance(spec, str) or not spec.strip():
            raise RuntimeModelError(
                f"empty executor spec {spec!r}; expected "
                f"ENGINE[@MODE[:WORKERS]] like 'kernel@threads:8'; "
                f"{choices_line()}"
            )
        text = spec.strip()
        engine, at, rest = text.partition("@")
        mode, workers = "inline", 1
        if at:
            mode_text, colon, workers_text = rest.partition(":")
            mode = mode_text.strip()
            if colon:
                try:
                    workers = int(workers_text.strip())
                except ValueError:
                    raise RuntimeModelError(
                        f"bad executor spec {text!r}: worker count "
                        f"{workers_text.strip()!r} is not an integer; "
                        f"expected ENGINE[@MODE[:WORKERS]] like "
                        f"'kernel@threads:8'; {choices_line()}"
                    ) from None
        try:
            return cls(engine=engine.strip(), mode=mode, workers=workers)
        except RuntimeModelError as exc:
            message = f"bad executor spec {text!r}: {exc}"
            if choices_line() not in message:
                message = f"{message}; {choices_line()}"
            raise RuntimeModelError(message) from None

    def spec(self) -> str:
        """The compact spec string (inverse of :meth:`parse`)."""
        if self.mode == "inline":
            return self.engine
        return f"{self.engine}@{self.mode}:{self.workers}"

    @classmethod
    def coerce(
        cls, value: Union[None, str, "ExecutionConfig"]
    ) -> "ExecutionConfig":
        """An :class:`ExecutionConfig` from a spec string, an existing
        config, or ``None`` (→ the defaults)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        raise RuntimeModelError(
            f"cannot interpret {value!r} as an execution config; pass "
            f"an ExecutionConfig or a spec string like "
            f"'kernel@threads:8'"
        )

    @classmethod
    def from_legacy(
        cls, engine: Optional[str] = None, jobs: Optional[int] = None
    ) -> "ExecutionConfig":
        """The config the deprecated ``engine=``/``jobs=`` pair meant:
        process sharding for ``jobs > 1``, inline otherwise."""
        jobs = 1 if jobs is None else int(jobs)
        if jobs < 1:
            raise RuntimeModelError(f"jobs must be positive, got {jobs}")
        return cls(
            engine="batched" if engine is None else engine,
            mode="inline" if jobs == 1 else "processes",
            workers=jobs,
        )


def resolve_execution(
    execution: Union[None, str, ExecutionConfig] = None,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
    *,
    base: Optional[ExecutionConfig] = None,
    owner: str = "MonteCarloEvaluator",
    stacklevel: int = 3,
) -> ExecutionConfig:
    """One :class:`ExecutionConfig` from the new keyword and/or the
    deprecated ``engine=``/``jobs=`` pair.

    ``base`` is the config a per-call override starts from (the
    evaluator-wide setting): a legacy ``engine=`` swaps the engine but
    keeps the base routing, a legacy ``jobs=`` re-routes onto the base
    parallel mode (or ``processes`` when the base was inline).  The
    legacy keywords emit a :class:`DeprecationWarning` and may not be
    combined with ``execution=``.
    """
    legacy = engine is not None or jobs is not None
    if legacy:
        warnings.warn(
            f"{owner}: engine=/jobs= are deprecated; pass "
            f"execution='ENGINE[@MODE[:WORKERS]]' (e.g. "
            f"'kernel@threads:8') instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        if execution is not None:
            raise RuntimeModelError(
                f"{owner}: pass either execution= or the deprecated "
                f"engine=/jobs=, not both"
            )
        if base is None:
            return ExecutionConfig.from_legacy(engine=engine, jobs=jobs)
        config = base
        if jobs is not None:
            jobs = int(jobs)
            if jobs < 1:
                raise RuntimeModelError(
                    f"jobs must be positive, got {jobs}"
                )
            if jobs == 1:
                config = replace(config, mode="inline", workers=1)
            else:
                mode = (
                    config.mode if config.mode != "inline" else "processes"
                )
                config = replace(config, mode=mode, workers=jobs)
        if engine is not None:
            config = replace(config, engine=engine)
        return config
    if execution is None:
        return base if base is not None else ExecutionConfig()
    return ExecutionConfig.coerce(execution)
