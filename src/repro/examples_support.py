"""The paper's worked examples as ready-made applications.

These constructors encode the concrete numbers of the paper's figures
so tests, examples and the CLI all speak about the same instances:

* :func:`paper_fig1_application` — application A (Fig. 1): processes
  P1 (hard, d = 180), P2/P3 (soft), T = 300, k = 1, µ = 10, with the
  utility functions of Fig. 4a.  The utility levels are reconstructed
  from the worked arithmetic in §3 (e.g. U2(100) = 20, U3(110) = 40,
  U2(80) = 40, U3(140) = 30, U3(160) = 10), which pins the step
  positions the OCR of the figure leaves ambiguous.
* :func:`paper_fig8_application` — application A (Fig. 8): P1/P5 hard
  (d = 110/220), P2/P3/P4 soft, k = 2, µ = 10, T = 220.  The utility
  steps are pinned by U(S2') = U2(60)+U3(90)+U4(130) = 80 and
  U(S2'') = U3(60) + 2/3·U4(90) = 50.
* :func:`paper_fig2_utilities` — the Ua/Ub/Uc functions of Fig. 2.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.model.application import Application
from repro.model.graph import ProcessGraph
from repro.model.process import hard_process, soft_process
from repro.utility.functions import StepUtility, UtilityFunction


def paper_fig1_application(period: int = 300) -> Application:
    """Application A of Fig. 1 with the Fig. 4a utility functions.

    ``period`` defaults to the 300 ms of Fig. 4b; pass 250 to get the
    overload variant of Fig. 4c where a soft process must be dropped
    in the worst case.
    """
    u2 = StepUtility(40, [(90, 20), (200, 10), (250, 0)])
    u3 = StepUtility(40, [(130, 30), (150, 10), (220, 0)])
    p1 = hard_process("P1", bcet=30, wcet=70, deadline=180, aet=50)
    p2 = soft_process("P2", bcet=30, wcet=70, utility=u2, aet=50)
    p3 = soft_process("P3", bcet=40, wcet=80, utility=u3, aet=60)
    graph = ProcessGraph(
        [p1, p2, p3],
        [("P1", "P2"), ("P1", "P3")],
        name="A-fig1",
        period=period,
    )
    return Application(graph, period=period, k=1, mu=10)


def paper_fig8_application() -> Application:
    """Application A (graph G2) of Fig. 8.

    P1 and P5 are hard (deadlines 110 and 220); P2, P3, P4 are soft.
    P4 reads from both P2 and P3, which produces the stale coefficient
    2/3 of the worked S2'' example when P2 is dropped.  P1's AET is
    pinned to 30 so the schedule times of the worked example (P2 at
    60, P3 at 90, P4 at 130) come out exactly.
    """
    u2 = StepUtility(40, [(60, 20), (100, 10), (130, 0)])
    u3 = StepUtility(30, [(70, 20), (150, 10)])
    u4 = StepUtility(30, [(100, 20), (150, 10)])
    p1 = hard_process("P1", bcet=10, wcet=30, deadline=110, aet=30)
    p2 = soft_process("P2", bcet=20, wcet=40, utility=u2, aet=30)
    p3 = soft_process("P3", bcet=20, wcet=40, utility=u3, aet=30)
    p4 = soft_process("P4", bcet=20, wcet=40, utility=u4, aet=30)
    p5 = hard_process("P5", bcet=10, wcet=30, deadline=220, aet=20)
    graph = ProcessGraph(
        [p1, p2, p3, p4, p5],
        [
            ("P1", "P2"),
            ("P1", "P3"),
            ("P2", "P4"),
            ("P3", "P4"),
            ("P2", "P5"),
        ],
        name="A-fig8",
        period=220,
    )
    return Application(graph, period=220, k=2, mu=10)


def paper_fig2_utilities() -> Dict[str, UtilityFunction]:
    """The Ua/Ub/Uc time/utility functions of Fig. 2.

    Ua(60) = 20 (panel a); Ub(50) = 15 and Uc(110) = 10 sum to the
    panel-b application utility of 25.
    """
    return {
        "Ua": StepUtility(40, [(40, 20), (80, 0)]),
        "Ub": StepUtility(30, [(40, 15), (90, 0)]),
        "Uc": StepUtility(20, [(50, 10), (130, 0)]),
    }


def paper_fig3_recovery() -> Tuple[int, int, int]:
    """The Fig. 3 re-execution arithmetic: (wcet, mu, k).

    P1 runs 30 ms, µ = 5 ms, k = 2: the worst case occupies
    3 executions + 2 recoveries = 100 ms.
    """
    return 30, 5, 2
