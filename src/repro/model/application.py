"""The application model: process graph(s) + period + fault hypothesis.

An :class:`Application` bundles one merged :class:`ProcessGraph` with
the global scheduling parameters of the paper's problem formulation
(§4): the period ``T`` on the single computation node, the maximum
number ``k`` of transient faults per operation cycle, and the recovery
overhead ``µ``.  Multi-rate applications (several graphs with different
periods) are first merged into one hyper-period graph by
:func:`repro.model.hypergraph.merge_hyperperiod` and then wrapped in an
:class:`Application`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import ModelError, TimingError
from repro.model.graph import ProcessGraph
from repro.model.process import Process


class Application:
    """A single-node mixed hard/soft application (paper §4).

    Parameters
    ----------
    graph:
        The (merged) process graph.
    period:
        Operation-cycle period ``T``; every process must complete (or be
        dropped) by ``T`` in every scenario.
    k:
        Maximum number of transient faults per cycle.
    mu:
        Default recovery overhead µ, applied to processes without a
        per-process override.
    """

    def __init__(self, graph: ProcessGraph, period: int, k: int, mu: int):
        if period <= 0:
            raise TimingError(f"period must be positive, got {period}")
        if k < 0:
            raise ModelError(f"fault budget k must be non-negative, got {k}")
        if mu < 0:
            raise TimingError(f"recovery overhead must be non-negative, got {mu}")
        if len(graph) == 0:
            raise ModelError("application graph has no processes")
        for proc in graph:
            if proc.is_hard and proc.deadline > period:
                raise TimingError(
                    f"{proc.name}: deadline {proc.deadline} exceeds period "
                    f"{period}"
                )
        self.graph = graph
        self.period = int(period)
        self.k = int(k)
        self.mu = int(mu)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.graph)

    def process(self, name: str) -> Process:
        return self.graph[name]

    @property
    def processes(self) -> List[Process]:
        return self.graph.processes

    @property
    def hard(self) -> List[Process]:
        """The set H of hard processes."""
        return self.graph.hard_processes()

    @property
    def soft(self) -> List[Process]:
        """The set S of soft processes."""
        return self.graph.soft_processes()

    def recovery_overhead(self, name: str) -> int:
        """Effective µ for a process (per-process override or global)."""
        proc = self.graph[name]
        if proc.recovery_overhead is not None:
            return proc.recovery_overhead
        return self.mu

    def recovery_need(self, name: str) -> int:
        """Worst-case cost of one recovery of ``name``: WCET + µ.

        This is the unit the shared-slack analysis multiplies by the
        fault count (paper §3: slack of ``(tiw + µ) × f``).
        """
        proc = self.graph[name]
        return proc.wcet + self.recovery_overhead(name)

    def max_utility(self) -> float:
        """Sum of the suprema of all soft utility functions.

        An upper bound on the utility of any scenario; used to
        normalize utilities across applications in the evaluation
        harness.
        """
        return sum(p.utility.max_value() for p in self.soft)

    def utility_horizon(self) -> int:
        """Latest time any utility function still changes."""
        horizons = [p.utility.horizon() for p in self.soft]
        return max(horizons) if horizons else 0

    def worst_case_load(self) -> int:
        """Sum of all WCETs plus the worst shared recovery demand.

        A quick feasibility indicator: if this exceeds the period, the
        full process set cannot complete in the worst fault scenario
        and soft processes will have to be dropped.
        """
        total = sum(p.wcet for p in self.processes)
        if self.k > 0 and self.processes:
            total += self.k * max(self.recovery_need(p.name) for p in self.processes)
        return total

    def validate(self) -> None:
        """Run the full consistency check suite; raises on violation."""
        from repro.model.validation import validate_application

        validate_application(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_hard = len(self.hard)
        n_soft = len(self.soft)
        return (
            f"Application(|V|={len(self)}, hard={n_hard}, soft={n_soft}, "
            f"T={self.period}, k={self.k}, mu={self.mu})"
        )


def application_from_graphs(
    graphs: Iterable[ProcessGraph],
    k: int,
    mu: int,
    periods: Optional[Dict[str, int]] = None,
) -> Application:
    """Build an application from one or more (possibly multi-rate) graphs.

    Graphs whose ``period`` attribute (or ``periods[name]`` entry)
    differ are merged over the hyper-period (LCM of the periods, paper
    §2); a single graph is wrapped directly.
    """
    from repro.model.hypergraph import merge_hyperperiod

    graph_list = list(graphs)
    if not graph_list:
        raise ModelError("need at least one process graph")
    resolved: List[ProcessGraph] = []
    for graph in graph_list:
        period = graph.period
        if periods and graph.name in periods:
            period = periods[graph.name]
        if period is None:
            raise TimingError(f"graph {graph.name!r} has no period")
        if graph.period != period:
            graph = ProcessGraph(
                graph.processes, graph.edges, name=graph.name, period=period
            )
        resolved.append(graph)
    if len(resolved) == 1:
        merged = resolved[0]
        hyper = merged.period
    else:
        merged, hyper = merge_hyperperiod(resolved)
    return Application(merged, period=hyper, k=k, mu=mu)
