"""Whole-application consistency checks.

:func:`validate_application` runs a battery of structural and timing
checks beyond what the individual dataclasses enforce, and raises the
most specific :mod:`repro.errors` subclass on the first violation.
These checks are deliberately strict: the scheduling heuristics assume
them, and a clear early error beats a silent mis-schedule.
"""

from __future__ import annotations

from typing import List

from repro.errors import GraphError, ModelError, TimingError
from repro.model.application import Application


def validate_application(app: Application) -> None:
    """Validate ``app``; raises a :class:`repro.errors.ModelError` subclass.

    Checks performed:

    1. every process appears in the dependency maps (graph integrity);
    2. the graph is acyclic (already enforced; re-verified cheaply);
    3. hard deadlines fit inside the period;
    4. every hard process can *individually* meet its deadline under
       the k-fault worst case even if it runs alone after its
       worst-case critical path — a necessary condition for
       schedulability that catches hopeless inputs before the heuristics
       spend time on them;
    5. utility horizons are finite sanity bounds (≤ 100 × period).
    """
    graph = app.graph
    order = graph.topological_order()
    if sorted(order) != sorted(graph.process_names):
        raise GraphError("topological order does not cover all processes")

    for proc in app.processes:
        if proc.is_hard:
            if proc.deadline > app.period:
                raise TimingError(
                    f"{proc.name}: deadline {proc.deadline} exceeds period "
                    f"{app.period}"
                )
            _check_critical_path(app, proc.name)
        else:
            horizon = proc.utility.horizon()
            if horizon > 100 * app.period:
                raise ModelError(
                    f"{proc.name}: utility horizon {horizon} is implausibly "
                    f"far beyond the period {app.period}"
                )


def _check_critical_path(app: Application, name: str) -> None:
    """Necessary condition: hard chain into ``name`` fits its deadline.

    The mandatory work before ``name`` completes is at least the sum of
    WCETs of its *hard* ancestors plus its own WCET, plus the worst
    shared recovery demand among those processes.  If that already
    exceeds the deadline, no schedule can help.
    """
    graph = app.graph
    hard_chain: List[str] = [
        a for a in graph.ancestors(name) if graph[a].is_hard
    ]
    hard_chain.append(name)
    total = sum(graph[p].wcet for p in hard_chain)
    if app.k > 0:
        total += app.k * max(app.recovery_need(p) for p in hard_chain)
    deadline = graph[name].deadline
    if total > deadline:
        raise TimingError(
            f"{name}: hard ancestor chain needs {total} ticks in the "
            f"k={app.k} worst case but the deadline is {deadline}"
        )
