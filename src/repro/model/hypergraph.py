"""Hyper-period merging of multi-rate process graphs (paper §2).

When an application contains process graphs with different periods,
all activations within the hyper-period (the LCM of the periods) are
instantiated as separate processes and combined into one graph.  An
activation ``j`` of graph ``G`` with period ``T_G`` is released at
``j * T_G``; we encode the release by chaining each instance's sources
behind the previous instance's sinks (instance ``j+1`` of a graph
cannot start before instance ``j`` finished), which preserves the
non-preemptive single-node semantics the paper assumes, and by
shifting hard deadlines of instance ``j`` by ``j * T_G``.

Soft utility functions of later instances are shifted in time the same
way via :class:`ShiftedUtility`, so a process completing at absolute
time ``t`` inside the hyper-period earns the utility its original
function assigns to the time since its release.

Modelling note: instance ordering is enforced purely through the
chaining precedence edges — exact release *offsets* (instance ``j``
not starting before ``j * T_G``) are not modelled, consistent with the
paper's self-triggered, non-preemptive execution where the schedule
never idles.  An instance may therefore start early when the machine
is free; its deadline and utility remain anchored to the nominal
release.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.errors import ModelError, TimingError
from repro.model.graph import ProcessGraph
from repro.utility.functions import UtilityFunction


class ShiftedUtility(UtilityFunction):
    """``U(t - shift)`` clamped so times before the release earn the max.

    Wraps the utility function of a process instance released at
    ``shift`` ticks into the hyper-period.
    """

    def __init__(self, base: UtilityFunction, shift: int):
        if shift < 0:
            raise TimingError("utility shift must be non-negative")
        self._base = base
        self._shift = int(shift)

    @property
    def base(self) -> UtilityFunction:
        return self._base

    @property
    def shift(self) -> int:
        return self._shift

    def value_at(self, t: int) -> float:
        return self._base.value_at(max(0, t - self._shift))

    def max_value(self) -> float:
        return self._base.max_value()

    def horizon(self) -> int:
        return self._base.horizon() + self._shift

    def breakpoints(self) -> List[int]:
        return [t + self._shift for t in self._base.breakpoints()]

    def is_piecewise_constant(self) -> bool:
        return self._base.is_piecewise_constant()

    def to_dict(self) -> Dict:
        return {
            "type": "shifted",
            "shift": self._shift,
            "base": self._base.to_dict(),
        }

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShiftedUtility)
            and self._shift == other._shift
            and self._base == other._base
        )

    def __hash__(self) -> int:
        return hash((self._shift, self._base))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShiftedUtility({self._base!r}, shift={self._shift})"


def hyperperiod(periods: Sequence[int]) -> int:
    """Least common multiple of the graph periods."""
    if not periods:
        raise ModelError("no periods given")
    result = 1
    for period in periods:
        if period <= 0:
            raise TimingError(f"period must be positive, got {period}")
        result = result * period // math.gcd(result, period)
    return result


def instance_name(process_name: str, instance: int) -> str:
    """Canonical name of activation ``instance`` of a process."""
    return f"{process_name}#{instance}"


def merge_hyperperiod(
    graphs: Sequence[ProcessGraph],
) -> Tuple[ProcessGraph, int]:
    """Merge multi-rate graphs into one hyper-period graph.

    Returns the merged graph and the hyper-period.  Process names are
    suffixed ``#j`` with the activation index ``j`` (0-based), even for
    graphs with a single activation, so the origin of every node stays
    recognizable.
    """
    if not graphs:
        raise ModelError("no graphs to merge")
    names = [g.name for g in graphs]
    if len(set(names)) != len(names):
        raise ModelError(f"graph names must be unique, got {names}")
    periods = []
    for graph in graphs:
        if graph.period is None:
            raise TimingError(f"graph {graph.name!r} has no period")
        periods.append(graph.period)
    hyper = hyperperiod(periods)

    merged_procs = []
    merged_edges: List[Tuple[str, str]] = []
    for graph in graphs:
        instances = hyper // graph.period
        prev_sinks: List[str] = []
        for j in range(instances):
            release = j * graph.period
            mapping = {n: instance_name(n, j) for n in graph.process_names}
            for proc in graph.processes:
                new_proc = replace(proc, name=mapping[proc.name])
                if proc.is_hard:
                    new_proc = replace(
                        new_proc, deadline=proc.deadline + release
                    )
                elif release > 0:
                    new_proc = replace(
                        new_proc,
                        utility=ShiftedUtility(proc.utility, release),
                    )
                merged_procs.append(new_proc)
            merged_edges.extend(
                (mapping[s], mapping[d]) for s, d in graph.edges
            )
            sources = [mapping[n] for n in graph.sources()]
            merged_edges.extend(
                (sink, source) for sink in prev_sinks for source in sources
            )
            prev_sinks = [mapping[n] for n in graph.sinks()]

    merged = ProcessGraph(
        merged_procs,
        merged_edges,
        name="+".join(names),
        period=hyper,
    )
    return merged, hyper
