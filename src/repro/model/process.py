"""Process model: the schedulable unit of the application (paper §2).

A :class:`Process` carries the timing triple (BCET, AET, WCET), its
criticality (:class:`ProcessKind`), and — depending on criticality —
either a hard deadline or a time/utility function.  Processes are
non-preemptable: once started they run to completion unless a transient
fault strikes, in which case the error-detection mechanism flags the
run as failed at its end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.errors import TimingError, UtilityError
from repro.utility.functions import UtilityFunction


class ProcessKind(Enum):
    """Criticality class of a process (paper §2.1)."""

    HARD = "hard"
    SOFT = "soft"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Process:
    """One node of a process graph.

    Parameters
    ----------
    name:
        Unique identifier within the application (e.g. ``"P1"``).
    bcet, wcet:
        Best-/worst-case execution times in integer ticks.  The error
        detection overhead is included in these numbers (paper §2.2).
    kind:
        :attr:`ProcessKind.HARD` or :attr:`ProcessKind.SOFT`.
    deadline:
        Individual hard deadline, relative to the activation of the
        process graph.  Required for hard processes, forbidden for soft
        ones.
    utility:
        Non-increasing time/utility function.  Required for soft
        processes, forbidden for hard ones.
    aet:
        Average-case execution time.  Defaults to ``(bcet + wcet) // 2``
        which is the mean of the uniform execution-time distribution the
        paper's experiments assume (§6; see DESIGN.md note 1).
    recovery_overhead:
        Optional per-process recovery overhead µ override; when ``None``
        the application-wide µ applies (the cruise-controller experiment
        uses µ = 10% of each WCET, hence the per-process hook).
    """

    name: str
    bcet: int
    wcet: int
    kind: ProcessKind
    deadline: Optional[int] = None
    utility: Optional[UtilityFunction] = None
    aet: Optional[int] = field(default=None)
    recovery_overhead: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TimingError("process name must be non-empty")
        if self.bcet < 0 or self.wcet <= 0:
            raise TimingError(
                f"{self.name}: execution times must be positive "
                f"(bcet={self.bcet}, wcet={self.wcet})"
            )
        if self.bcet > self.wcet:
            raise TimingError(
                f"{self.name}: BCET {self.bcet} exceeds WCET {self.wcet}"
            )
        if self.aet is None:
            object.__setattr__(self, "aet", (self.bcet + self.wcet) // 2)
        if not self.bcet <= self.aet <= self.wcet:
            raise TimingError(
                f"{self.name}: AET {self.aet} outside [BCET, WCET] "
                f"[{self.bcet}, {self.wcet}]"
            )
        if self.recovery_overhead is not None and self.recovery_overhead < 0:
            raise TimingError(
                f"{self.name}: recovery overhead must be non-negative"
            )
        if self.kind is ProcessKind.HARD:
            if self.deadline is None:
                raise TimingError(f"{self.name}: hard process needs a deadline")
            if self.deadline <= 0:
                raise TimingError(f"{self.name}: deadline must be positive")
            if self.utility is not None:
                raise UtilityError(
                    f"{self.name}: hard processes carry no utility function"
                )
        else:
            if self.utility is None:
                raise UtilityError(
                    f"{self.name}: soft process needs a utility function"
                )
            if self.deadline is not None:
                raise TimingError(
                    f"{self.name}: soft processes have no hard deadline"
                )

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    @property
    def is_hard(self) -> bool:
        """True for hard (deadline-bearing) processes."""
        return self.kind is ProcessKind.HARD

    @property
    def is_soft(self) -> bool:
        """True for soft (utility-bearing, droppable) processes."""
        return self.kind is ProcessKind.SOFT

    def utility_at(self, completion_time: int) -> float:
        """Evaluate the utility function at ``completion_time``.

        Hard processes produce no utility (paper §2.1): the method
        returns 0.0 for them so aggregation code can treat all processes
        uniformly.
        """
        if self.utility is None:
            return 0.0
        return self.utility(completion_time)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = "H" if self.is_hard else "S"
        return f"{self.name}({tag})"


def hard_process(
    name: str,
    bcet: int,
    wcet: int,
    deadline: int,
    aet: Optional[int] = None,
    recovery_overhead: Optional[int] = None,
) -> Process:
    """Build a hard process; shorthand used throughout tests/examples."""
    return Process(
        name=name,
        bcet=bcet,
        wcet=wcet,
        kind=ProcessKind.HARD,
        deadline=deadline,
        aet=aet,
        recovery_overhead=recovery_overhead,
    )


def soft_process(
    name: str,
    bcet: int,
    wcet: int,
    utility: UtilityFunction,
    aet: Optional[int] = None,
    recovery_overhead: Optional[int] = None,
) -> Process:
    """Build a soft process; shorthand used throughout tests/examples."""
    return Process(
        name=name,
        bcet=bcet,
        wcet=wcet,
        kind=ProcessKind.SOFT,
        utility=utility,
        aet=aet,
        recovery_overhead=recovery_overhead,
    )
