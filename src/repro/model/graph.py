"""Directed acyclic process graphs (paper §2).

An application is modelled as a set of directed, acyclic, *polar*
process graphs.  A graph is polar when it has a single source and a
single sink; the paper uses polarity only as a modelling convention, so
:class:`ProcessGraph` checks acyclicity always and polarity only on
request (:meth:`ProcessGraph.is_polar`, :meth:`ProcessGraph.polarized`).

The class stores its own adjacency maps (plain dicts) so the hot
scheduling loops never touch networkx; conversion helpers to/from
:class:`networkx.DiGraph` are provided for generators and analysis.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.errors import GraphError
from repro.model.process import Process


class ProcessGraph:
    """A DAG of :class:`Process` nodes with O(1) adjacency lookups."""

    def __init__(
        self,
        processes: Iterable[Process],
        edges: Iterable[Tuple[str, str]] = (),
        name: str = "G",
        period: Optional[int] = None,
    ):
        self.name = name
        self.period = period
        self._procs: Dict[str, Process] = {}
        for proc in processes:
            if proc.name in self._procs:
                raise GraphError(f"duplicate process name {proc.name!r}")
            self._procs[proc.name] = proc
        self._succ: Dict[str, List[str]] = {n: [] for n in self._procs}
        self._pred: Dict[str, List[str]] = {n: [] for n in self._procs}
        for src, dst in edges:
            self.add_edge(src, dst, _validate=False)
        self._check_acyclic()

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def add_edge(self, src: str, dst: str, _validate: bool = True) -> None:
        """Add the dependency ``src -> dst`` (output of src feeds dst)."""
        if src not in self._procs:
            raise GraphError(f"unknown process {src!r}")
        if dst not in self._procs:
            raise GraphError(f"unknown process {dst!r}")
        if src == dst:
            raise GraphError(f"self-loop on {src!r}")
        if dst in self._succ[src]:
            raise GraphError(f"duplicate edge {src!r} -> {dst!r}")
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        if _validate:
            self._check_acyclic()

    def _check_acyclic(self) -> None:
        order = self._topological_order_or_none()
        if order is None:
            raise GraphError(f"graph {self.name!r} contains a cycle")
        self._topo_cache = order

    def _topological_order_or_none(self) -> Optional[List[str]]:
        in_deg = {n: len(self._pred[n]) for n in self._procs}
        stack = sorted(n for n, d in in_deg.items() if d == 0)
        order: List[str] = []
        while stack:
            node = stack.pop()
            order.append(node)
            for succ in self._succ[node]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    stack.append(succ)
        if len(order) != len(self._procs):
            return None
        return order

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._procs)

    def __contains__(self, name: str) -> bool:
        return name in self._procs

    def __iter__(self) -> Iterator[Process]:
        return iter(self._procs.values())

    def __getitem__(self, name: str) -> Process:
        try:
            return self._procs[name]
        except KeyError:
            raise GraphError(f"unknown process {name!r}") from None

    @property
    def processes(self) -> List[Process]:
        """All processes, in insertion order."""
        return list(self._procs.values())

    @property
    def process_names(self) -> List[str]:
        return list(self._procs)

    @property
    def edges(self) -> List[Tuple[str, str]]:
        return [(s, d) for s in self._procs for d in self._succ[s]]

    def successors(self, name: str) -> List[str]:
        """Direct successors (consumers of ``name``'s outputs)."""
        if name not in self._succ:
            raise GraphError(f"unknown process {name!r}")
        return list(self._succ[name])

    def predecessors(self, name: str) -> List[str]:
        """Direct predecessors DP(Pi) (paper §2.1 stale-value formula)."""
        if name not in self._pred:
            raise GraphError(f"unknown process {name!r}")
        return list(self._pred[name])

    def sources(self) -> List[str]:
        """Processes with no predecessors (ready at activation)."""
        return [n for n in self._procs if not self._pred[n]]

    def sinks(self) -> List[str]:
        """Processes with no successors."""
        return [n for n in self._procs if not self._succ[n]]

    def topological_order(self) -> List[str]:
        """A deterministic topological order of the process names."""
        return list(self._topo_cache)

    def hard_processes(self) -> List[Process]:
        """The set H of hard processes."""
        return [p for p in self._procs.values() if p.is_hard]

    def soft_processes(self) -> List[Process]:
        """The set S of soft processes."""
        return [p for p in self._procs.values() if p.is_soft]

    def ancestors(self, name: str) -> Set[str]:
        """All transitive predecessors of ``name``."""
        seen: Set[str] = set()
        stack = list(self._pred[name])
        while stack:
            node = stack.pop()
            if node not in seen:
                seen.add(node)
                stack.extend(self._pred[node])
        return seen

    def descendants(self, name: str) -> Set[str]:
        """All transitive successors of ``name``."""
        seen: Set[str] = set()
        stack = list(self._succ[name])
        while stack:
            node = stack.pop()
            if node not in seen:
                seen.add(node)
                stack.extend(self._succ[node])
        return seen

    def is_polar(self) -> bool:
        """True when the graph has exactly one source and one sink."""
        return len(self.sources()) == 1 and len(self.sinks()) == 1

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def polarized(
        self,
        source_name: str = "__source__",
        sink_name: str = "__sink__",
        epsilon: int = 1,
    ) -> "ProcessGraph":
        """Return a polar copy with dummy source/sink processes added.

        The dummy processes are hard with negligible execution time
        ``epsilon`` and a deadline equal to the period (or a very large
        bound when no period is set); they model the activation and
        termination points of the graph, as in the paper's polar-graph
        convention.
        """
        from repro.model.process import hard_process

        if source_name in self._procs or sink_name in self._procs:
            raise GraphError("dummy node name collides with a process")
        big = self.period if self.period is not None else 2**31
        dummies = [
            hard_process(source_name, epsilon, epsilon, big),
            hard_process(sink_name, epsilon, epsilon, big),
        ]
        procs = dummies[:1] + self.processes + dummies[1:]
        edges = self.edges
        edges += [(source_name, n) for n in self.sources()]
        edges += [(n, sink_name) for n in self.sinks()]
        return ProcessGraph(procs, edges, name=self.name, period=self.period)

    def subgraph(self, names: Sequence[str]) -> "ProcessGraph":
        """Induced subgraph on ``names`` (edge set restricted)."""
        keep = set(names)
        unknown = keep - set(self._procs)
        if unknown:
            raise GraphError(f"unknown processes {sorted(unknown)}")
        procs = [self._procs[n] for n in self._procs if n in keep]
        edges = [(s, d) for s, d in self.edges if s in keep and d in keep]
        return ProcessGraph(procs, edges, name=self.name, period=self.period)

    def relabelled(self, mapping: Dict[str, str]) -> "ProcessGraph":
        """Copy with process names rewritten through ``mapping``.

        Used by hyper-graph construction to disambiguate process
        activations from different periods (e.g. ``P1`` -> ``P1#0``).
        """
        from dataclasses import replace

        procs = []
        for proc in self._procs.values():
            new_name = mapping.get(proc.name, proc.name)
            procs.append(replace(proc, name=new_name))
        edges = [
            (mapping.get(s, s), mapping.get(d, d)) for s, d in self.edges
        ]
        return ProcessGraph(procs, edges, name=self.name, period=self.period)

    # ------------------------------------------------------------------
    # networkx bridge
    # ------------------------------------------------------------------
    def to_networkx(self) -> "nx.DiGraph":
        """Export as a networkx DiGraph with ``process`` node attributes."""
        graph = nx.DiGraph(name=self.name)
        for proc in self._procs.values():
            graph.add_node(proc.name, process=proc)
        graph.add_edges_from(self.edges)
        return graph

    @classmethod
    def from_networkx(
        cls,
        graph: "nx.DiGraph",
        name: str = "G",
        period: Optional[int] = None,
    ) -> "ProcessGraph":
        """Import from a networkx DiGraph carrying ``process`` attributes."""
        procs = []
        for node, data in graph.nodes(data=True):
            proc = data.get("process")
            if proc is None:
                raise GraphError(f"node {node!r} lacks a 'process' attribute")
            if proc.name != node:
                raise GraphError(
                    f"node key {node!r} does not match process name "
                    f"{proc.name!r}"
                )
            procs.append(proc)
        return cls(procs, graph.edges(), name=name, period=period)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessGraph({self.name!r}, |V|={len(self)}, "
            f"|E|={len(self.edges)}, T={self.period})"
        )
