"""Application model: processes, graphs, applications, hyper-periods."""

from repro.model.application import Application, application_from_graphs
from repro.model.graph import ProcessGraph
from repro.model.hypergraph import (
    ShiftedUtility,
    hyperperiod,
    instance_name,
    merge_hyperperiod,
)
from repro.model.process import (
    Process,
    ProcessKind,
    hard_process,
    soft_process,
)
from repro.model.validation import validate_application

__all__ = [
    "Application",
    "Process",
    "ProcessGraph",
    "ProcessKind",
    "ShiftedUtility",
    "application_from_graphs",
    "hard_process",
    "hyperperiod",
    "instance_name",
    "merge_hyperperiod",
    "soft_process",
    "validate_application",
]
