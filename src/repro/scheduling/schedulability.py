"""Schedulability tests used inside the FTSS loop (paper §5.2 line 4).

A ready process P_i "leads to a schedulable solution" when the
schedule S_iH — the already-scheduled prefix, then P_i, then all
remaining *hard* processes (every other soft process dropped) — meets
all hard deadlines in the worst-case fault scenario.  S_iH is the
shortest valid schedule containing P_i, so if it misses a deadline no
completion of the prefix + P_i can be saved.

The remaining hard processes are appended in *modified-deadline* EDF
order (Blazewicz/Lawler): every hard process's deadline is tightened
to ``min(d_i, min over hard successors j of (d'_j − WCET_j))``, after
which plain sorting by the modified deadline both respects precedence
(the modified deadline of a predecessor is strictly smaller than its
successor's) and is optimal for single-resource, common-release
deadline scheduling.  Because the order is a *static sort*, any subset
of hard processes keeps a consistent relative order — the property the
fast feasibility oracle (:mod:`repro.scheduling.feasibility`) relies
on to avoid recomputing orders per probe.

Only direct hard-to-hard precedence edges constrain the order: a path
through a soft process imposes nothing once that soft process is
dropped (its consumer falls back to a stale value, paper §2.1), and
S_iH drops every other soft process by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.model.application import Application
from repro.scheduling.fschedule import FSchedule, ScheduledEntry


def modified_deadlines(app: Application) -> Dict[str, int]:
    """Precedence-consistent (Blazewicz) deadlines of the hard set.

    ``d'_i = min(d_i, min_{j in hard direct successors} d'_j - WCET_j)``,
    computed in reverse topological order.  Guarantees
    ``d'_pred < d'_succ`` along every hard-hard edge, so sorting by the
    modified deadline yields a precedence-valid order.
    """
    graph = app.graph
    hard = {p.name for p in app.hard}
    result: Dict[str, int] = {}
    for name in reversed(graph.topological_order()):
        if name not in hard:
            continue
        deadline = graph[name].deadline
        for succ in graph.successors(name):
            if succ in hard:
                deadline = min(deadline, result[succ] - graph[succ].wcet)
        result[name] = deadline
    return result


def edf_hard_order(
    app: Application,
    hard_names: Iterable[str],
    already_done: Iterable[str] = (),
) -> List[str]:
    """Modified-deadline EDF order of the given hard processes.

    ``already_done`` is accepted for API symmetry (the sort is global,
    so completed processes simply do not appear in ``hard_names``).
    """
    deadlines = modified_deadlines(app)
    return sorted(hard_names, key=lambda n: (deadlines[n], n))


def candidate_schedule(
    app: Application,
    prefix: Sequence[ScheduledEntry],
    candidate: Optional[str],
    fault_budget: int,
    start_time: int = 0,
    prior_completed: Iterable[str] = (),
    prior_dropped: Iterable[str] = (),
    candidate_reexecutions: Optional[int] = None,
    slack_sharing: bool = True,
) -> FSchedule:
    """Build the S_iH test schedule: prefix + candidate + hard tail.

    ``candidate`` may be ``None`` to test the prefix alone (used when
    checking whether the already-made decisions are still feasible).
    Hard candidates get the full ``fault_budget`` re-executions; soft
    candidates get ``candidate_reexecutions`` (default 0) — the FTSS
    slack-assignment step probes increasing values.
    """
    entries: List[ScheduledEntry] = list(prefix)
    done = set(prior_completed) | {e.name for e in prefix}
    if candidate is not None:
        proc = app.process(candidate)
        if proc.is_hard:
            rex = fault_budget
        else:
            rex = candidate_reexecutions or 0
        entries.append(ScheduledEntry(candidate, rex))
        done.add(candidate)
    remaining_hard = [
        p.name for p in app.hard if p.name not in done
    ]
    for name in edf_hard_order(app, remaining_hard, done):
        entries.append(ScheduledEntry(name, fault_budget))
    return FSchedule(
        app,
        entries,
        start_time=start_time,
        fault_budget=fault_budget,
        prior_completed=prior_completed,
        prior_dropped=prior_dropped,
        slack_sharing=slack_sharing,
    )


def leads_to_schedulable(
    app: Application,
    prefix: Sequence[ScheduledEntry],
    candidate: str,
    fault_budget: int,
    start_time: int = 0,
    prior_completed: Iterable[str] = (),
    prior_dropped: Iterable[str] = (),
    slack_sharing: bool = True,
) -> bool:
    """FTSS ``GetSchedulable`` membership test for one candidate."""
    schedule = candidate_schedule(
        app,
        prefix,
        candidate,
        fault_budget,
        start_time=start_time,
        prior_completed=prior_completed,
        prior_dropped=prior_dropped,
        slack_sharing=slack_sharing,
    )
    return schedule.is_schedulable()


def get_schedulable(
    app: Application,
    prefix: Sequence[ScheduledEntry],
    ready: Sequence[str],
    fault_budget: int,
    start_time: int = 0,
    prior_completed: Iterable[str] = (),
    prior_dropped: Iterable[str] = (),
    slack_sharing: bool = True,
) -> List[str]:
    """FTSS line 4: the subset A of ready processes that lead to a
    schedulable solution."""
    return [
        name
        for name in ready
        if leads_to_schedulable(
            app,
            prefix,
            name,
            fault_budget,
            start_time=start_time,
            prior_completed=prior_completed,
            prior_dropped=prior_dropped,
            slack_sharing=slack_sharing,
        )
    ]
