"""Static fault-tolerant scheduling: f-schedules, FTSS, FTSF."""

from repro.scheduling.dropping import (
    determine_dropping,
    dropping_gain,
    forced_dropping_choice,
    greedy_soft_order,
    hypothetical_utility,
)
from repro.scheduling.fschedule import (
    FSchedule,
    ScheduledEntry,
    shared_recovery_demand,
)
from repro.scheduling.ftsf import ftsf
from repro.scheduling.ftss import DEFAULT_CONFIG, FTSSConfig, ftss
from repro.scheduling.nft import nft_schedule
from repro.scheduling.priority import (
    best_soft,
    earliest_deadline_hard,
    soft_priorities,
)
from repro.scheduling.schedulability import (
    candidate_schedule,
    edf_hard_order,
    get_schedulable,
    leads_to_schedulable,
    modified_deadlines,
)
from repro.scheduling.slack import (
    SlackEntry,
    format_slack_profile,
    minimum_slack,
    slack_profile,
)

__all__ = [
    "DEFAULT_CONFIG",
    "FSchedule",
    "FTSSConfig",
    "ScheduledEntry",
    "best_soft",
    "candidate_schedule",
    "determine_dropping",
    "dropping_gain",
    "earliest_deadline_hard",
    "edf_hard_order",
    "forced_dropping_choice",
    "ftsf",
    "ftss",
    "get_schedulable",
    "greedy_soft_order",
    "hypothetical_utility",
    "leads_to_schedulable",
    "minimum_slack",
    "modified_deadlines",
    "nft_schedule",
    "shared_recovery_demand",
    "slack_profile",
    "soft_priorities",
    "SlackEntry",
    "format_slack_profile",
]
