"""FTSF — the straightforward baseline the paper compares against (§6).

The baseline works in three steps:

1. obtain a static non-fault-tolerant schedule that produces maximal
   value (our :func:`repro.scheduling.nft.nft_schedule`, standing in
   for Cortes et al. [3]);
2. make it fault tolerant by allotting ``k`` re-executions (recovery
   slack) to the hard processes, keeping the order fixed;
3. while the resulting f-schedule is not schedulable, drop the soft
   process with the lowest utility value and try again.

"Lowest utility value" is interpreted as the smallest expected utility
contribution in the fault-free average case (its α-weighted utility at
its expected completion time): the cheapest process to sacrifice.  The
paper reports FTSF 20-70% worse than FTSS in overall utility — the
order was fixed before fault tolerance was considered, so the recovery
slack lands wherever it may, and dropping decisions cannot adapt the
order.
"""

from __future__ import annotations

from typing import List, Optional

from repro.model.application import Application
from repro.scheduling.fschedule import FSchedule, ScheduledEntry
from repro.scheduling.nft import nft_schedule
from repro.utility.stale import stale_coefficients


def _fault_tolerant_entries(
    app: Application, order: List[str], k: int
) -> List[ScheduledEntry]:
    """Step 2: k re-executions for hard processes, none for soft."""
    entries = []
    for name in order:
        rex = k if app.process(name).is_hard else 0
        entries.append(ScheduledEntry(name, rex))
    return entries


def _cheapest_soft(app: Application, schedule: FSchedule) -> Optional[str]:
    """The scheduled soft process with the lowest expected utility."""
    completions = schedule.expected_completions()
    alphas = stale_coefficients(app.graph, schedule.all_dropped)
    values = {}
    for entry in schedule.entries:
        proc = app.process(entry.name)
        if not proc.is_soft:
            continue
        t = completions[entry.name]
        value = 0.0
        if t <= app.period:
            value = alphas[entry.name] * proc.utility_at(t)
        values[entry.name] = value
    if not values:
        return None
    return min(sorted(values), key=lambda n: values[n])


def ftsf(app: Application) -> Optional[FSchedule]:
    """Run the FTSF baseline; ``None`` when unschedulable.

    The returned schedule has the same guarantees as an FTSS schedule
    (hard deadlines hold under up to k faults) but typically much lower
    utility.
    """
    base = nft_schedule(app)
    if base is None:
        return None
    order = base.order
    dropped = set(base.all_dropped)
    while True:
        entries = _fault_tolerant_entries(app, order, app.k)
        schedule = FSchedule(
            app,
            entries,
            fault_budget=app.k,
            prior_dropped=frozenset(),
        )
        if schedule.is_schedulable():
            return schedule
        victim = _cheapest_soft(app, schedule)
        if victim is None:
            return None
        order = [n for n in order if n != victim]
        dropped.add(victim)
