"""Fault-tolerant schedules with shared recovery slack (paper §3).

An *f-schedule* is an ordered list of processes on the single
computation node, where each process carries an allotment of
re-executions (k for hard processes; 0..k for soft ones, decided by
the FTSS heuristic).  Recovery time is **not** reserved per process:
following [7], processes scheduled in sequence share one recovery
slack, because at most ``k`` faults can occur in total.  The worst-case
delay that recoveries can add before some position in the schedule is
therefore the solution of a small knapsack-like maximization: assign
the ``k`` faults to the already-started processes so that the total
recovery cost Σ (WCET + µ) is maximal, respecting each process's
re-execution cap.  With the caps all ≥ the remaining faults this
reduces to ``k × max(WCET_j + µ_j)``, the formula quoted in §3.

:class:`FSchedule` is immutable after construction and provides the
two analyses every heuristic needs:

* worst-case completion times (WCET + shared recovery demand) for the
  hard-deadline guarantee, and
* expected completion times and overall utility under average-case
  execution times for optimization (§5.2: "an f-schedule generated for
  worst-case execution times, while the utility is maximized for
  average execution times").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.model.application import Application
from repro.utility.stale import stale_coefficients


@dataclass(frozen=True)
class ScheduledEntry:
    """One slot of an f-schedule: a process and its re-execution cap."""

    name: str
    reexecutions: int

    def __post_init__(self) -> None:
        if self.reexecutions < 0:
            raise SchedulingError(
                f"{self.name}: re-execution cap must be non-negative"
            )


def shared_recovery_demand(
    needs: Sequence[Tuple[int, int]],
    faults: int,
) -> int:
    """Worst-case total recovery time for ``faults`` faults.

    ``needs`` lists ``(recovery_cost, cap)`` pairs for the processes
    that may recover (cost = WCET + µ of one re-execution, cap = the
    allotted number of re-executions).  The adversary assigns faults to
    maximize total recovery cost; the greedy choice (most expensive
    first, up to each cap) is optimal because all faults are
    interchangeable.
    """
    if faults <= 0:
        return 0
    remaining = faults
    total = 0
    for cost, cap in sorted(needs, key=lambda nc: -nc[0]):
        if remaining <= 0:
            break
        take = min(cap, remaining)
        total += take * cost
        remaining -= take
    return total


class FSchedule:
    """An immutable fault-tolerant schedule (order + re-execution caps).

    Parameters
    ----------
    app:
        The application the schedule belongs to.
    entries:
        Processes in execution order with their re-execution caps.
    start_time:
        Time at which the first entry starts; 0 for root schedules,
        the switching time for quasi-static tail schedules.
    fault_budget:
        Number of faults still to be tolerated from ``start_time`` on
        (k for root schedules, fewer for tails entered after faults).
    prior_completed / prior_dropped:
        Context for tail schedules: processes that already finished or
        were already dropped before ``start_time``.  They influence
        stale-value coefficients and are excluded from the dropped set
        of this schedule.
    slack_sharing:
        When ``False``, every recoverable process reserves its own
        private recovery slack instead of sharing one (the
        ``ablation-slack-sharing`` configuration; the paper's scheme
        always shares).
    """

    def __init__(
        self,
        app: Application,
        entries: Sequence[ScheduledEntry],
        start_time: int = 0,
        fault_budget: Optional[int] = None,
        prior_completed: Iterable[str] = (),
        prior_dropped: Iterable[str] = (),
        slack_sharing: bool = True,
    ):
        self.app = app
        self.entries: Tuple[ScheduledEntry, ...] = tuple(entries)
        self.start_time = int(start_time)
        self.fault_budget = app.k if fault_budget is None else int(fault_budget)
        self.prior_completed: FrozenSet[str] = frozenset(prior_completed)
        self.prior_dropped: FrozenSet[str] = frozenset(prior_dropped)
        self.slack_sharing = bool(slack_sharing)
        if self.fault_budget < 0:
            raise SchedulingError("fault budget must be non-negative")
        self._validate()
        self._index = {e.name: i for i, e in enumerate(self.entries)}

    # ------------------------------------------------------------------
    # Construction helpers / validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        graph = self.app.graph
        seen = set(self.prior_completed)
        overlap = self.prior_completed & self.prior_dropped
        if overlap:
            raise SchedulingError(
                f"processes both completed and dropped before start: "
                f"{sorted(overlap)}"
            )
        names = [e.name for e in self.entries]
        if len(set(names)) != len(names):
            raise SchedulingError(f"duplicate process in schedule: {names}")
        for entry in self.entries:
            if entry.name not in graph:
                raise SchedulingError(f"unknown process {entry.name!r}")
            if entry.name in self.prior_completed | self.prior_dropped:
                raise SchedulingError(
                    f"{entry.name!r} already completed/dropped before start"
                )
            proc = graph[entry.name]
            for pred in graph.predecessors(entry.name):
                if pred not in seen and pred not in self.prior_dropped:
                    # A dropped predecessor supplies a stale value, so
                    # the successor may still run (paper §2.1); an
                    # unscheduled, undropped predecessor is an ordering
                    # violation.
                    if pred not in self._dropped_names(names):
                        raise SchedulingError(
                            f"{entry.name!r} scheduled before its "
                            f"predecessor {pred!r}"
                        )
            if proc.is_hard and entry.reexecutions != self.fault_budget:
                raise SchedulingError(
                    f"hard process {entry.name!r} must be allotted exactly "
                    f"{self.fault_budget} re-executions, got "
                    f"{entry.reexecutions}"
                )
            seen.add(entry.name)

    def _dropped_names(self, scheduled: Sequence[str]) -> FrozenSet[str]:
        scheduled_set = set(scheduled) | self.prior_completed | self.prior_dropped
        return frozenset(
            p.name
            for p in self.app.graph.soft_processes()
            if p.name not in scheduled_set
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchedulingError(f"{name!r} not in schedule") from None

    @property
    def order(self) -> List[str]:
        """Process names in execution order."""
        return [e.name for e in self.entries]

    def reexecutions_of(self, name: str) -> int:
        return self.entries[self.position(name)].reexecutions

    @property
    def dropped(self) -> FrozenSet[str]:
        """Soft processes this schedule decides not to execute.

        Excludes processes dropped before the schedule's start (those
        are in :attr:`prior_dropped`).
        """
        return self._dropped_names([e.name for e in self.entries])

    @property
    def all_dropped(self) -> FrozenSet[str]:
        """Dropped before start plus dropped by this schedule."""
        return self.dropped | self.prior_dropped

    def signature(self) -> Tuple:
        """Hashable identity used to count *different* schedules (FTQS).

        Two schedules are "the same" when they execute the same
        processes in the same order with the same re-execution caps —
        start times and contexts do not affect the online behaviour
        the schedule encodes.
        """
        return tuple((e.name, e.reexecutions) for e in self.entries)

    # ------------------------------------------------------------------
    # Worst-case analysis (hard guarantees)
    # ------------------------------------------------------------------
    def worst_case_completions(self) -> Dict[str, int]:
        """Completion bound of every entry under the fault hypothesis.

        Position ``i`` completes no later than
        ``start + Σ_{j≤i} WCET_j + D_i`` where ``D_i`` is the shared
        recovery demand of the first ``i+1`` entries
        (:func:`shared_recovery_demand`).  Soft re-executions are
        included via their caps — the online scheduler only grants a
        soft re-execution when it cannot push any hard process past its
        deadline, but the static bound must cover the granted ones.
        """
        completions: Dict[str, int] = {}
        clock = self.start_time
        needs: List[Tuple[int, int]] = []
        for entry in self.entries:
            proc = self.app.process(entry.name)
            clock += proc.wcet
            if entry.reexecutions > 0:
                needs.append(
                    (self.app.recovery_need(entry.name), entry.reexecutions)
                )
            if self.slack_sharing:
                demand = shared_recovery_demand(needs, self.fault_budget)
            else:
                demand = sum(
                    cost * min(cap, self.fault_budget) for cost, cap in needs
                )
            completions[entry.name] = clock + demand
        return completions

    def worst_case_makespan(self) -> int:
        """Worst-case completion of the last entry (start if empty)."""
        if not self.entries:
            return self.start_time
        return self.worst_case_completions()[self.entries[-1].name]

    def is_schedulable(self) -> bool:
        """True when every hard deadline and the period hold in the
        worst-case fault scenario.

        Hard processes absent from the schedule (and not completed
        before it) make it unschedulable by definition — hard processes
        can never be dropped.
        """
        missing_hard = [
            p.name
            for p in self.app.hard
            if p.name not in self._index and p.name not in self.prior_completed
        ]
        if missing_hard:
            return False
        completions = self.worst_case_completions()
        for entry in self.entries:
            proc = self.app.process(entry.name)
            if proc.is_hard and completions[entry.name] > proc.deadline:
                return False
        return self.worst_case_makespan() <= self.app.period

    # ------------------------------------------------------------------
    # Expected-case analysis (utility optimization)
    # ------------------------------------------------------------------
    def expected_completions(
        self, durations: Optional[Mapping[str, int]] = None
    ) -> Dict[str, int]:
        """Fault-free completion times under ``durations`` (default AET)."""
        completions: Dict[str, int] = {}
        clock = self.start_time
        for entry in self.entries:
            proc = self.app.process(entry.name)
            duration = (
                durations[entry.name] if durations is not None else proc.aet
            )
            clock += duration
            completions[entry.name] = clock
        return completions

    def expected_utility(
        self, durations: Optional[Mapping[str, int]] = None
    ) -> float:
        """Overall utility of the fault-free execution of this schedule.

        Counts the soft processes scheduled here (α-degraded per the
        stale-value model, with prior and local drops combined);
        completions past the period earn nothing.  Contributions of
        processes completed *before* the schedule's start are a fixed
        constant for all tails compared against each other, so they are
        deliberately excluded.
        """
        completions = self.expected_completions(durations)
        alphas = stale_coefficients(self.app.graph, self.all_dropped)
        total = 0.0
        for entry in self.entries:
            proc = self.app.process(entry.name)
            if not proc.is_soft:
                continue
            t = completions[entry.name]
            if t > self.app.period:
                continue
            total += alphas[entry.name] * proc.utility_at(t)
        return total

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_entries(self, entries: Sequence[ScheduledEntry]) -> "FSchedule":
        """Copy with a different entry list, same context."""
        return FSchedule(
            self.app,
            entries,
            start_time=self.start_time,
            fault_budget=self.fault_budget,
            prior_completed=self.prior_completed,
            prior_dropped=self.prior_dropped,
            slack_sharing=self.slack_sharing,
        )

    def tail_context(
        self, upto: int, completion_time: int, extra_dropped: Iterable[str] = ()
    ) -> Dict:
        """Context kwargs for a tail schedule starting after position
        ``upto`` (inclusive) at ``completion_time``.

        Used by FTQS when re-planning the remainder of a parent
        schedule after observing the completion of its ``upto``-th
        process.
        """
        if not 0 <= upto < len(self.entries):
            raise SchedulingError(f"position {upto} out of range")
        done = set(self.prior_completed)
        done.update(e.name for e in self.entries[: upto + 1])
        return {
            "start_time": completion_time,
            "prior_completed": frozenset(done),
            "prior_dropped": frozenset(self.prior_dropped) | frozenset(extra_dropped),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(
            f"{e.name}+{e.reexecutions}" if e.reexecutions else e.name
            for e in self.entries
        )
        return (
            f"FSchedule([{body}], start={self.start_time}, "
            f"budget={self.fault_budget})"
        )
