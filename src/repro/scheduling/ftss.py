"""FTSS — static scheduling for fault tolerance and utility
maximization (paper §5.2, Fig. 8).

FTSS is a list-scheduling heuristic over the set of *ready* processes
(all predecessors scheduled or dropped).  Each iteration:

1. evaluates every ready soft process with the dropping heuristic and
   drops the ones whose removal increases the expected utility
   (``DetermineDropping``);
2. filters the ready list down to the set A of processes that lead to
   a schedulable solution even under k faults (``GetSchedulable``);
3. if A is empty, force-drops the cheapest soft ready process and
   retries; if no soft process is left to sacrifice, the application
   is unschedulable;
4. picks the best process — the soft one with the highest MU priority,
   or, if no soft candidate exists, the hard one with the earliest
   deadline (``GetBestProcess``);
5. appends it with its recovery-slack allotment: hard processes always
   get k re-executions; soft processes get as many re-executions as
   remain schedulable *and* beneficial for the expected utility.

The resulting f-schedule guarantees the hard deadlines for worst-case
execution times while its utility is maximized for average execution
times (the decisions in steps 1, 4 and 5 all use AETs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

from repro.model.application import Application
from repro.scheduling.dropping import (
    determine_dropping,
    determine_dropping_fast,
    forced_dropping_choice,
    forced_dropping_choice_fast,
    greedy_soft_order,
    hypothetical_utility,
)
from repro.scheduling.feasibility import FeasibilityOracle
from repro.scheduling.fschedule import FSchedule, ScheduledEntry
from repro.scheduling.priority import (
    best_soft,
    earliest_deadline_hard,
    soft_priorities,
)
from repro.scheduling.schedulability import candidate_schedule, get_schedulable


@dataclass(frozen=True)
class FTSSConfig:
    """Tunables and ablation switches for FTSS.

    Attributes
    ----------
    drop_heuristic:
        Run ``DetermineDropping`` each iteration (paper default).  When
        off, soft processes are only dropped when forced — the
        ``ablation-dropping`` configuration.
    soft_reexecution:
        Allot re-executions to soft processes when schedulable and
        beneficial (paper default).  When off, soft processes are
        dropped on their first fault.
    slack_sharing:
        Share recovery slack between processes (paper default); the
        ``ablation-slack-sharing`` switch reserves private slack.
    optimize_for:
        ``"aet"`` (paper default) evaluates utility decisions at
        average-case times; ``"wcet"`` is the ``ablation-avg-opt``
        configuration that optimizes the pessimistic case instead.
    successor_weight:
        Lookahead weight of the MU priority.
    fast_paths:
        Use the incremental feasibility oracle and the removal-scored
        dropping evaluation (exact re-implementations of the slow
        probes up to greedy-order second-order effects; the test suite
        cross-checks them).  Off = reference implementation.
    """

    drop_heuristic: bool = True
    soft_reexecution: bool = True
    slack_sharing: bool = True
    optimize_for: str = "aet"
    successor_weight: float = 0.5
    fast_paths: bool = True

    def __post_init__(self) -> None:
        if self.optimize_for not in ("aet", "wcet"):
            raise ValueError(
                f"optimize_for must be 'aet' or 'wcet', got "
                f"{self.optimize_for!r}"
            )

    def decision_time(self, app: Application, name: str) -> int:
        """Execution-time estimate used for utility decisions."""
        proc = app.process(name)
        return proc.aet if self.optimize_for == "aet" else proc.wcet


DEFAULT_CONFIG = FTSSConfig()


class _FTSSState:
    """Mutable bookkeeping for one FTSS run."""

    def __init__(
        self,
        app: Application,
        fault_budget: int,
        start_time: int,
        prior_completed: Iterable[str],
        prior_dropped: Iterable[str],
        config: FTSSConfig,
    ):
        self.app = app
        self.config = config
        self.fault_budget = fault_budget
        self.start_time = start_time
        self.prior_completed: Set[str] = set(prior_completed)
        self.prior_dropped: Set[str] = set(prior_dropped)
        self.entries: List[ScheduledEntry] = []
        self.dropped: Set[str] = set()
        self.clock = start_time  # decision-time completion of the prefix
        self.ready: Set[str] = set()
        self._settled: Set[str] = set(self.prior_completed) | set(
            self.prior_dropped
        )
        for name in app.graph.process_names:
            if name in self._settled:
                continue
            self._maybe_ready(name)
        self.oracle = FeasibilityOracle(
            app,
            fault_budget,
            start_time=start_time,
            prior_completed=tuple(self.prior_completed),
            slack_sharing=config.slack_sharing,
        )

    # -- ready-list maintenance ---------------------------------------
    def _maybe_ready(self, name: str) -> None:
        preds = self.app.graph.predecessors(name)
        if all(p in self._settled for p in preds):
            self.ready.add(name)

    def settle(self, name: str) -> None:
        """Mark ``name`` scheduled or dropped; promote ready successors."""
        self._settled.add(name)
        self.ready.discard(name)
        for succ in self.app.graph.successors(name):
            if succ not in self._settled:
                self._maybe_ready(succ)

    # -- views ----------------------------------------------------------
    @property
    def all_dropped(self) -> Set[str]:
        return self.dropped | self.prior_dropped

    def unscheduled_soft(self) -> List[str]:
        scheduled = {e.name for e in self.entries}
        return [
            p.name
            for p in self.app.soft
            if p.name not in scheduled
            and p.name not in self.all_dropped
            and p.name not in self.prior_completed
        ]

    def drop(self, name: str) -> None:
        self.dropped.add(name)
        self.settle(name)

    def schedule(self, name: str, reexecutions: int) -> None:
        self.entries.append(ScheduledEntry(name, reexecutions))
        self.clock += self.config.decision_time(self.app, name)
        self.oracle.on_schedule(name, reexecutions)
        self.settle(name)


def ftss(
    app: Application,
    fault_budget: Optional[int] = None,
    start_time: int = 0,
    prior_completed: Iterable[str] = (),
    prior_dropped: Iterable[str] = (),
    config: FTSSConfig = DEFAULT_CONFIG,
) -> Optional[FSchedule]:
    """Run FTSS; returns the f-schedule or ``None`` when unschedulable.

    The default arguments produce the root schedule S_root of the
    paper's scheduling strategy (Fig. 6).  FTQS re-invokes this
    function with ``start_time``/``prior_completed``/``fault_budget``
    describing an intermediate execution state to generate tail
    sub-schedules.
    """
    budget = app.k if fault_budget is None else int(fault_budget)
    state = _FTSSState(
        app, budget, start_time, prior_completed, prior_dropped, config
    )

    while state.ready:
        ready_sorted = sorted(state.ready)
        # Line 3: DetermineDropping over the ready soft processes.
        if config.drop_heuristic:
            dropper = (
                determine_dropping_fast
                if config.fast_paths
                else determine_dropping
            )
            drops = dropper(
                app,
                ready_sorted,
                state.unscheduled_soft(),
                state.clock,
                state.all_dropped,
            )
            for name in drops:
                state.drop(name)
            if not state.ready:
                break
            ready_sorted = sorted(state.ready)

        # Line 4: GetSchedulable.
        schedulable = _get_schedulable(state, ready_sorted)

        # Lines 5-9: ForcedDropping until something is schedulable.
        while not schedulable:
            ready_soft = [
                n for n in sorted(state.ready) if app.process(n).is_soft
            ]
            forced = (
                forced_dropping_choice_fast
                if config.fast_paths
                else forced_dropping_choice
            )
            victim = forced(
                app,
                ready_soft,
                state.unscheduled_soft(),
                state.clock,
                state.all_dropped,
            )
            if victim is None:
                break
            state.drop(victim)
            if not state.ready:
                break
            schedulable = _get_schedulable(state, sorted(state.ready))
        if not state.ready:
            break
        if not schedulable:
            return None  # Line 10: unschedulable.

        # Lines 11-12: priorities and GetBestProcess.
        best = _get_best_process(state, schedulable)

        # Lines 13-14: schedule and assign the recovery slack.
        proc = app.process(best)
        if proc.is_hard:
            reexecutions = budget
        else:
            reexecutions = _soft_reexecution_allotment(state, best)
        state.schedule(best, reexecutions)

    # The schedule's own dropping decisions are implied by the entry
    # list (the ``dropped`` property derives them); only drops decided
    # *before* this schedule belong in prior_dropped.
    schedule = FSchedule(
        app,
        state.entries,
        start_time=start_time,
        fault_budget=budget,
        prior_completed=state.prior_completed,
        prior_dropped=state.prior_dropped,
        slack_sharing=config.slack_sharing,
    )
    if not schedule.is_schedulable():
        return None
    return schedule


def _get_schedulable(state: _FTSSState, ready: Sequence[str]) -> List[str]:
    if state.config.fast_paths:
        return state.oracle.schedulable_subset(ready)
    return get_schedulable(
        state.app,
        state.entries,
        ready,
        state.fault_budget,
        start_time=state.start_time,
        prior_completed=state.prior_completed,
        prior_dropped=state.all_dropped,
        slack_sharing=state.config.slack_sharing,
    )


def _get_best_process(state: _FTSSState, candidates: Sequence[str]) -> str:
    """GetBestProcess: highest-MU soft candidate, else EDF hard."""
    app = state.app
    soft_candidates = [n for n in candidates if app.process(n).is_soft]
    if soft_candidates:
        priorities = soft_priorities(
            app,
            soft_candidates,
            state.clock,
            state.all_dropped,
            successor_weight=state.config.successor_weight,
        )
        return best_soft(priorities)
    hard_candidates = [n for n in candidates if app.process(n).is_hard]
    return earliest_deadline_hard(app, hard_candidates)


def _soft_reexecution_allotment(state: _FTSSState, name: str) -> int:
    """How many re-executions the soft process ``name`` receives.

    Each additional re-execution must (a) keep the S_iH test schedule
    feasible (the worst-case analysis then accounts for the slack it
    may consume) and (b) be beneficial: conditioned on the fault
    actually occurring, re-executing must beat dropping in expected
    utility (paper §5.2: re-executions are "evaluated with the dropping
    heuristic").
    """
    app = state.app
    config = state.config
    if not config.soft_reexecution or state.fault_budget == 0:
        return 0
    granted = 0
    for r in range(1, state.fault_budget + 1):
        if config.fast_paths:
            feasible = state.oracle.check(name, reexecutions=r)
        else:  # pragma: no branch - exercised via fast_paths=False tests
            test = candidate_schedule(
                app,
                state.entries,
                name,
                state.fault_budget,
                start_time=state.start_time,
                prior_completed=state.prior_completed,
                prior_dropped=state.all_dropped,
                candidate_reexecutions=r,
                slack_sharing=config.slack_sharing,
            )
            feasible = test.is_schedulable()
        if not feasible:
            break
        if _reexecution_squeezes_soft(state, name, r):
            break
        if not _reexecution_beneficial(state, name, r):
            break
        granted = r
    return granted


def _reexecution_squeezes_soft(state: _FTSSState, name: str, r: int) -> bool:
    """Would granting the r-th re-execution push other soft processes
    out of schedulability?

    The reserved recovery slack of a soft re-execution enlarges the
    worst-case completion bound of everything scheduled later; a soft
    process that fit before may no longer pass its S_iH probe.  Losing
    a whole (average-case) soft process to protect one (fault-case)
    re-execution is a bad trade — the Fig. 8 application exhibits
    exactly this, where re-executing P2 would force dropping P3 and
    P4.  The probe compares the schedulable subset of the remaining
    soft pool with and without the grant.
    """
    remaining_soft = [n for n in state.unscheduled_soft() if n != name]
    if not remaining_soft:
        return False
    without = state.oracle.extended(name, 0)
    with_grant = state.oracle.extended(name, r)
    for other in remaining_soft:
        if without.check(other) and not with_grant.check(other):
            return True
    return False


def _reexecution_beneficial(state: _FTSSState, name: str, r: int) -> bool:
    """Conditional utility test for the r-th re-execution of ``name``.

    Scenario: the first r attempts of ``name`` fail.  Re-executing
    completes the process at
    ``clock + (r+1)·t + r·µ`` (t = decision-time estimate) and delays
    every later soft process by the recovery cost; dropping loses the
    process's utility (and degrades its consumers) but frees the time.
    """
    app = state.app
    proc = app.process(name)
    t = state.config.decision_time(app, name)
    mu = app.recovery_overhead(name)
    rest = [n for n in state.unscheduled_soft() if n != name]

    completion = state.clock + (r + 1) * t + r * mu
    keep_dropped = set(state.all_dropped)
    keep_order = greedy_soft_order(app, rest, completion, keep_dropped)
    keep_utility = hypothetical_utility(
        app, [name] + keep_order, state.clock + r * (t + mu), keep_dropped
    )

    giveup_time = state.clock + r * t + (r - 1) * mu if r > 0 else state.clock
    drop_dropped = set(state.all_dropped) | {name}
    drop_order = greedy_soft_order(app, rest, giveup_time, drop_dropped)
    drop_utility = hypothetical_utility(
        app, drop_order, giveup_time, drop_dropped
    )
    return keep_utility > drop_utility
