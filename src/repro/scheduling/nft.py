"""Value-maximizing *non*-fault-tolerant list scheduler.

This is the first stage of the FTSF baseline (paper §6): a static
non-fault-tolerant schedule that produces maximal value, standing in
for the scheduler of Cortes et al. [3].  It is the FTSS skeleton with
the fault machinery removed: fault budget 0 means no recovery slack is
reserved, schedulability is checked against plain WCETs, and no soft
re-executions are allotted.  Soft processes are still picked by the MU
priority and dropped when beneficial or forced, so the schedule
maximizes average-case utility exactly like FTSS does — just without
tolerance to any fault.
"""

from __future__ import annotations

from typing import Optional

from repro.model.application import Application
from repro.scheduling.fschedule import FSchedule


def nft_schedule(
    app: Application,
    drop_heuristic: bool = True,
) -> Optional[FSchedule]:
    """List schedule maximizing value, ignoring faults entirely.

    Returns an :class:`FSchedule` with ``fault_budget = 0`` (so its
    worst-case analysis reserves no recovery time), or ``None`` when
    even the fault-free application cannot meet its hard deadlines.
    """
    from repro.scheduling.ftss import FTSSConfig, ftss

    config = FTSSConfig(
        drop_heuristic=drop_heuristic,
        soft_reexecution=False,
    )
    return ftss(app, fault_budget=0, config=config)
