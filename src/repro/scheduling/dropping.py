"""The dropping heuristic of FTSS (paper §5.2, lines 3 and 5-9).

Deciding exactly whether a soft process should be dropped would require
exploring all dropping combinations of the remaining processes; the
paper replaces this with a local comparison: for each candidate soft
process P_i, build two hypothetical schedules of the *unscheduled soft
processes only* — S_i' containing P_i and S_i'' without it (its
consumers then read a stale value) — and drop P_i when
U(S_i') ≤ U(S_i'').

The hypothetical schedules order processes greedily by the MU priority
(recomputed after each pick, since completing one soft process shifts
the completion times of the rest) and are evaluated with average-case
execution times starting from the current schedule time, matching the
worked example of Fig. 8 (S_2' earning 80 vs S_2'' earning 50, so P_2
is kept).

``ForcedDropping`` (lines 5-9) reuses the same machinery: when no ready
process leads to a schedulable solution, the soft ready process whose
removal costs the least utility is dropped.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.application import Application
from repro.scheduling.priority import soft_priorities
from repro.utility.stale import stale_coefficients


def greedy_soft_order(
    app: Application,
    candidates: Iterable[str],
    now: int,
    dropped: Iterable[str],
) -> List[str]:
    """Order ``candidates`` greedily by MU priority, honouring precedence.

    Only precedence *among the candidates* matters: every other
    predecessor is either already scheduled or dropped (stale input),
    so it does not block activation.
    """
    graph = app.graph
    remaining: Set[str] = set(candidates)
    dropped_set = set(dropped)
    alphas = stale_coefficients(graph, dropped_set)
    order: List[str] = []
    clock = now
    while remaining:
        ready = [
            n
            for n in remaining
            if not any(p in remaining for p in graph.predecessors(n))
        ]
        if not ready:
            # Candidates form a cycle-free graph, so this cannot happen
            # unless a candidate's predecessor set was mis-specified.
            ready = sorted(remaining)
        priorities = soft_priorities(
            app, ready, clock, dropped_set, alphas=alphas
        )
        pick = max(sorted(ready), key=lambda n: priorities.get(n, 0.0))
        order.append(pick)
        remaining.remove(pick)
        clock += graph[pick].aet
    return order


def hypothetical_utility(
    app: Application,
    soft_order: Sequence[str],
    now: int,
    dropped: Iterable[str],
) -> float:
    """Utility of executing ``soft_order`` back-to-back from ``now``.

    All unscheduled soft processes not in ``soft_order`` are treated as
    dropped; completions beyond the period earn nothing.
    """
    graph = app.graph
    executed = set(soft_order)
    dropped_all = set(dropped)
    for proc in graph.soft_processes():
        if proc.name not in executed and proc.name not in dropped_all:
            dropped_all.add(proc.name)
    alphas = stale_coefficients(graph, dropped_all)
    clock = now
    total = 0.0
    for name in soft_order:
        clock += graph[name].aet
        if clock > app.period:
            continue
        total += alphas[name] * graph[name].utility_at(clock)
    return total


def dropping_gain(
    app: Application,
    candidate: str,
    unscheduled_soft: Iterable[str],
    now: int,
    dropped: Iterable[str],
) -> Tuple[float, float]:
    """Utilities (U(S'), U(S'')) of keeping vs dropping ``candidate``.

    ``unscheduled_soft`` are all not-yet-scheduled, not-yet-dropped soft
    processes (including ``candidate``).  ``S'`` schedules all of them,
    ``S''`` schedules all but ``candidate`` with ``candidate`` dropped.
    """
    pool = [n for n in unscheduled_soft]
    if candidate not in pool:
        raise ValueError(f"{candidate!r} not among the unscheduled soft set")
    keep_order = greedy_soft_order(app, pool, now, dropped)
    keep_utility = hypothetical_utility(app, keep_order, now, dropped)
    rest = [n for n in pool if n != candidate]
    drop_set = set(dropped) | {candidate}
    drop_order = greedy_soft_order(app, rest, now, drop_set)
    drop_utility = hypothetical_utility(app, drop_order, now, drop_set)
    return keep_utility, drop_utility


def determine_dropping(
    app: Application,
    ready: Sequence[str],
    unscheduled_soft: Sequence[str],
    now: int,
    dropped: Iterable[str],
) -> List[str]:
    """FTSS line 3: soft ready processes whose dropping is beneficial.

    Returns the subset of ``ready`` to drop (possibly empty).  The
    comparison for each candidate uses the current dropped set only —
    candidates are evaluated independently, as in the paper, which
    avoids the combinatorial explosion of joint dropping decisions.
    """
    to_drop: List[str] = []
    for name in ready:
        if not app.process(name).is_soft:
            continue
        keep_u, drop_u = dropping_gain(
            app, name, unscheduled_soft, now, dropped
        )
        if keep_u <= drop_u:
            to_drop.append(name)
    return to_drop


def determine_dropping_fast(
    app: Application,
    ready: Sequence[str],
    unscheduled_soft: Sequence[str],
    now: int,
    dropped: Iterable[str],
) -> List[str]:
    """O(s²) variant of :func:`determine_dropping`.

    Builds the greedy keep-order of the full unscheduled soft pool
    *once*, then scores each candidate by removing it from that order
    (instead of re-running the greedy construction per candidate).
    The orders only differ when removing the candidate would reshuffle
    the greedy choices — a second-order effect; the ablation tests
    compare both variants.
    """
    keep_order = greedy_soft_order(app, unscheduled_soft, now, dropped)
    keep_utility = hypothetical_utility(app, keep_order, now, dropped)
    to_drop: List[str] = []
    for name in ready:
        if not app.process(name).is_soft:
            continue
        rest = [n for n in keep_order if n != name]
        drop_set = set(dropped) | {name}
        drop_utility = hypothetical_utility(app, rest, now, drop_set)
        if keep_utility <= drop_utility:
            to_drop.append(name)
    return to_drop


def forced_dropping_choice_fast(
    app: Application,
    ready_soft: Sequence[str],
    unscheduled_soft: Sequence[str],
    now: int,
    dropped: Iterable[str],
) -> Optional[str]:
    """Removal-scored variant of :func:`forced_dropping_choice`."""
    if not ready_soft:
        return None
    keep_order = greedy_soft_order(app, unscheduled_soft, now, dropped)
    keep_utility = hypothetical_utility(app, keep_order, now, dropped)
    losses: Dict[str, float] = {}
    for name in ready_soft:
        rest = [n for n in keep_order if n != name]
        drop_set = set(dropped) | {name}
        drop_utility = hypothetical_utility(app, rest, now, drop_set)
        losses[name] = keep_utility - drop_utility
    return min(sorted(losses), key=lambda n: losses[n])


def forced_dropping_choice(
    app: Application,
    ready_soft: Sequence[str],
    unscheduled_soft: Sequence[str],
    now: int,
    dropped: Iterable[str],
) -> Optional[str]:
    """FTSS lines 5-9: pick the soft ready process whose dropping hurts
    the overall utility least.

    Returns ``None`` when there is no soft process to sacrifice.
    """
    if not ready_soft:
        return None
    losses: Dict[str, float] = {}
    for name in ready_soft:
        keep_u, drop_u = dropping_gain(
            app, name, unscheduled_soft, now, dropped
        )
        losses[name] = keep_u - drop_u
    return min(sorted(losses), key=lambda n: losses[n])
