"""Slack analysis: where the time margins of an f-schedule live.

The recovery-slack mechanism (paper §3) is implicit in the worst-case
analysis of :class:`~repro.scheduling.FSchedule`; this module makes it
inspectable.  For each position of a schedule it reports:

* the worst-case completion and the governing constraint (own
  deadline, a later hard process's deadline, or the period),
* the *deadline slack* — how much later this process could complete in
  the worst case before some constraint breaks, and
* the *recovery demand* — the shared-slack time reserved up to this
  position for the fault budget.

Engineers use exactly these numbers to judge how brittle a schedule
is and which process to optimize; the tests use them to cross-check
the analysis against first principles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.scheduling.fschedule import (
    FSchedule,
    shared_recovery_demand,
)


@dataclass(frozen=True)
class SlackEntry:
    """Timing margins of one schedule position."""

    name: str
    worst_case_completion: int
    recovery_demand: int
    deadline: Optional[int]
    deadline_slack: Optional[int]  # None for soft processes
    period_slack: int

    @property
    def binding(self) -> str:
        """Which constraint is tightest for this position."""
        if (
            self.deadline_slack is not None
            and self.deadline_slack <= self.period_slack
        ):
            return "deadline"
        return "period"


def slack_profile(schedule: FSchedule) -> List[SlackEntry]:
    """Per-position slack analysis of ``schedule``."""
    app = schedule.app
    completions = schedule.worst_case_completions()
    makespan = schedule.worst_case_makespan()
    profile: List[SlackEntry] = []
    needs: List[Tuple[int, int]] = []
    for entry in schedule.entries:
        proc = app.process(entry.name)
        if entry.reexecutions > 0:
            needs.append((app.recovery_need(entry.name), entry.reexecutions))
        demand = (
            shared_recovery_demand(needs, schedule.fault_budget)
            if schedule.slack_sharing
            else sum(
                cost * min(cap, schedule.fault_budget)
                for cost, cap in needs
            )
        )
        completion = completions[entry.name]
        deadline_slack = None
        if proc.is_hard:
            deadline_slack = proc.deadline - completion
        profile.append(
            SlackEntry(
                name=entry.name,
                worst_case_completion=completion,
                recovery_demand=demand,
                deadline=proc.deadline,
                deadline_slack=deadline_slack,
                period_slack=app.period - makespan,
            )
        )
    return profile


def minimum_slack(schedule: FSchedule) -> int:
    """The schedule's tightest margin (negative = infeasible).

    The minimum over all hard deadline slacks and the period slack;
    ``is_schedulable()`` is equivalent to ``minimum_slack() >= 0`` and
    the property tests assert exactly that.
    """
    app = schedule.app
    margins = [app.period - schedule.worst_case_makespan()]
    completions = schedule.worst_case_completions()
    for entry in schedule.entries:
        proc = app.process(entry.name)
        if proc.is_hard:
            margins.append(proc.deadline - completions[entry.name])
    # Missing hard processes make the schedule infeasible outright.
    scheduled = {e.name for e in schedule.entries}
    for proc in app.hard:
        if (
            proc.name not in scheduled
            and proc.name not in schedule.prior_completed
        ):
            return -app.period
    return min(margins)


def format_slack_profile(schedule: FSchedule) -> str:
    """Plain-text rendering of :func:`slack_profile`."""
    rows = slack_profile(schedule)
    header = (
        f"{'process':<14} {'wc completion':>13} {'demand':>7} "
        f"{'deadline':>9} {'slack':>7} {'binding':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        deadline = row.deadline if row.deadline is not None else "-"
        slack = (
            row.deadline_slack
            if row.deadline_slack is not None
            else row.period_slack
        )
        lines.append(
            f"{row.name:<14} {row.worst_case_completion:>13} "
            f"{row.recovery_demand:>7} {str(deadline):>9} {slack:>7} "
            f"{row.binding:>8}"
        )
    return "\n".join(lines)
