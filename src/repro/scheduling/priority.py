"""Soft-process priority (the MU function, paper §5.2 line 11).

The paper ranks ready soft processes with the MU priority function of
Cortes et al. [3], which is not reproduced in the paper itself.  We
implement MU as *expected utility density with successor lookahead*
(DESIGN.md note 2):

    MU(P_i) = (α_i · U_i(now + AET_i)
               + w · Σ_{soft succ j} α_j · U_j(now + AET_i + AET_j))
              / AET_i

The first term is what scheduling P_i next is expected to earn; the
second discounts the utility its soft successors could earn right
after it (weight ``w``, default 0.5); dividing by AET_i prefers
processes that earn utility quickly.  α values use the current dropped
set, so a process whose inputs went stale is ranked accordingly.

Any monotone single-process estimator fits the FTSS framework; this
one reproduces the qualitative behaviour the paper relies on (serve
high, fast-decaying utility first — e.g. preferring P3 over P2 in
Fig. 4's schedule S2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.model.application import Application
from repro.utility.stale import stale_coefficients

#: Default weight of the successor lookahead term.
SUCCESSOR_WEIGHT = 0.5


def soft_priorities(
    app: Application,
    ready_soft: Iterable[str],
    now: int,
    dropped: Iterable[str] = (),
    successor_weight: float = SUCCESSOR_WEIGHT,
    alphas: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """MU priorities for the given ready soft processes at time ``now``.

    Parameters
    ----------
    app:
        The application.
    ready_soft:
        Names of ready soft processes to rank.
    now:
        Current schedule time (end of the scheduled prefix, in the
        average case).
    dropped:
        Soft processes already dropped (affects stale coefficients).
    successor_weight:
        Weight ``w`` of the lookahead term; 0 disables lookahead.
    alphas:
        Precomputed stale coefficients for ``dropped`` (performance
        hook for callers that rank repeatedly under one dropped set).
    """
    graph = app.graph
    if alphas is None:
        alphas = stale_coefficients(graph, dropped)
    priorities: Dict[str, float] = {}
    for name in ready_soft:
        proc = graph[name]
        if not proc.is_soft:
            raise ValueError(f"{name!r} is not a soft process")
        completion = now + proc.aet
        own = alphas[name] * proc.utility_at(min(completion, app.period))
        if completion > app.period:
            own = 0.0
        lookahead = 0.0
        for succ in graph.successors(name):
            succ_proc = graph[succ]
            if not succ_proc.is_soft or succ in dropped:
                continue
            succ_completion = completion + succ_proc.aet
            if succ_completion > app.period:
                continue
            lookahead += alphas[succ] * succ_proc.utility_at(succ_completion)
        priorities[name] = (own + successor_weight * lookahead) / max(
            proc.aet, 1
        )
    return priorities


def best_soft(
    priorities: Mapping[str, float],
) -> Optional[str]:
    """Highest-priority soft process; deterministic tie-break by name."""
    if not priorities:
        return None
    return max(sorted(priorities), key=lambda n: priorities[n])


def earliest_deadline_hard(
    app: Application, ready_hard: Iterable[str]
) -> Optional[str]:
    """EDF choice among ready hard processes (paper: GetBestProcess
    falls back to the hard process with the earliest deadline)."""
    candidates = sorted(ready_hard)
    if not candidates:
        return None
    return min(candidates, key=lambda n: (app.process(n).deadline, n))
