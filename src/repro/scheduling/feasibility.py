"""Incremental feasibility oracle — the fast path of FTSS.

``GetSchedulable`` (paper §5.2, line 4) probes, for every ready
process, whether "prefix + candidate + all remaining hard processes"
meets the hard deadlines in the worst fault scenario.  Building a full
:class:`~repro.scheduling.fschedule.FSchedule` for every probe is
O(n²) per FTSS iteration; this oracle maintains the prefix state
incrementally and answers each probe in O(#remaining hard) with tiny
constants, which matters because FTQS runs FTSS once per tree node.

The oracle is an exact re-implementation of the slow path — the test
suite cross-checks the two on randomized inputs (see
``tests/test_feasibility.py``).

Key facts exploited:

* worst-case completions are ``start + Σ WCET + demand`` where the
  shared-slack ``demand`` only ever involves the (at most k, since
  every cap is >= 1) most expensive recoverable processes so far —
  so the prefix's recovery state compresses to a tiny top-list;
* the deadline-ordered (EDF), precedence-respecting order of the hard
  processes never has to be recomputed: any subsequence of a valid
  order is valid for the remaining set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.application import Application
from repro.scheduling.schedulability import edf_hard_order


class TopNeeds:
    """The compressed recovery-demand state of a schedule prefix.

    Stores the highest recovery costs (with re-execution caps) seen so
    far, truncated once the cumulative caps reach the fault budget —
    cheaper entries can never participate in the worst case.
    """

    __slots__ = ("budget", "_items")

    def __init__(self, budget: int, items: Optional[List[Tuple[int, int]]] = None):
        self.budget = budget
        self._items: List[Tuple[int, int]] = items if items is not None else []

    def copy(self) -> "TopNeeds":
        return TopNeeds(self.budget, list(self._items))

    def add(self, cost: int, cap: int) -> None:
        """Insert a recoverable process (cost = WCET + µ, cap >= 1)."""
        if cap <= 0 or self.budget == 0:
            return
        items = self._items
        index = 0
        while index < len(items) and items[index][0] >= cost:
            index += 1
        items.insert(index, (cost, min(cap, self.budget)))
        # Truncate entries beyond the budget's reach.
        total = 0
        for keep, (_, item_cap) in enumerate(items):
            total += item_cap
            if total >= self.budget:
                del items[keep + 1 :]
                break

    def demand(self, extra: Optional[Tuple[int, int]] = None) -> int:
        """Worst-case recovery demand, optionally with one more entry.

        Equivalent to
        :func:`repro.scheduling.fschedule.shared_recovery_demand` over
        the stored items (plus ``extra``).
        """
        remaining = self.budget
        total = 0
        extra_cost, extra_cap = extra if extra is not None else (-1, 0)
        extra_cap = min(extra_cap, self.budget)
        for cost, cap in self._items:
            if remaining <= 0:
                return total
            if extra_cap > 0 and extra_cost >= cost:
                take = min(extra_cap, remaining)
                total += take * extra_cost
                remaining -= take
                extra_cap = 0
                if remaining <= 0:
                    return total
            take = min(cap, remaining)
            total += take * cost
            remaining -= take
        if extra_cap > 0 and remaining > 0:
            take = min(extra_cap, remaining)
            total += take * extra_cost
        return total


class FeasibilityOracle:
    """Incremental S_iH feasibility probes for one FTSS run.

    The caller notifies the oracle of every scheduled process
    (:meth:`on_schedule`); :meth:`check` then answers whether a
    candidate (with a given re-execution allotment) keeps the schedule
    feasible.  ``slack_sharing=False`` switches the demand model to
    private per-process slacks (the ablation configuration).
    """

    def __init__(
        self,
        app: Application,
        fault_budget: int,
        start_time: int = 0,
        prior_completed: Sequence[str] = (),
        slack_sharing: bool = True,
    ):
        self.app = app
        self.budget = fault_budget
        self.slack_sharing = slack_sharing
        self._prefix_wcet = 0
        self._start = start_time
        self._top = TopNeeds(fault_budget)
        self._private_demand = 0
        self._prefix_infeasible = False
        done = set(prior_completed)
        hard_remaining = [p.name for p in app.hard if p.name not in done]
        self._hard_order: List[str] = edf_hard_order(app, hard_remaining, done)
        self._hard_scheduled: set = set()
        self._wcet: Dict[str, int] = {p.name: p.wcet for p in app.processes}
        self._deadline: Dict[str, Optional[int]] = {
            p.name: p.deadline for p in app.processes
        }
        self._need: Dict[str, int] = {
            p.name: app.recovery_need(p.name) for p in app.processes
        }

    # ------------------------------------------------------------------
    # State updates
    # ------------------------------------------------------------------
    def on_schedule(self, name: str, reexecutions: int) -> None:
        """Record that ``name`` was appended to the prefix.

        Also tracks whether the prefix itself already violates a hard
        deadline — FTSS never builds such a prefix (every appended
        process passed a probe), but external callers may, and every
        subsequent probe must then answer "infeasible".
        """
        self._prefix_wcet += self._wcet[name]
        if reexecutions > 0:
            if self.slack_sharing:
                self._top.add(self._need[name], reexecutions)
            else:
                self._private_demand += self._need[name] * min(
                    reexecutions, self.budget
                )
        if self.app.process(name).is_hard:
            self._hard_scheduled.add(name)
            demand = (
                self._top.demand()
                if self.slack_sharing
                else self._private_demand
            )
            completion = self._start + self._prefix_wcet + demand
            if completion > self._deadline[name]:
                self._prefix_infeasible = True

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def check(self, candidate: str, reexecutions: Optional[int] = None) -> bool:
        """True when prefix + candidate + remaining hard is feasible.

        ``reexecutions`` defaults to the fault budget for hard
        candidates and 0 for soft ones (FTSS's slack-assignment step
        passes explicit values when probing soft re-executions).
        """
        app = self.app
        if self._prefix_infeasible:
            return False
        proc = app.process(candidate)
        if reexecutions is None:
            reexecutions = self.budget if proc.is_hard else 0

        clock = self._start + self._prefix_wcet + self._wcet[candidate]
        if self.slack_sharing:
            extra = (
                (self._need[candidate], reexecutions)
                if reexecutions > 0
                else None
            )
            demand = self._top.demand(extra)
        else:
            demand = self._private_demand + self._need[candidate] * min(
                reexecutions, self.budget
            )
        if proc.is_hard and clock + demand > self._deadline[candidate]:
            return False

        if self.slack_sharing:
            top = self._top.copy()
            if reexecutions > 0:
                top.add(self._need[candidate], reexecutions)
        for name in self._hard_order:
            if name == candidate or name in self._hard_scheduled:
                continue
            clock += self._wcet[name]
            if self.slack_sharing:
                top.add(self._need[name], self.budget)
                demand = top.demand()
            else:
                demand += self._need[name] * self.budget
            if clock + demand > self._deadline[name]:
                return False
        return clock + demand <= app.period

    def schedulable_subset(self, candidates: Sequence[str]) -> List[str]:
        """``GetSchedulable`` over a ready list."""
        return [name for name in candidates if self.check(name)]

    def extended(self, name: str, reexecutions: int) -> "FeasibilityOracle":
        """A copy of the oracle with ``name`` appended to the prefix.

        Used to probe second-order effects of a decision — e.g. whether
        granting a soft re-execution (which reserves shared slack)
        would push *other* soft processes out of schedulability.
        """
        clone = FeasibilityOracle.__new__(FeasibilityOracle)
        clone.app = self.app
        clone.budget = self.budget
        clone.slack_sharing = self.slack_sharing
        clone._prefix_wcet = self._prefix_wcet
        clone._start = self._start
        clone._top = self._top.copy()
        clone._private_demand = self._private_demand
        clone._prefix_infeasible = self._prefix_infeasible
        clone._hard_order = self._hard_order
        clone._hard_scheduled = set(self._hard_scheduled)
        clone._wcet = self._wcet
        clone._deadline = self._deadline
        clone._need = self._need
        clone.on_schedule(name, reexecutions)
        return clone
