"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses mirror the main
failure modes of the scheduling pipeline:

* model construction problems (:class:`ModelError` and friends),
* schedulability failures (:class:`UnschedulableError`), and
* misuse of the runtime machinery (:class:`RuntimeModelError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """An application model is malformed or inconsistent."""


class GraphError(ModelError):
    """A process graph violates a structural requirement (e.g. a cycle)."""


class TimingError(ModelError):
    """Execution times or deadlines are inconsistent (e.g. BCET > WCET)."""


class UtilityError(ModelError):
    """A utility function violates its contract (e.g. it increases)."""


class UnschedulableError(ReproError):
    """No schedule exists that guarantees the hard deadlines.

    Raised by the schedule synthesis entry points when even the
    fault-tolerant root schedule cannot satisfy every hard deadline in
    the worst-case fault scenario.  Mirrors the ``return unschedulable``
    outcome of the paper's ``SchedulingStrategy`` (Fig. 6).
    """


class SchedulingError(ReproError):
    """An internal scheduling invariant was violated."""


class RuntimeModelError(ReproError):
    """The runtime simulator was driven with inconsistent inputs."""


class SerializationError(ReproError):
    """A persisted artifact could not be encoded or decoded."""
