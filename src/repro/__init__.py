"""repro - fault-tolerant quasi-static scheduling for mixed hard/soft
real-time embedded systems.

A from-scratch reproduction of Izosimov, Pop, Eles & Peng,
"Scheduling of Fault-Tolerant Embedded Systems with Soft and Hard
Timing Constraints", DATE 2008 (DOI 10.1109/DATE.2008.4484791).

Quick start::

    from repro import (
        Application, ProcessGraph, hard_process, soft_process,
        StepUtility, schedule_application,
    )

    p1 = hard_process("P1", bcet=30, wcet=70, deadline=180)
    p2 = soft_process("P2", 30, 70, StepUtility(40, [(100, 20), (160, 0)]))
    p3 = soft_process("P3", 40, 80, StepUtility(40, [(110, 30), (160, 10)]))
    graph = ProcessGraph([p1, p2, p3], [("P1", "P2"), ("P1", "P3")])
    app = Application(graph, period=300, k=1, mu=10)
    tree = schedule_application(app, max_schedules=8)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.errors import (
    GraphError,
    ModelError,
    ReproError,
    SchedulingError,
    TimingError,
    UnschedulableError,
    UtilityError,
)
from repro.faults import (
    ExecutionScenario,
    FaultScenario,
    ScenarioSampler,
    average_case_scenario,
    best_case_scenario,
    worst_case_scenario,
)
from repro.model import (
    Application,
    Process,
    ProcessGraph,
    ProcessKind,
    application_from_graphs,
    hard_process,
    soft_process,
)
from repro.pipeline import ResourceManager, TreeStore
from repro.quasistatic import (
    QSTree,
    SchedulingStrategyResult,
    ftqs,
    schedule_application,
)
from repro.runtime import OnlineScheduler, simulate
from repro.scheduling import (
    FSchedule,
    FTSSConfig,
    ScheduledEntry,
    ftsf,
    ftss,
    nft_schedule,
)
from repro.utility import (
    ConstantUtility,
    LinearUtility,
    StepUtility,
    TabulatedUtility,
    UtilityFunction,
    stale_coefficients,
)

__version__ = "1.0.0"

__all__ = [
    "Application",
    "ConstantUtility",
    "ExecutionScenario",
    "FSchedule",
    "FTSSConfig",
    "FaultScenario",
    "GraphError",
    "LinearUtility",
    "ModelError",
    "OnlineScheduler",
    "Process",
    "ProcessGraph",
    "ProcessKind",
    "QSTree",
    "ReproError",
    "ResourceManager",
    "ScenarioSampler",
    "ScheduledEntry",
    "SchedulingError",
    "SchedulingStrategyResult",
    "StepUtility",
    "TabulatedUtility",
    "TimingError",
    "TreeStore",
    "UnschedulableError",
    "UtilityError",
    "UtilityFunction",
    "application_from_graphs",
    "average_case_scenario",
    "best_case_scenario",
    "ftqs",
    "ftsf",
    "ftss",
    "hard_process",
    "nft_schedule",
    "schedule_application",
    "simulate",
    "soft_process",
    "stale_coefficients",
    "worst_case_scenario",
]
