"""The shared experiment loop: generate → synthesize → evaluate → rows.

Every paper experiment (Table 1, Fig. 9, the cruise controller, the
sweeps, the ablations) is the same pipeline instantiated with a
different spec: draw applications from a workload grid, build the
FTSS root and the FTQS tree(s), replay paired Monte-Carlo scenario
sets, and reduce the outcomes to rows.  Before this module the five
drivers each hand-rolled that loop with ad-hoc evaluator scoping and
no reuse of synthesized trees; :class:`ExperimentRunner` factors the
loop's *services* out so a driver is reduced to its spec:

* a config dataclass (the workload grid + evaluation scale),
* a ``_run`` body expressing the experiment's structure through the
  base-class services below,
* a row type + formatter.

The services guarantee the resource behaviour the drivers used to
implement by hand, and add what they could not:

* :meth:`candidates` — the generate-workloads loop (shared RNG
  discipline, FTSS admission, attempt caps);
* :meth:`synthesize` — FTQS construction through the optional
  content-addressed :class:`~repro.pipeline.store.TreeStore`
  (identical inputs skip the build) and the shared synthesis pool of
  the run's :class:`~repro.pipeline.resources.ResourceManager`;
* :meth:`evaluator` — paired Monte-Carlo evaluators wired to the
  manager's shared evaluation pool, scoped with ``with`` so scenario
  segments are released per application while worker processes
  persist for the whole run.

Driver outputs are **byte-identical** to the pre-pipeline drivers
(``tests/test_pipeline_differential.py`` pins every row against
golden captures): the RNG draw order, evaluator seeds and float
accumulation orders are preserved exactly.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.execution import ExecutionConfig, resolve_execution
from repro.pipeline.resources import ResourceManager
from repro.pipeline.store import TreeStore
from repro.quasistatic.ftqs import FTQSConfig, ftqs
from repro.scheduling.ftss import ftss
from repro.workloads.suite import WorkloadSpec, generate_application


def synthesize_tree(
    app,
    root,
    config: FTQSConfig,
    *,
    synthesis: str = "fast",
    synthesis_jobs: int = 1,
    stats=None,
    resources: Optional[ResourceManager] = None,
    store: Optional[TreeStore] = None,
):
    """Store- and pool-aware FTQS construction (the pipeline's core).

    A store hit returns the cached tree without building (counted on
    ``stats.store_hits``; ``trees_built`` stays untouched, which is
    how a fully-cached run reports zero builds).  A miss builds
    through the shared synthesis pool when ``resources`` is set and
    ``synthesis_jobs > 1``, then persists the result.
    """
    if store is not None:
        cached = store.get(app, root, config)
        if cached is not None:
            if stats is not None:
                stats.store_hits += 1
            return cached
        if stats is not None:
            stats.store_misses += 1
    pool = None
    if resources is not None and synthesis == "fast" and synthesis_jobs > 1:
        pool = resources.synthesis_pool(synthesis_jobs)
    tree = ftqs(
        app,
        root,
        config,
        synthesis=synthesis,
        jobs=synthesis_jobs,
        stats=stats,
        pool=pool,
    )
    if store is not None:
        store.put(app, root, config, tree)
    return tree


class ExperimentRunner:
    """Base class of the five experiment drivers.

    Parameters
    ----------
    execution:
        Monte-Carlo routing — an
        :class:`~repro.execution.ExecutionConfig` or spec string like
        ``"kernel@threads:8"`` (per driver config before; now shared).
        ``engine=``/``jobs=`` remain as deprecated aliases.
    synthesis, synthesis_jobs, stats:
        FTQS engine routing, as accepted by :func:`ftqs`.
    resources:
        The run's :class:`ResourceManager`.  ``None`` (the default)
        creates an owned manager that is closed when :meth:`run`
        returns; passing one in shares its pools across several runner
        invocations (e.g. both sweeps of ``repro experiment sweeps``)
        and leaves its lifecycle to the caller.
    store:
        Optional :class:`TreeStore` (any backend — filesystem, memory
        LRU or Redis); identical synthesis inputs then reload instead
        of rebuilding.  When omitted, a store owned by the passed-in
        ``resources`` manager is picked up automatically.
    checkpoint:
        Optional
        :class:`~repro.pipeline.checkpoint.ExperimentCheckpoint`.
        Every evaluator the runner hands out then journals its
        completed ``compare``/``evaluate`` units durably, and a
        resumed run decodes journaled units instead of re-simulating
        (byte-identical rows; the journal's lifecycle belongs to the
        caller, so several runner invocations — e.g. both sweeps —
        can share one).
    """

    #: The drivers' historical default routing (the NumPy engine,
    #: inline).
    DEFAULT_EXECUTION = ExecutionConfig(engine="batched")

    def __init__(
        self,
        *,
        execution=None,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
        synthesis: str = "fast",
        synthesis_jobs: int = 1,
        stats=None,
        resources: Optional[ResourceManager] = None,
        store: Optional[TreeStore] = None,
        checkpoint=None,
    ):
        self.execution = resolve_execution(
            execution,
            engine,
            jobs,
            base=self.DEFAULT_EXECUTION,
            owner="ExperimentRunner",
        )
        # Read-only legacy mirrors of the resolved routing.
        self.engine = self.execution.engine
        self.jobs = self.execution.workers
        self.synthesis = synthesis
        self.synthesis_jobs = synthesis_jobs
        self.stats = stats
        if store is None and resources is not None:
            store = resources.store
        self.store = store
        self.checkpoint = checkpoint
        self._owns_resources = resources is None
        self.resources = (
            resources if resources is not None else ResourceManager()
        )

    # ------------------------------------------------------------------
    # Shared services
    # ------------------------------------------------------------------
    def candidates(
        self,
        spec: WorkloadSpec,
        rng: np.random.Generator,
        max_attempts: Optional[int] = None,
    ) -> Iterator[Tuple[object, object]]:
        """Generate ``(app, FTSS root)`` pairs from the workload grid.

        Draws applications from ``rng`` until the consumer stops
        iterating (or ``max_attempts`` total draws, counting the ones
        FTSS rejects — the cap the bounded drivers used).  Preserves
        the drivers' RNG discipline exactly: one
        :func:`generate_application` call per attempt, in order.
        """
        attempts = 0
        while max_attempts is None or attempts < max_attempts:
            attempts += 1
            app = generate_application(spec, rng=rng)
            root = ftss(app)
            if root is None:
                continue
            yield app, root

    def synthesize(self, app, root, config: FTQSConfig):
        """Build (or reload) the FTQS tree for one application."""
        return synthesize_tree(
            app,
            root,
            config,
            synthesis=self.synthesis,
            synthesis_jobs=self.synthesis_jobs,
            stats=self.stats,
            resources=self.resources,
            store=self.store,
        )

    def evaluator(self, app, **kwargs):
        """A paired Monte-Carlo evaluator on the shared worker pools.

        Scope it with ``with`` (or ``close()``): exit releases the
        application's scenario segments while the run-wide worker
        processes live on in the :class:`ResourceManager`.

        With a :attr:`checkpoint`, the evaluator is wrapped in a
        :class:`~repro.pipeline.checkpoint.JournalingEvaluator`:
        completed units are journaled durably, already-journaled ones
        are decoded instead of re-simulated, and the underlying
        evaluator (with its eager scenario sampling) is only built on
        the first journal miss.
        """
        kwargs.setdefault("execution", self.execution)
        if self.checkpoint is None:
            return self.resources.evaluator(app, **kwargs)
        from repro.pipeline.checkpoint import JournalingEvaluator

        return JournalingEvaluator(
            self.checkpoint,
            app,
            factory=lambda: self.resources.evaluator(app, **kwargs),
            n_scenarios=kwargs.get("n_scenarios", 200),
            fault_counts=kwargs.get("fault_counts"),
            seed=kwargs.get("seed", 1),
        )

    # ------------------------------------------------------------------
    # Template method
    # ------------------------------------------------------------------
    def _run(self):
        raise NotImplementedError

    def run(self):
        """Execute the experiment; rows as the driver defines them.

        Owned resources (the default) are closed on the way out, so a
        plain ``SomeRunner(...).run()`` leaks no worker pools.
        """
        try:
            return self._run()
        finally:
            if self._owns_resources:
                self.resources.close()
