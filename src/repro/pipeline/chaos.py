"""Deterministic fault injection for the fault-tolerance layer.

The paper's schedules are *designed* to survive k transient faults;
this module gives the harness its own transient faults so the tests
can prove the execution layer survives too.  A :class:`ChaosPlan` is a
seedable, fully deterministic schedule of injected failures across the
three recovery paths:

* **worker faults** — kill (``SIGKILL``) or wedge the pool worker that
  picks up task *i* of a :meth:`TaskPool.map
  <repro.runtime.engine.parallel.TaskPool.map>` call.  The action is
  decided *parent-side at dispatch time* from the task index and the
  retry attempt, so a run under chaos is reproducible for any worker
  count or scheduling order;
* **store faults** — raise :class:`ConnectionError` on chosen raw
  store operations, exercising the retry/backoff and circuit-breaker
  paths of :class:`~repro.pipeline.store.resilient.ResilientBackend`;
* **run kills** — raise :class:`ChaosKill` immediately after the Nth
  row reaches the checkpoint journal, modelling a sweep killed between
  rows (the journal write has already been fsynced, so ``--resume``
  picks up exactly there);
* **service faults** — wedge the Nth ``repro serve`` compute request
  inside its worker (``slow-request@N``), driving the service's
  deadline, backpressure and drain-timeout paths the same
  deterministic way.

The plan is installed process-globally (:func:`activate` /
:func:`active`); the hooks are consulted through :func:`current` by
the pool, the resilient store wrapper and the checkpoint journal.
Nothing here imports the rest of the pipeline — the module is
dependency-free so any layer can consult it without cycles.
"""

from __future__ import annotations

import random
import re
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Optional


class ChaosKill(BaseException):
    """The injected 'the process was killed here' signal.

    A :class:`BaseException` (like ``KeyboardInterrupt``) on purpose:
    it must unwind through the experiment loop's ordinary ``except
    Exception`` robustness handlers exactly the way a real ``SIGKILL``
    would simply not run them.
    """


@dataclass
class ChaosPlan:
    """One deterministic schedule of injected faults.

    Parameters
    ----------
    kill_worker:
        ``{task index: times}`` — the worker dispatched task *i* of a
        pool map is SIGKILLed on its first ``times`` delivery
        attempts.  ``times`` larger than the pool's retry budget
        forces the in-process degradation path.
    hang_worker:
        Task indices whose first delivery wedges the worker (it never
        answers); recovery needs a pool ``task_timeout``.
    store_fail_ops:
        1-based indices into the run's sequence of raw resilient-store
        operations (each retry attempt counts) that raise
        :class:`ConnectionError`.
    slow_request:
        ``{request index: seconds}`` — the Nth (1-based) service
        compute request sleeps that long inside its worker before the
        real work, modelling a request wedged past its deadline (and,
        with several of them, sustained load on the bounded queue).
    kill_run_after_rows:
        Raise :class:`ChaosKill` right after this many rows have been
        journaled to the checkpoint.
    kernel_fail:
        1-based indices into the process's sequence of kernel compile
        attempts (``repro.runtime.engine.kernel.build``) that fail
        deterministically — the simulator then degrades to the NumPy
        engine with a counted ``"chaos"`` reason, results unchanged.
    thread_fail:
        1-based indices into the process's sequence of threaded
        evaluations (``repro.runtime.engine.threads``) that fail
        deterministically — the evaluation then re-routes to process
        sharding with a counted ``"chaos"`` reason, results unchanged.
    kill_budget:
        Optional cap on the *total* number of worker kills/hangs
        delivered, across every map call of the run.
    seed:
        Seed of the ``store-fail@~K/N`` random draw in :meth:`parse`.
    """

    kill_worker: Dict[int, int] = field(default_factory=dict)
    hang_worker: FrozenSet[int] = frozenset()
    store_fail_ops: FrozenSet[int] = frozenset()
    slow_request: Dict[int, float] = field(default_factory=dict)
    kill_run_after_rows: Optional[int] = None
    kernel_fail: FrozenSet[int] = frozenset()
    thread_fail: FrozenSet[int] = frozenset()
    kill_budget: Optional[int] = None
    seed: int = 0

    # Runtime counters (reset on activation).
    kills_delivered: int = 0
    hangs_delivered: int = 0
    store_ops_seen: int = 0
    store_failures_injected: int = 0
    rows_journaled: int = 0
    service_requests_seen: int = 0
    slow_requests_injected: int = 0
    kernel_compiles_seen: int = 0
    kernel_failures_injected: int = 0
    thread_evals_seen: int = 0
    thread_failures_injected: int = 0

    def reset(self) -> None:
        self.kills_delivered = 0
        self.hangs_delivered = 0
        self.store_ops_seen = 0
        self.store_failures_injected = 0
        self.rows_journaled = 0
        self.service_requests_seen = 0
        self.slow_requests_injected = 0
        self.kernel_compiles_seen = 0
        self.kernel_failures_injected = 0
        self.thread_evals_seen = 0
        self.thread_failures_injected = 0

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _budget_left(self) -> bool:
        if self.kill_budget is None:
            return True
        return (
            self.kills_delivered + self.hangs_delivered < self.kill_budget
        )

    def pool_action(self, index: int, attempt: int) -> Optional[str]:
        """The fault to inject for delivery ``attempt`` of task
        ``index`` — ``"kill"``, ``"hang"`` or ``None``.  Consulted by
        the pool parent-side at dispatch, so the decision (and hence
        the whole recovery trace) is deterministic."""
        if not self._budget_left():
            return None
        if attempt < self.kill_worker.get(index, 0):
            self.kills_delivered += 1
            return "kill"
        if attempt == 0 and index in self.hang_worker:
            self.hangs_delivered += 1
            return "hang"
        return None

    def store_op(self) -> None:
        """Called before every raw resilient-store attempt; raises
        :class:`ConnectionError` on the scheduled ones."""
        self.store_ops_seen += 1
        if self.store_ops_seen in self.store_fail_ops:
            self.store_failures_injected += 1
            raise ConnectionError(
                f"chaos: injected transport failure on store op "
                f"{self.store_ops_seen}"
            )

    def service_request(self) -> float:
        """Called by the service at the start of each compute request;
        returns the injected delay in seconds (0.0 = undisturbed).
        The sleep happens *inside* the request's worker, so a slow
        request occupies real queue capacity exactly the way a wedged
        synthesis would."""
        self.service_requests_seen += 1
        delay = self.slow_request.get(self.service_requests_seen, 0.0)
        if delay > 0.0:
            self.slow_requests_injected += 1
        return delay

    def kernel_compile(self) -> None:
        """Called before every kernel compiler invocation; raises
        :class:`RuntimeError` on the scheduled attempts, which the
        build layer surfaces as a counted ``"chaos"`` degradation to
        the NumPy engine (results unchanged, speed lost)."""
        self.kernel_compiles_seen += 1
        if self.kernel_compiles_seen in self.kernel_fail:
            self.kernel_failures_injected += 1
            raise RuntimeError(
                f"chaos: injected kernel compile failure on attempt "
                f"{self.kernel_compiles_seen}"
            )

    def thread_eval(self) -> None:
        """Called at the start of every threaded evaluation; raises
        :class:`RuntimeError` on the scheduled ones, which the threaded
        executor surfaces as a counted ``"chaos"`` fallback to process
        sharding (results unchanged, threads lost for that call)."""
        self.thread_evals_seen += 1
        if self.thread_evals_seen in self.thread_fail:
            self.thread_failures_injected += 1
            raise RuntimeError(
                f"chaos: injected threaded-evaluation failure on "
                f"attempt {self.thread_evals_seen}"
            )

    def row_written(self) -> None:
        """Called after each journaled checkpoint row; raises
        :class:`ChaosKill` once the configured row count is reached.
        The row is already on disk, so a resumed run reuses it."""
        self.rows_journaled += 1
        if self.kill_run_after_rows is not None and (
            self.rows_journaled == self.kill_run_after_rows
        ):
            raise ChaosKill(
                f"run killed after {self.rows_journaled} journaled "
                f"row(s)"
            )

    # ------------------------------------------------------------------
    # CLI spec parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Build a plan from a comma-separated CLI token list.

        Tokens: ``kill-worker@I`` (once) / ``kill-worker@IxN`` (N
        times), ``hang-worker@I``, ``store-fail@N`` (the Nth raw store
        op) / ``store-fail@A-B`` (every op in the range) /
        ``store-fail@~K/N`` (K seeded-random ops among the first N),
        ``slow-request@N`` (wedge the Nth service compute request for
        30 s) / ``slow-request@NxS`` (for S seconds, float),
        ``kill-run@N`` (after the Nth journaled row),
        ``kernel-fail@N`` (the Nth kernel compile attempt) /
        ``kernel-fail@A-B`` (every attempt in the range),
        ``thread-fail@N`` (the Nth threaded evaluation) /
        ``thread-fail@A-B`` (every evaluation in the range),
        ``budget@N``, ``seed@S``.
        """
        kill_worker: Dict[int, int] = {}
        hang_worker = set()
        store_fail = set()
        slow_request: Dict[int, float] = {}
        kernel_fail = set()
        thread_fail = set()
        random_fail = None
        kill_run = None
        budget = None
        seed = 0
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            name, sep, value = token.partition("@")
            if not sep:
                raise ValueError(
                    f"bad chaos token {token!r} (expected name@value)"
                )
            try:
                if name == "kill-worker":
                    match = re.fullmatch(r"(\d+)(?:x(\d+))?", value)
                    if not match:
                        raise ValueError(value)
                    kill_worker[int(match.group(1))] = int(
                        match.group(2) or 1
                    )
                elif name == "hang-worker":
                    hang_worker.add(int(value))
                elif name == "store-fail":
                    if value.startswith("~"):
                        count, _, span = value[1:].partition("/")
                        random_fail = (int(count), int(span))
                    else:
                        match = re.fullmatch(r"(\d+)(?:-(\d+))?", value)
                        if not match:
                            raise ValueError(value)
                        lo = int(match.group(1))
                        hi = int(match.group(2) or lo)
                        if hi < lo:
                            raise ValueError(
                                f"empty range {lo}-{hi}"
                            )
                        store_fail.update(range(lo, hi + 1))
                elif name == "slow-request":
                    match = re.fullmatch(
                        r"(\d+)(?:x(\d+(?:\.\d+)?))?", value
                    )
                    if not match:
                        raise ValueError(value)
                    slow_request[int(match.group(1))] = float(
                        match.group(2) or 30.0
                    )
                elif name == "kill-run":
                    kill_run = int(value)
                elif name in ("kernel-fail", "thread-fail"):
                    match = re.fullmatch(r"(\d+)(?:-(\d+))?", value)
                    if not match:
                        raise ValueError(value)
                    lo = int(match.group(1))
                    hi = int(match.group(2) or lo)
                    if hi < lo:
                        raise ValueError(f"empty range {lo}-{hi}")
                    target = (
                        kernel_fail if name == "kernel-fail" else thread_fail
                    )
                    target.update(range(lo, hi + 1))
                elif name == "budget":
                    budget = int(value)
                elif name == "seed":
                    seed = int(value)
                else:
                    raise ValueError(
                        f"unknown chaos token {name!r} (know "
                        f"kill-worker, hang-worker, store-fail, "
                        f"slow-request, kill-run, kernel-fail, "
                        f"thread-fail, budget, seed)"
                    )
            except ValueError as exc:
                if "chaos token" in str(exc):
                    raise
                raise ValueError(
                    f"bad chaos token {token!r}: {exc}"
                ) from None
        if random_fail is not None:
            count, span = random_fail
            rng = random.Random(seed)
            store_fail.update(rng.sample(range(1, span + 1), k=count))
        return cls(
            kill_worker=kill_worker,
            hang_worker=frozenset(hang_worker),
            store_fail_ops=frozenset(store_fail),
            slow_request=slow_request,
            kill_run_after_rows=kill_run,
            kernel_fail=frozenset(kernel_fail),
            thread_fail=frozenset(thread_fail),
            kill_budget=budget,
            seed=seed,
        )


#: The process-wide active plan (None = no chaos).
_ACTIVE: Optional[ChaosPlan] = None


def activate(plan: ChaosPlan) -> ChaosPlan:
    """Install ``plan`` (counters reset) as the process-wide plan."""
    global _ACTIVE
    plan.reset()
    _ACTIVE = plan
    return plan


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


def current() -> Optional[ChaosPlan]:
    """The active plan, or ``None``; consulted by the fault hooks."""
    return _ACTIVE


@contextmanager
def active(plan: ChaosPlan) -> Iterator[ChaosPlan]:
    """``with active(plan):`` — scoped activation, always deactivated."""
    activate(plan)
    try:
        yield plan
    finally:
        deactivate()
