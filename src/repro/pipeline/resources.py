"""Experiment-scoped worker-pool ownership.

Before the pipeline existed, every experiment driver paid worker-pool
spawn costs per *application*: the fast synthesis engine forked a
fresh candidate pool for each tree build, and each
:class:`~repro.evaluation.montecarlo.MonteCarloEvaluator` forked its
own scenario-sharding pool.  A paper-scale sweep (hundreds of
applications) re-spawned workers hundreds of times for no reason —
the workers' code never changes, only the application context they
hold.

:class:`ResourceManager` closes that gap (the ROADMAP's pool-sharing
open item): it owns **one** generic synthesis
:class:`~repro.runtime.engine.parallel.TaskPool` and **one** generic
evaluation pool for the whole experiment run.  Generic pools are
spawned without an initializer; tasks carry their own context (the
application, config, and — for evaluation — the names of the published
shared-memory scenario segments), and workers re-initialize in place
when the context token changes.  Results are unchanged: the contextual
worker paths funnel into the exact same evaluation code as the
initializer-based ones.

Pools are keyed by worker count, created lazily, and live until
:meth:`ResourceManager.close` (or context-manager exit).  A manager
with ``jobs == 1`` everywhere never spawns anything.

The manager can also own the run's optional
:class:`~repro.pipeline.store.TreeStore`: backends with real
connections (Redis) are then released deterministically with the
pools, and :class:`~repro.pipeline.runner.ExperimentRunner` picks the
store up automatically when the caller does not pass one explicitly.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.errors import RuntimeModelError


class ResourceManager:
    """Owns the worker pools (and optional tree store) of one run.

    Use as a context manager::

        with ResourceManager(store=store) as resources:
            for app in applications:
                tree = ftqs(app, root, config, jobs=4,
                            pool=resources.synthesis_pool(4))
                with resources.evaluator(app, jobs=4) as evaluator:
                    evaluator.evaluate(tree)

    Exactly one synthesis pool and one evaluation pool (per worker
    count) are spawned for the whole block, no matter how many
    applications pass through; exit closes the pools and the store's
    backend.
    """

    def __init__(
        self,
        store: Optional["TreeStore"] = None,
        *,
        task_timeout: Optional[float] = None,
        task_retries: int = 2,
    ) -> None:
        self._synthesis_pools: Dict[int, "TaskPool"] = {}
        self._evaluation_pools: Dict[int, "TaskPool"] = {}
        # Acquisition and close are lock-guarded: the manager is shared
        # across `repro serve` handler threads, and a double-spawned
        # pool would leak worker processes.
        self._lock = threading.Lock()
        self.store = store
        #: Fault-tolerance knobs handed to every owned pool: per-task
        #: deadline (seconds; None = wait forever) and how many times a
        #: task may lose its worker before running in-process.
        self.task_timeout = task_timeout
        self.task_retries = task_retries

    # ------------------------------------------------------------------
    # Pool acquisition
    # ------------------------------------------------------------------
    def _generic_pool(self, cache: Dict[int, "TaskPool"], jobs: int):
        if jobs < 1:
            raise RuntimeModelError(f"jobs must be positive, got {jobs}")
        with self._lock:
            pool = cache.get(jobs)
            if pool is None:
                pool = self._spawn_pool(jobs)
                cache[jobs] = pool
            return pool

    def _spawn_pool(self, jobs: int):
        """Spawn one generic pool (separate for spawn-count tests)."""
        from repro.runtime.engine.parallel import TaskPool

        return TaskPool(
            jobs,
            task_timeout=self.task_timeout,
            task_retries=self.task_retries,
        )

    def synthesis_pool(self, jobs: int) -> Optional["TaskPool"]:
        """The shared FTQS candidate-evaluation pool (``None`` for
        ``jobs == 1`` — single-job synthesis never needs workers)."""
        if jobs == 1:
            return None
        return self._generic_pool(self._synthesis_pools, jobs)

    def evaluation_pool(self, jobs: int) -> "TaskPool":
        """The shared Monte-Carlo scenario-sharding pool."""
        return self._generic_pool(self._evaluation_pools, jobs)

    # ------------------------------------------------------------------
    # Evaluator construction
    # ------------------------------------------------------------------
    def evaluator(self, app, **kwargs) -> "MonteCarloEvaluator":
        """A :class:`MonteCarloEvaluator` wired to the shared pools.

        Accepts the evaluator's keyword arguments (``n_scenarios``,
        ``fault_counts``, ``seed``, ``execution``).  Closing the
        returned evaluator releases its scenario segments but leaves
        the shared pools running for the next application.
        """
        from repro.evaluation.montecarlo import MonteCarloEvaluator

        return MonteCarloEvaluator(app, resources=self, **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Terminate every owned pool and close the owned store's
        backend (idempotent; the manager may be used again afterwards
        — pools respawn lazily)."""
        with self._lock:
            pools = [
                pool
                for cache in (self._synthesis_pools, self._evaluation_pools)
                for pool in cache.values()
            ]
            self._synthesis_pools.clear()
            self._evaluation_pools.clear()
        for pool in pools:
            pool.close()
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "ResourceManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
