"""The experiment pipeline: one cached synthesis→simulation loop.

The pieces (see the module docstrings for the full story):

* :class:`~repro.pipeline.runner.ExperimentRunner` — the shared
  generate → synthesize → evaluate → rows loop all five experiment
  drivers are specs of;
* :class:`~repro.pipeline.store.TreeStore` — content-addressed cache
  of synthesized quasi-static trees over pluggable backends
  (filesystem / in-memory LRU / Redis; ``repro experiment
  --cache-backend``/``--cache-dir``), with per-operation
  :class:`~repro.pipeline.store.StoreMetrics` and a
  :class:`~repro.pipeline.store.ResilientBackend` retry/circuit-
  breaker wrapper around the networked backend;
* :class:`~repro.pipeline.resources.ResourceManager` — experiment-
  scoped ownership of the synthesis and evaluation worker pools (one
  spawn per run instead of one per application) and of the run's
  optional tree store;
* :class:`~repro.pipeline.checkpoint.ExperimentCheckpoint` — the
  durable journal behind ``repro experiment --checkpoint/--resume``:
  a killed sweep resumes, skips finished evaluation units and emits
  byte-identical rows;
* :mod:`~repro.pipeline.chaos` — the deterministic fault-injection
  harness (``--chaos``) the recovery paths are tested under.
"""

from repro.pipeline.checkpoint import (
    ExperimentCheckpoint,
    JournalingEvaluator,
    checkpoint_fingerprint,
)
from repro.pipeline.resources import ResourceManager
from repro.pipeline.runner import ExperimentRunner, synthesize_tree
from repro.pipeline.store import (
    FilesystemBackend,
    MemoryBackend,
    RedisBackend,
    ResilientBackend,
    RetryPolicy,
    StoreBackend,
    StoreMetrics,
    TreeStore,
    fingerprint,
    open_backend,
)

__all__ = [
    "ExperimentCheckpoint",
    "ExperimentRunner",
    "FilesystemBackend",
    "JournalingEvaluator",
    "MemoryBackend",
    "RedisBackend",
    "ResilientBackend",
    "ResourceManager",
    "RetryPolicy",
    "StoreBackend",
    "StoreMetrics",
    "TreeStore",
    "checkpoint_fingerprint",
    "fingerprint",
    "open_backend",
    "synthesize_tree",
]
