"""The experiment pipeline: one cached synthesis→simulation loop.

Three pieces (see the module docstrings for the full story):

* :class:`~repro.pipeline.runner.ExperimentRunner` — the shared
  generate → synthesize → evaluate → rows loop all five experiment
  drivers are specs of;
* :class:`~repro.pipeline.store.TreeStore` — content-addressed cache
  of synthesized quasi-static trees over pluggable backends
  (filesystem / in-memory LRU / Redis; ``repro experiment
  --cache-backend``/``--cache-dir``), with per-operation
  :class:`~repro.pipeline.store.StoreMetrics`;
* :class:`~repro.pipeline.resources.ResourceManager` — experiment-
  scoped ownership of the synthesis and evaluation worker pools (one
  spawn per run instead of one per application) and of the run's
  optional tree store.
"""

from repro.pipeline.resources import ResourceManager
from repro.pipeline.runner import ExperimentRunner, synthesize_tree
from repro.pipeline.store import (
    FilesystemBackend,
    MemoryBackend,
    RedisBackend,
    StoreBackend,
    StoreMetrics,
    TreeStore,
    fingerprint,
    open_backend,
)

__all__ = [
    "ExperimentRunner",
    "FilesystemBackend",
    "MemoryBackend",
    "RedisBackend",
    "ResourceManager",
    "StoreBackend",
    "StoreMetrics",
    "TreeStore",
    "fingerprint",
    "open_backend",
    "synthesize_tree",
]
