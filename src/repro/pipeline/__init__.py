"""The experiment pipeline: one cached synthesis→simulation loop.

Three pieces (see the module docstrings for the full story):

* :class:`~repro.pipeline.runner.ExperimentRunner` — the shared
  generate → synthesize → evaluate → rows loop all five experiment
  drivers are specs of;
* :class:`~repro.pipeline.store.TreeStore` — content-addressed cache
  of synthesized quasi-static trees (``repro experiment --cache-dir``);
* :class:`~repro.pipeline.resources.ResourceManager` — experiment-
  scoped ownership of the synthesis and evaluation worker pools (one
  spawn per run instead of one per application).
"""

from repro.pipeline.resources import ResourceManager
from repro.pipeline.runner import ExperimentRunner, synthesize_tree
from repro.pipeline.store import TreeStore, fingerprint

__all__ = [
    "ExperimentRunner",
    "ResourceManager",
    "TreeStore",
    "fingerprint",
    "synthesize_tree",
]
