"""Checkpoint/resume for experiment sweeps: an atomic JSONL journal.

A paper-scale sweep is hours of synthesis and simulation; a killed
nightly that restarts from zero wastes all of it.  This module gives
:class:`~repro.pipeline.runner.ExperimentRunner` a durable journal of
*completed evaluation units*, so a resumed run
(``repro experiment --checkpoint DIR --resume``) skips every unit that
already reached disk and emits final rows **byte-identical** to an
uninterrupted run.

Layout under the checkpoint directory:

* ``manifest.json`` — the experiment's name plus a workload
  **fingerprint** (SHA-256 over the canonical JSON of the config with
  the result-neutral routing knobs ``engine``/``jobs`` masked — both
  engines and any worker count produce bit-identical rows, which the
  differential suites pin).  ``--resume`` refuses a directory whose
  manifest does not match, so rows of different workloads can never be
  mixed;
* ``journal.jsonl`` — one JSON line per completed unit:
  ``{"key": <unit fingerprint>, "value": <encoded outcomes>}``.  Each
  line is flushed and fsynced before the run moves on, so a kill
  between rows loses nothing; a kill *mid-write* leaves at most one
  torn trailing line, which the loader tolerates (everything before it
  is reused, the torn unit is recomputed).

The journaled unit is one evaluator call — ``compare(plans)`` or
``evaluate(plan)`` — keyed by the application, the evaluation
parameters and the plans' canonical JSON forms.
:class:`JournalingEvaluator` wraps the runner's Monte-Carlo evaluator:
a journal hit decodes the stored
:class:`~repro.evaluation.montecarlo.EvaluationOutcome` values without
constructing the real evaluator at all (skipping its eager scenario
sampling — the expensive part at paper scale), and floats round-trip
exactly through JSON (``repr`` shortest-form, the same guarantee the
golden differential suite relies on).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, is_dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from repro.errors import RuntimeModelError

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
FORMAT_VERSION = 1

#: Config knobs masked out of the workload fingerprint: pure routing,
#: proven result-neutral by the differential suites.
_ROUTING_KNOBS = ("engine", "jobs", "execution")


def _canonical(data: Dict[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def masked_workload(config) -> Optional[Dict[str, Any]]:
    """The fingerprinted view of a config: a plain dict with the
    result-neutral routing knobs (:data:`_ROUTING_KNOBS`) removed."""
    if config is None:
        return None
    data = dict(asdict(config) if is_dataclass(config) else config)
    for knob in _ROUTING_KNOBS:
        data.pop(knob, None)
    return data


def checkpoint_fingerprint(experiment: str, config=None) -> str:
    """Stable identity of one experiment workload.

    ``config`` may be a config dataclass or a plain dict; the routing
    knobs (:data:`_ROUTING_KNOBS`) are masked so a sweep checkpointed
    with ``--jobs 4`` resumes fine under ``--jobs 1``.
    """
    payload: Dict[str, Any] = {"experiment": experiment}
    workload = masked_workload(config)
    if workload is not None:
        payload["workload"] = workload
    return hashlib.sha256(
        _canonical(payload).encode("utf-8")
    ).hexdigest()


def _workload_diff(
    theirs: Optional[Dict[str, Any]], ours: Optional[Dict[str, Any]]
) -> str:
    """One comma-separated summary of how two workloads differ.

    Names each masked config field whose value changed (with both
    values), so the error says *what* to fix, not just that the
    fingerprints disagree.  An older manifest without a recorded
    workload gets an honest fallback.
    """
    if theirs is None or ours is None:
        return "the checkpoint predates workload recording"
    differing = []
    for name in sorted(set(theirs) | set(ours)):
        a, b = theirs.get(name, "<absent>"), ours.get(name, "<absent>")
        if a != b:
            differing.append(f"{name} (checkpoint {a!r}, this run {b!r})")
    if not differing:
        return "identical recorded workloads with differing fingerprints"
    return "differing field(s): " + ", ".join(differing)


class ExperimentCheckpoint:
    """The journal of one (possibly multi-session) experiment run.

    Parameters
    ----------
    directory:
        Where the manifest and journal live (created on demand).
    experiment:
        The experiment's name (``fig9a``, ``sweeps``, ...).
    config:
        The workload config; fingerprinted into the manifest.
    resume:
        ``False`` (default) starts fresh — the journal is truncated
        and the manifest rewritten atomically.  ``True`` requires an
        existing manifest with a matching fingerprint and reloads the
        journal; mismatches raise a clear
        :class:`~repro.errors.RuntimeModelError`.
    """

    def __init__(
        self,
        directory: str,
        *,
        experiment: str,
        config=None,
        resume: bool = False,
    ):
        self.directory = os.path.abspath(directory)
        self.experiment = experiment
        self.fingerprint = checkpoint_fingerprint(experiment, config)
        self.workload = masked_workload(config)
        self.resume = resume
        #: Units journaled by this session / reused from a prior one.
        self.journaled = 0
        self.reused = 0
        self._entries: Dict[str, Any] = {}
        self._handle = None
        manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        journal_path = os.path.join(self.directory, JOURNAL_NAME)
        if resume:
            self._check_manifest(manifest_path)
            self._load_journal(journal_path)
        else:
            os.makedirs(self.directory, exist_ok=True)
            self._write_manifest(manifest_path)
        self._handle = open(
            journal_path, "a" if resume else "w", encoding="utf-8"
        )

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _write_manifest(self, path: str) -> None:
        payload = json.dumps(
            {
                "format": FORMAT_VERSION,
                "experiment": self.experiment,
                "fingerprint": self.fingerprint,
                # The masked config itself, not just its hash: a
                # mismatched --resume can then say *which* field moved.
                "workload": self.workload,
            },
            indent=2,
            sort_keys=True,
        )
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _check_manifest(self, path: str) -> None:
        if not os.path.isfile(path):
            raise RuntimeModelError(
                f"cannot resume: no checkpoint manifest at {path} "
                f"(run once with --checkpoint first)"
            )
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise RuntimeModelError(
                f"cannot resume: unreadable checkpoint manifest at "
                f"{path}: {exc}"
            ) from exc
        if manifest.get("fingerprint") != self.fingerprint:
            if manifest.get("experiment") != self.experiment:
                what = (
                    f"belongs to experiment "
                    f"{manifest.get('experiment')!r}, not "
                    f"{self.experiment!r}"
                )
            else:
                what = (
                    f"has a different workload fingerprint — "
                    f"{_workload_diff(manifest.get('workload'), self.workload)}"
                )
            raise RuntimeModelError(
                f"cannot resume: the checkpoint at {self.directory} "
                f"{what}; refusing to mix results "
                f"(use a fresh --checkpoint directory)"
            )

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def _load_journal(self, path: str) -> None:
        if not os.path.isfile(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    key, value = entry["key"], entry["value"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # A torn tail from a killed run: everything after
                    # it is unreliable, everything before is reusable.
                    break
                self._entries[key] = value

    @property
    def completed(self) -> int:
        """Units currently on disk (loaded + journaled this session)."""
        return len(self._entries)

    def lookup(self, key: str) -> Optional[Any]:
        """The journaled value under ``key``, or ``None`` (counted)."""
        value = self._entries.get(key)
        if value is not None:
            self.reused += 1
        return value

    def record(self, key: str, value: Any) -> None:
        """Durably append one completed unit (flush + fsync).

        The active chaos plan's ``kill-run`` hook fires *after* the
        row is on disk — exactly the shape of a real kill between
        rows, which is what ``--resume`` recovers from.
        """
        if self._handle is None:
            raise RuntimeModelError(
                "cannot record on a closed ExperimentCheckpoint"
            )
        line = json.dumps(
            {"key": key, "value": value}, separators=(",", ":")
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._entries[key] = value
        self.journaled += 1
        from repro.pipeline import chaos

        plan = chaos.current()
        if plan is not None:
            plan.row_written()

    def summary_line(self) -> str:
        return (
            f"checkpoint: {self.journaled} unit(s) journaled, "
            f"{self.reused} reused ({self.directory})"
        )

    def close(self) -> None:
        """Close the journal handle (idempotent)."""
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "ExperimentCheckpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Outcome (de)serialization
# ----------------------------------------------------------------------
def _encode_outcomes(outcomes) -> Dict[str, Any]:
    """``{fault count: EvaluationOutcome}`` → JSON-safe dict."""
    return {str(faults): asdict(out) for faults, out in outcomes.items()}


def _decode_outcomes(data: Dict[str, Any]):
    from repro.evaluation.montecarlo import EvaluationOutcome

    return {
        int(faults): EvaluationOutcome(**fields)
        for faults, fields in data.items()
    }


def _encode_results(results) -> Dict[str, Any]:
    """``compare()``'s ``{name: {faults: outcome}}`` → JSON-safe."""
    return {
        name: _encode_outcomes(outcomes)
        for name, outcomes in results.items()
    }


def _decode_results(data: Dict[str, Any]):
    return {
        name: _decode_outcomes(outcomes)
        for name, outcomes in data.items()
    }


def _plan_payload(plan) -> Dict[str, Any]:
    """The canonical JSON form of a plan (tree or f-schedule)."""
    from repro.io.json_io import schedule_to_dict, tree_to_dict
    from repro.quasistatic.tree import QSTree

    if isinstance(plan, QSTree):
        return {"tree": tree_to_dict(plan)}
    return {"schedule": schedule_to_dict(plan)}


class JournalingEvaluator:
    """A Monte-Carlo evaluator view backed by the checkpoint journal.

    Presents the evaluator surface the drivers use (``compare`` /
    ``evaluate`` / ``with`` scoping); each call is keyed by the
    application, the evaluation parameters and the plans' canonical
    forms.  A journal hit returns the stored outcomes decoded exactly
    (no simulation, no scenario sampling — the real evaluator is never
    even constructed); a miss builds the real evaluator lazily through
    ``factory``, runs it, and journals the encoded result durably
    before returning it.  Anything else (``scenarios`` for the
    replanner ablation, say) transparently forces and proxies the real
    evaluator.
    """

    def __init__(
        self,
        checkpoint: ExperimentCheckpoint,
        app,
        factory: Callable[[], Any],
        *,
        n_scenarios: int,
        fault_counts: Optional[Sequence[int]],
        seed: int,
    ):
        self._checkpoint = checkpoint
        self._factory = factory
        self._inner = None
        from repro.io.json_io import application_to_dict

        self._base = {
            "app": application_to_dict(app),
            "eval": {
                "n_scenarios": n_scenarios,
                "fault_counts": (
                    list(fault_counts)
                    if fault_counts is not None
                    else list(range(getattr(app, "k", 0) + 1))
                ),
                "seed": seed,
            },
        }

    def _ensure_inner(self):
        if self._inner is None:
            self._inner = self._factory()
        return self._inner

    def key_for(self, plans) -> str:
        payload = dict(self._base)
        payload["plans"] = {
            name: _plan_payload(plan) for name, plan in plans.items()
        }
        return hashlib.sha256(
            _canonical(payload).encode("utf-8")
        ).hexdigest()

    # ------------------------------------------------------------------
    # Evaluator surface
    # ------------------------------------------------------------------
    def compare(self, plans):
        key = self.key_for(plans)
        cached = self._checkpoint.lookup(key)
        if cached is not None:
            return _decode_results(cached)
        results = self._ensure_inner().compare(plans)
        self._checkpoint.record(key, _encode_results(results))
        return results

    def evaluate(self, plan):
        key = self.key_for({"plan": plan})
        cached = self._checkpoint.lookup(key)
        if cached is not None:
            return _decode_outcomes(cached["plan"])
        outcomes = self._ensure_inner().evaluate(plan)
        self._checkpoint.record(
            key, _encode_results({"plan": outcomes})
        )
        return outcomes

    def close(self) -> None:
        if self._inner is not None:
            self._inner.close()
            self._inner = None

    def __enter__(self) -> "JournalingEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, attr):
        if attr.startswith("_"):
            raise AttributeError(attr)
        return getattr(self._ensure_inner(), attr)
