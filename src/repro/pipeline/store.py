"""Content-addressed store of synthesized quasi-static trees.

FTQS construction is a pure function of (application, root f-schedule,
:class:`~repro.quasistatic.ftqs.FTQSConfig`) — both engines produce
identical trees for any job count, which the differential suite
asserts.  That makes trees perfect cache material: repeated experiment
runs (and repeated sweep points over the same application) can skip
the build entirely and reload the tree bit-identically from JSON
(round-trip fidelity is covered by ``tests/test_json_io.py``).

:class:`TreeStore` keys each tree by a SHA-256 **fingerprint** of the
canonical JSON forms of the application, the root schedule and the
config (:mod:`repro.io.json_io` provides the dict forms; canonical =
sorted keys, compact separators), so any change to timing constants,
utility shapes, the fault hypothesis, the root schedule or a config
knob — including the embedded FTSS config — addresses a different
entry.  Entries are written atomically (temp file + rename) so a
killed run never leaves a half-written tree; unreadable or corrupted
entries are treated as misses and rebuilt over.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from typing import Any, Dict, Optional

from repro.errors import SerializationError
from repro.io.json_io import (
    application_to_dict,
    schedule_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.quasistatic.ftqs import FTQSConfig
from repro.quasistatic.tree import QSTree
from repro.scheduling.fschedule import FSchedule


def _canonical(data: Dict[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def fingerprint(app, root_schedule: FSchedule, config: FTQSConfig) -> str:
    """Stable content address of one synthesis problem.

    Built from the serialized forms — the same representations the
    store round-trips — so two applications that serialize identically
    (same processes, edges, period, k, µ, utilities) share cache
    entries regardless of object identity.
    """
    payload = _canonical(
        {
            "application": application_to_dict(app),
            "root": schedule_to_dict(root_schedule),
            "config": asdict(config),
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TreeStore:
    """A directory of ``<fingerprint>.json`` tree entries.

    Parameters
    ----------
    root:
        The cache directory.  Created if missing (its *parent* must
        exist — the CLI validates this before construction).

    ``hits``/``misses`` count :meth:`get` outcomes; a corrupted entry
    counts as a miss (and is silently rebuilt by the caller's
    subsequent :meth:`put`).
    """

    def __init__(self, root: str):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    @staticmethod
    def fingerprint(
        app, root_schedule: FSchedule, config: FTQSConfig
    ) -> str:
        return fingerprint(app, root_schedule, config)

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(
        self, app, root_schedule: FSchedule, config: FTQSConfig
    ) -> Optional[QSTree]:
        """The cached tree, or ``None`` (missing or corrupted entry)."""
        path = self.path_for(fingerprint(app, root_schedule, config))
        try:
            with open(path) as handle:
                data = json.load(handle)
            tree = tree_from_dict(app, data)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (
            SerializationError,
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
        ):
            # A torn or stale entry must never poison a run: fall back
            # to a fresh build (the put() that follows overwrites it).
            self.misses += 1
            return None
        self.hits += 1
        return tree

    def put(
        self, app, root_schedule: FSchedule, config: FTQSConfig, tree: QSTree
    ) -> str:
        """Persist ``tree`` under its fingerprint; returns the path."""
        path = self.path_for(fingerprint(app, root_schedule, config))
        data = tree_to_dict(tree)
        handle, temp_path = tempfile.mkstemp(
            dir=self.root, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(data, stream, sort_keys=True)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except FileNotFoundError:
                pass
            raise
        return path

    def __len__(self) -> int:
        return sum(
            1 for name in os.listdir(self.root) if name.endswith(".json")
        )
