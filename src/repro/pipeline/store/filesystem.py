"""The filesystem backend: a directory of ``<fingerprint>.json`` files.

Behavior-preserving extraction of the original single-backend
``TreeStore`` directory layout, plus two robustness fixes:

* **any** ``OSError`` on a cache entry — not just ``FileNotFoundError``
  — degrades to a counted miss (a permission flip or an entry replaced
  by a directory used to abort the whole experiment run);
* stale ``*.tmp`` files left by runs killed between ``mkstemp`` and
  ``os.replace`` are swept when the store is opened, so a crashed run
  cannot grow the cache directory forever (``__len__``/:meth:`_keys`
  never counted them, and now they do not survive either).
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Optional, Tuple

from repro.pipeline.store.base import StoreBackend


class FilesystemBackend(StoreBackend):
    """Atomic-write JSON files under one cache directory.

    Parameters
    ----------
    root:
        The cache directory.  Created if missing (its *parent* must
        exist — the CLI validates this before construction).  Stale
        temp files from killed runs are removed on open.
    """

    name = "fs"

    def __init__(self, root: str):
        super().__init__()
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.swept_temp_files = self._sweep_stale_temp_files()

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def _sweep_stale_temp_files(self) -> int:
        """Unlink ``*.tmp`` droppings of killed ``put()`` calls.

        Safe against concurrent writers only in the way the atomic
        write itself is: a temp file being written *right now* by
        another process on the same store would be swept too, and that
        writer's ``os.replace`` would fail — acceptable, because store
        opens happen at run start, not mid-put, and a lost put is a
        rebuild, never corruption.
        """
        swept = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for entry in names:
            if entry.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.root, entry))
                    swept += 1
                except OSError:
                    pass
        return swept

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def _get(self, key: str) -> Optional[bytes]:
        # A missing entry is an ordinary miss; every *other* OSError
        # (PermissionError, IsADirectoryError, EIO ...) propagates to
        # the base class, which counts it as an error-classified miss.
        try:
            with open(self.path_for(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def _put(self, key: str, payload: bytes, tags: Tuple[str, ...]) -> str:
        path = self.path_for(key)
        handle, temp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(payload)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except FileNotFoundError:
                pass
            raise
        return path

    def _delete(self, key: str) -> bool:
        try:
            os.unlink(self.path_for(key))
        except FileNotFoundError:
            return False
        return True

    def _keys(self) -> List[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            name[: -len(".json")]
            for name in names
            if name.endswith(".json")
        )
