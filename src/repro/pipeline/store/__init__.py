"""The content-addressed tree store, split backend-from-policy.

The modules:

* :mod:`~repro.pipeline.store.core` — :class:`TreeStore` (fingerprint
  addressing, tree (de)serialization, corruption-degrades-to-miss) and
  :func:`fingerprint`/:func:`application_tag`/:func:`open_backend`;
* :mod:`~repro.pipeline.store.base` — the :class:`StoreBackend` ABC
  (metered get/put/delete/keys/len template methods over opaque JSON
  bytes) and its :class:`StoreMetrics` counters;
* :mod:`~repro.pipeline.store.filesystem` /
  :mod:`~repro.pipeline.store.memory` /
  :mod:`~repro.pipeline.store.redis_backend` — the three backends:
  today's atomic ``<fingerprint>.json`` directory, a capacity-bounded
  in-process LRU, and a fleet-shared pipelined Redis LRU with TTL and
  tag purges;
* :mod:`~repro.pipeline.store.resilient` — retry with exponential
  backoff + jitter and a circuit breaker that degrades a persistently
  failing backend onto an in-memory fallback (wrapped around the
  redis backend by :func:`open_backend` automatically).

Every backend gives the same guarantee the single-directory store
gave: a repeated identical experiment run is 100% hits, zero FTQS
builds, and bit-identical evaluation rows — and no entry, however
mangled, can ever abort a run.
"""

from repro.pipeline.store.base import StoreBackend, StoreMetrics
from repro.pipeline.store.core import (
    TreeStore,
    application_tag,
    fingerprint,
    open_backend,
)
from repro.pipeline.store.filesystem import FilesystemBackend
from repro.pipeline.store.memory import MemoryBackend
from repro.pipeline.store.redis_backend import RedisBackend
from repro.pipeline.store.resilient import ResilientBackend, RetryPolicy

__all__ = [
    "FilesystemBackend",
    "MemoryBackend",
    "RedisBackend",
    "ResilientBackend",
    "RetryPolicy",
    "StoreBackend",
    "StoreMetrics",
    "TreeStore",
    "application_tag",
    "fingerprint",
    "open_backend",
]
