"""The backend interface of the content-addressed tree store.

A backend is a tiny key→payload map: opaque UTF-8 JSON bytes under a
fingerprint string.  Everything tree-shaped (serialization, corruption
handling, fingerprinting) lives above the interface in
:class:`~repro.pipeline.store.core.TreeStore`, so a backend only has
to answer four questions — fetch, persist, forget, enumerate — and
every backend answers them with the same robustness contract:

* **reads never poison a run** — any :class:`OSError` (a permission
  flip, an entry replaced by a directory, a vanished network mount) or
  backend-specific transport error on the read path degrades to a
  counted miss, never an exception into the experiment loop;
* **every operation is measured** — the public :meth:`StoreBackend.get`
  / :meth:`StoreBackend.put` / :meth:`StoreBackend.delete` are template
  methods that time the raw primitive, classify the outcome and
  accumulate a :class:`StoreMetrics`, so hit rates and latency come for
  free on every backend (the pattern follows pypi-legacy's
  instrumented ``RedisLru``).

Concrete backends implement the underscored primitives:
``_get``/``_put``/``_delete``/``_keys``.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Tuple


@dataclass
class StoreMetrics:
    """Per-operation counters of one store backend.

    ``hits``/``misses`` classify :meth:`StoreBackend.get` outcomes the
    way the experiment loop sees them: a corrupted entry or a read
    error is a *miss* (the caller rebuilds), with the cause broken out
    under ``corrupted`` (payload present but undecodable) and
    ``errors`` (the backend raised — a bad permission bit, a torn
    connection).  ``get_seconds``/``put_seconds`` accumulate wall time
    over the raw backend primitives; ``bytes_read``/``bytes_written``
    count payload traffic.
    """

    hits: int = 0
    misses: int = 0
    errors: int = 0
    corrupted: int = 0
    puts: int = 0
    deletes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    get_seconds: float = 0.0
    put_seconds: float = 0.0
    #: Transient-failure re-attempts and fallback-served operations —
    #: driven by :class:`~repro.pipeline.store.resilient
    #: .ResilientBackend`; always zero on bare backends.
    retries: int = 0
    degraded: int = 0

    @property
    def gets(self) -> int:
        return self.hits + self.misses

    def note_corrupted(self) -> None:
        """Reclassify the most recent hit as a corrupted miss.

        The backend saw bytes (a hit at the transport level) but the
        payload failed to decode into a tree; to the caller that is a
        miss followed by a rebuild, so the hit/miss split must agree.
        """
        self.corrupted += 1
        self.hits -= 1
        self.misses += 1

    def snapshot(self) -> "StoreMetrics":
        """An immutable-by-convention copy of the current counters."""
        return replace(self)

    def merge(self, other: "StoreMetrics") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.errors += other.errors
        self.corrupted += other.corrupted
        self.puts += other.puts
        self.deletes += other.deletes
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.get_seconds += other.get_seconds
        self.put_seconds += other.put_seconds
        self.retries += other.retries
        self.degraded += other.degraded


class StoreBackend(ABC):
    """Abstract key→payload map with metered, fault-degrading access.

    Subclasses set :attr:`name` (the tag on the CLI summary line) and
    may widen :attr:`degradable` with their transport's error types;
    the read path catches exactly those and turns them into counted
    misses so one bad entry — or one flaky server — can never abort an
    experiment run.
    """

    #: Short backend tag shown on the CLI ``synthesis:`` line.
    name: str = "abstract"

    #: Exception types the read path degrades to a counted miss.  Any
    #: ``OSError`` (``PermissionError``, ``IsADirectoryError``, a dead
    #: socket) qualifies on every backend.
    degradable: Tuple[type, ...] = (OSError,)

    def __init__(self) -> None:
        self.metrics = StoreMetrics()

    # ------------------------------------------------------------------
    # Template methods (timed + classified)
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        """The payload under ``key``, or ``None`` (miss or read error)."""
        start = time.perf_counter()
        try:
            payload = self._get(key)
        except self.degradable:
            self.metrics.errors += 1
            payload = None
        finally:
            self.metrics.get_seconds += time.perf_counter() - start
        if payload is None:
            self.metrics.misses += 1
        else:
            self.metrics.hits += 1
            self.metrics.bytes_read += len(payload)
        return payload

    def put(
        self, key: str, payload: bytes, tags: Iterable[str] = ()
    ) -> str:
        """Persist ``payload`` under ``key``; returns its location.

        ``tags`` label the entry for group purges on backends that
        support them (:meth:`purge_tag`).  Write failures propagate —
        a store that cannot persist should fail loudly, unlike the
        read path — but still count under ``errors``.
        """
        start = time.perf_counter()
        try:
            location = self._put(key, payload, tuple(tags))
        except BaseException:
            self.metrics.errors += 1
            raise
        finally:
            self.metrics.put_seconds += time.perf_counter() - start
        self.metrics.puts += 1
        self.metrics.bytes_written += len(payload)
        return location

    def delete(self, key: str) -> bool:
        """Remove ``key``; True when an entry was actually removed."""
        removed = self._delete(key)
        if removed:
            self.metrics.deletes += 1
        return removed

    def keys(self) -> List[str]:
        """All stored fingerprints, sorted."""
        return self._keys()

    def __len__(self) -> int:
        return len(self._keys())

    def purge_tag(self, tag: str) -> int:
        """Remove every entry labelled ``tag``; returns the count.

        Optional: backends without tag bookkeeping raise."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support tag-based purging"
        )

    def close(self) -> None:
        """Release backend resources (connections); idempotent."""

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    @abstractmethod
    def _get(self, key: str) -> Optional[bytes]:
        """Raw fetch: payload bytes, or ``None`` when absent."""

    @abstractmethod
    def _put(self, key: str, payload: bytes, tags: Tuple[str, ...]) -> str:
        """Raw persist; returns a human-meaningful location string."""

    @abstractmethod
    def _delete(self, key: str) -> bool:
        """Raw removal; True when the entry existed."""

    @abstractmethod
    def _keys(self) -> List[str]:
        """Raw sorted key enumeration."""
