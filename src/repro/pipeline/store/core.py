"""Content-addressed store of synthesized quasi-static trees.

FTQS construction is a pure function of (application, root f-schedule,
:class:`~repro.quasistatic.ftqs.FTQSConfig`) — both engines produce
identical trees for any job count, which the differential suite
asserts.  That makes trees perfect cache material: repeated experiment
runs (and repeated sweep points over the same application) can skip
the build entirely and reload the tree bit-identically from JSON
(round-trip fidelity is covered by ``tests/test_json_io.py``).

:class:`TreeStore` keys each tree by a SHA-256 **fingerprint** of the
canonical JSON forms of the application, the root schedule and the
config (:mod:`repro.io.json_io` provides the dict forms; canonical =
sorted keys, compact separators), so any change to timing constants,
utility shapes, the fault hypothesis, the root schedule or a config
knob — including the embedded FTSS config — addresses a different
entry.

Where the bytes live is a pluggable
:class:`~repro.pipeline.store.base.StoreBackend` — the local
:class:`~repro.pipeline.store.filesystem.FilesystemBackend` directory,
a process-local :class:`~repro.pipeline.store.memory.MemoryBackend`
LRU, or a fleet-shared
:class:`~repro.pipeline.store.redis_backend.RedisBackend` — and every
backend honors the same contract: unreadable, corrupted or
error-raising entries are treated as counted misses and rebuilt over,
never allowed to poison a run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Dict, Optional

from repro.errors import RuntimeModelError, SerializationError
from repro.io.json_io import (
    application_to_dict,
    schedule_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.pipeline.store.base import StoreBackend, StoreMetrics
from repro.pipeline.store.filesystem import FilesystemBackend
from repro.pipeline.store.memory import MemoryBackend
from repro.quasistatic.ftqs import FTQSConfig
from repro.quasistatic.tree import QSTree
from repro.scheduling.fschedule import FSchedule


def _canonical(data: Dict[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def fingerprint(app, root_schedule: FSchedule, config: FTQSConfig) -> str:
    """Stable content address of one synthesis problem.

    Built from the serialized forms — the same representations the
    store round-trips — so two applications that serialize identically
    (same processes, edges, period, k, µ, utilities) share cache
    entries regardless of object identity.
    """
    payload = _canonical(
        {
            "application": application_to_dict(app),
            "root": schedule_to_dict(root_schedule),
            "config": asdict(config),
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def application_tag(app) -> str:
    """Short stable tag of one application (for group purges).

    Every tree of one application — any root schedule, any config —
    shares this tag, so retiring an application from a shared store is
    one :meth:`TreeStore.purge_application` call.
    """
    payload = _canonical(application_to_dict(app))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def open_backend(
    kind: str,
    *,
    cache_dir: Optional[str] = None,
    url: Optional[str] = None,
    capacity: Optional[int] = None,
    ttl_seconds: Optional[int] = None,
) -> StoreBackend:
    """Construct a backend from CLI-shaped knobs.

    ``fs`` needs ``cache_dir``; ``memory`` needs nothing; ``redis``
    takes ``url`` (default ``redis://localhost:6379/0``) and needs the
    ``redis`` package installed.  The redis backend comes wrapped in a
    :class:`~repro.pipeline.store.resilient.ResilientBackend`:
    transient transport errors retry with exponential backoff, and a
    persistently dead server trips a circuit breaker onto an in-memory
    fallback instead of degrading every operation over the wire.
    """
    if kind == "fs":
        if not cache_dir:
            raise RuntimeModelError(
                "the fs backend needs a cache directory (--cache-dir)"
            )
        return FilesystemBackend(cache_dir)
    if kind == "memory":
        return MemoryBackend(capacity=capacity)
    if kind == "redis":
        from repro.pipeline.store.redis_backend import (
            DEFAULT_URL,
            RedisBackend,
        )
        from repro.pipeline.store.resilient import ResilientBackend

        return ResilientBackend(
            RedisBackend(
                url or DEFAULT_URL,
                ttl_seconds=ttl_seconds,
                capacity=capacity,
            )
        )
    raise RuntimeModelError(
        f"unknown store backend {kind!r} (choose fs, memory or redis)"
    )


class TreeStore:
    """Fingerprint-addressed tree cache over a pluggable backend.

    Parameters
    ----------
    root:
        Shorthand for ``backend=FilesystemBackend(root)`` — the
        original single-backend constructor, kept working verbatim.
    backend:
        Any :class:`StoreBackend`.  Exactly one of ``root``/``backend``
        must be given.

    ``hits``/``misses`` mirror the backend's get classification as the
    experiment loop sees it: a corrupted or error-raising entry counts
    as a miss (and is silently rebuilt by the caller's subsequent
    :meth:`put`).  :attr:`metrics` exposes the full
    :class:`StoreMetrics` snapshot.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        *,
        backend: Optional[StoreBackend] = None,
    ):
        if (root is None) == (backend is None):
            raise RuntimeModelError(
                "TreeStore needs exactly one of root= or backend="
            )
        self.backend = (
            backend if backend is not None else FilesystemBackend(root)
        )
        # Kept for the original filesystem-store API surface.
        self.root = getattr(self.backend, "root", None)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        """Entry location for ``key`` (filesystem backends only)."""
        return self.backend.path_for(key)

    @staticmethod
    def fingerprint(
        app, root_schedule: FSchedule, config: FTQSConfig
    ) -> str:
        return fingerprint(app, root_schedule, config)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        return self.backend.name

    @property
    def metrics(self) -> StoreMetrics:
        """A snapshot of the backend's per-operation counters."""
        return self.backend.metrics.snapshot()

    @property
    def hits(self) -> int:
        return self.backend.metrics.hits

    @property
    def misses(self) -> int:
        return self.backend.metrics.misses

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(
        self, app, root_schedule: FSchedule, config: FTQSConfig
    ) -> Optional[QSTree]:
        """The cached tree, or ``None`` (missing/corrupted/erroring)."""
        key = fingerprint(app, root_schedule, config)
        payload = self.backend.get(key)
        if payload is None:
            return None
        try:
            data = json.loads(payload.decode("utf-8"))
            tree = tree_from_dict(app, data)
        except (
            SerializationError,
            UnicodeDecodeError,
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
        ):
            # A torn or stale entry must never poison a run: fall back
            # to a fresh build (the put() that follows overwrites it).
            self.backend.metrics.note_corrupted()
            return None
        return tree

    def put(
        self, app, root_schedule: FSchedule, config: FTQSConfig, tree: QSTree
    ) -> Optional[str]:
        """Persist ``tree`` under its fingerprint; returns its location.

        A failed write (the backend raised one of its degradable
        transport errors — say the entry path was replaced by a
        directory, or the server connection tore) returns ``None``
        instead of propagating: the build already succeeded, so a
        cache that cannot persist must cost the run nothing but the
        missed reuse.  The failure stays visible under
        ``metrics.errors``.
        """
        key = fingerprint(app, root_schedule, config)
        payload = json.dumps(tree_to_dict(tree), sort_keys=True).encode(
            "utf-8"
        )
        try:
            return self.backend.put(
                key, payload, tags=(application_tag(app),)
            )
        except self.backend.degradable:
            return None

    def purge_application(self, app) -> int:
        """Drop every cached tree of ``app`` (tag-supporting backends)."""
        return self.backend.purge_tag(application_tag(app))

    def __len__(self) -> int:
        return len(self.backend)

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""
        self.backend.close()
