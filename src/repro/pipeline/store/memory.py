"""The in-memory backend: a capacity-bounded process-local LRU.

For in-process sweeps (`repro experiment --cache-backend memory`) the
store's value is *within-run* reuse — sweep points revisiting the same
(application, root, config) triple skip the rebuild — with no
directory to manage and no dependencies.  Payloads are held as the
same serialized bytes every other backend stores, so a memory-cached
tree takes the identical decode path (and the identical corruption
handling) as a filesystem- or Redis-cached one.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import RuntimeModelError
from repro.pipeline.store.base import StoreBackend


class MemoryBackend(StoreBackend):
    """LRU map of fingerprint → payload bytes.

    Parameters
    ----------
    capacity:
        Maximum number of entries (``None`` = unbounded).  Inserting
        past capacity evicts least-recently-*used* entries — a get
        refreshes recency, so a sweep's working set survives while
        one-shot entries age out.  ``evictions`` counts removals.
    """

    name = "memory"

    def __init__(self, capacity: Optional[int] = None):
        super().__init__()
        if capacity is not None and capacity < 1:
            raise RuntimeModelError(
                f"MemoryBackend capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.evictions = 0
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._tags: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def _get(self, key: str) -> Optional[bytes]:
        payload = self._entries.get(key)
        if payload is not None:
            self._entries.move_to_end(key)
        return payload

    def _put(self, key: str, payload: bytes, tags: Tuple[str, ...]) -> str:
        self._entries[key] = bytes(payload)
        self._entries.move_to_end(key)
        for tag in tags:
            self._tags.setdefault(tag, set()).add(key)
        while (
            self.capacity is not None
            and len(self._entries) > self.capacity
        ):
            stale, _ = self._entries.popitem(last=False)
            self._forget(stale)
            self.evictions += 1
        return key

    def _delete(self, key: str) -> bool:
        if key not in self._entries:
            return False
        del self._entries[key]
        self._forget(key)
        return True

    def _keys(self) -> List[str]:
        return sorted(self._entries)

    # ------------------------------------------------------------------
    # Tags
    # ------------------------------------------------------------------
    def _forget(self, key: str) -> None:
        for members in self._tags.values():
            members.discard(key)

    def purge_tag(self, tag: str) -> int:
        """Drop every entry inserted under ``tag``."""
        removed = 0
        for key in sorted(self._tags.pop(tag, set())):
            if self.delete(key):
                removed += 1
        return removed
