"""Retry, backoff and circuit-breaker degradation for store backends.

A networked tree cache (Redis over a real wire) fails in two shapes:

* **transient** — a dropped connection, a failover blip, a timeout.
  Worth a few re-attempts with exponential backoff (plus jitter so a
  fleet of workers does not retry in lock-step);
* **persistent** — the server is gone for the rest of the run.  Worth
  exactly *zero* further wire attempts: after ``breaker_threshold``
  consecutive raw failures the circuit breaker trips and every later
  operation is served by an in-process
  :class:`~repro.pipeline.store.memory.MemoryBackend` fallback.  The
  run finishes (the cache degrades to per-run memoization — repeats
  within the run still hit), and the degradation is visible as
  ``StoreMetrics.degraded`` on the CLI ``store[...]`` line.

:class:`ResilientBackend` wraps any
:class:`~repro.pipeline.store.base.StoreBackend` and routes the raw
``_get``/``_put``/``_delete``/``_keys`` primitives through that
policy; it presents the *inner* backend's name and degradable error
types, so to :class:`~repro.pipeline.store.core.TreeStore` and the
summary line it still looks like ``redis`` — just one that refuses to
die.  :func:`~repro.pipeline.store.core.open_backend` wraps the redis
backend in one automatically.

Every raw attempt first consults the active
:class:`~repro.pipeline.chaos.ChaosPlan` (if any), whose
``store-fail@N`` hook raises :class:`ConnectionError` on scheduled
ops — that is how the tests drive the retry and breaker paths
deterministically.
"""

from __future__ import annotations

import random
import time
import warnings
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.pipeline import chaos
from repro.pipeline.store.base import StoreBackend
from repro.pipeline.store.memory import MemoryBackend


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient store failures.

    Attempt *i* (0-based re-attempt) sleeps
    ``min(max_delay, base_delay * 2**i) * (1 + jitter * u)`` with
    ``u ~ U[0, 1)`` drawn from the wrapper's seeded RNG — deterministic
    under test, decorrelated across a fleet in production.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random) -> float:
        backoff = min(self.max_delay, self.base_delay * (2.0**attempt))
        return backoff * (1.0 + self.jitter * rng.random())


class ResilientBackend(StoreBackend):
    """Retrying, breaker-degrading wrapper around another backend.

    Parameters
    ----------
    inner:
        The wrapped backend (its template methods are bypassed — the
        wrapper meters operations itself, so nothing double-counts).
    policy:
        The :class:`RetryPolicy` (default: 3 attempts, 50 ms base).
    breaker_threshold:
        Consecutive raw failures that trip the breaker (default 6 —
        two fully-exhausted operations under the default policy).
    fallback:
        The post-trip backend (default: a fresh unbounded
        :class:`MemoryBackend`).
    sleep, seed:
        Injectable clock and jitter seed, so tests run in microseconds
        and assert exact traces.
    """

    def __init__(
        self,
        inner: StoreBackend,
        *,
        policy: Optional[RetryPolicy] = None,
        breaker_threshold: int = 6,
        fallback: Optional[StoreBackend] = None,
        sleep=time.sleep,
        seed: int = 0,
    ):
        self.inner = inner  # before super(): __getattr__ guards on it
        super().__init__()
        if breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        self.policy = policy or RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.fallback = fallback if fallback is not None else MemoryBackend()
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._consecutive_failures = 0
        self.tripped = False
        # Present the inner backend's identity: the summary line says
        # "store[redis]" and TreeStore catches the transport's errors.
        self.name = inner.name
        self.degradable = tuple(
            dict.fromkeys(tuple(inner.degradable) + (OSError,))
        )

    # ------------------------------------------------------------------
    # Core routing
    # ------------------------------------------------------------------
    def _chaos_op(self) -> None:
        plan = chaos.current()
        if plan is not None:
            plan.store_op()

    def _trip(self, exc: BaseException) -> None:
        self.tripped = True
        warnings.warn(
            f"store backend '{self.name}' hit "
            f"{self._consecutive_failures} consecutive transport "
            f"failures (last: {exc!r}); circuit breaker open — serving "
            f"the rest of the run from an in-memory fallback",
            RuntimeWarning,
            stacklevel=4,
        )

    def _call(self, op: str, *args):
        """Run one raw primitive with retry/backoff, or the fallback."""
        if self.tripped:
            self.metrics.degraded += 1
            return getattr(self.fallback, op)(*args)
        last_error: Optional[BaseException] = None
        for attempt in range(self.policy.attempts):
            if attempt:
                self.metrics.retries += 1
                self._sleep(self.policy.delay(attempt - 1, self._rng))
            try:
                self._chaos_op()
                result = getattr(self.inner, op)(*args)
            except self.degradable as exc:
                last_error = exc
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.breaker_threshold:
                    self._trip(exc)
                    self.metrics.degraded += 1
                    return getattr(self.fallback, op)(*args)
                continue
            self._consecutive_failures = 0
            return result
        raise last_error

    # ------------------------------------------------------------------
    # Primitives (metered by the inherited template methods)
    # ------------------------------------------------------------------
    def _get(self, key: str) -> Optional[bytes]:
        return self._call("_get", key)

    def _put(self, key: str, payload: bytes, tags: Tuple[str, ...]) -> str:
        return self._call("_put", key, payload, tags)

    def _delete(self, key: str) -> bool:
        return self._call("_delete", key)

    def _keys(self) -> List[str]:
        return self._call("_keys")

    # ------------------------------------------------------------------
    # Pass-throughs
    # ------------------------------------------------------------------
    def purge_tag(self, tag: str) -> int:
        if self.tripped:
            return self.fallback.purge_tag(tag)
        removed = self.inner.purge_tag(tag)
        self.metrics.deletes += removed
        return removed

    def close(self) -> None:
        try:
            self.inner.close()
        except Exception:
            pass  # a torn connection must not mask the run's result
        self.fallback.close()

    def __getattr__(self, attr):
        # Backend-specific surface (``client``, ``evictions``,
        # ``path_for``...) reads through to the wrapped backend.
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(attr)
        return getattr(inner, attr)
