"""The Redis backend: one shared tree cache for a fleet of workers.

The ROADMAP's scheduling-as-a-service story needs the cache to outlive
one process and one machine: a tree synthesized once by any worker is
never rebuilt anywhere.  This backend keeps the store's differential
guarantee intact — payloads are the same canonical JSON bytes the
filesystem backend writes, so a Redis-cached tree decodes through the
identical path and evaluates bit-identically.

Layout under one namespace (default ``repro:trees``):

* ``<ns>:data:<fingerprint>`` — the payload string, optionally with a
  TTL;
* ``<ns>:lru`` — a sorted set scoring each fingerprint by a monotonic
  access clock (``<ns>:clock``), the LRU index capacity eviction
  trims (the pipelined touch-on-get follows pypi-legacy's
  ``RedisLru``);
* ``<ns>:tag:<tag>`` — the fingerprints inserted under ``tag``, for
  group purges (e.g. every tree of one application).

Round trips are pipelined: a get is one ``GET`` + LRU ``ZADD`` batch,
a put is one ``SET`` + ``ZADD`` + tag-``SADD`` + ``ZCARD`` batch with
eviction only when over capacity.  Transport errors on the read path
degrade to counted misses like every other backend's.

This module is importable without the ``redis`` package — only
*constructing* a :class:`RedisBackend` without an explicit ``client``
requires it (tests inject ``fakeredis`` or an in-repo stub).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import RuntimeModelError
from repro.pipeline.store.base import StoreBackend

try:  # pragma: no cover - exercised via the import-guard test
    import redis as _redis
except ImportError:  # pragma: no cover
    _redis = None

DEFAULT_URL = "redis://localhost:6379/0"


def _text(value) -> str:
    """Redis replies are bytes; normalize members/keys to str."""
    if isinstance(value, bytes):
        return value.decode("utf-8")
    return str(value)


class RedisBackend(StoreBackend):
    """Pipelined Redis LRU with TTL, capacity eviction and tag purges.

    Parameters
    ----------
    url:
        Redis connection URL; used only when ``client`` is not given.
    client:
        A ready client (``redis.Redis``-compatible — ``fakeredis``
        works).  Lets tests and embedders bypass the ``redis``
        dependency entirely.
    ttl_seconds:
        Per-entry expiry (``None`` = entries live forever).  Expired
        entries read as ordinary misses; their stale LRU index slots
        are dropped on the touch that discovers them.
    capacity:
        Maximum entry count (``None`` = unbounded); inserts past it
        evict the least-recently-used fingerprints (``evictions``
        counts them).
    namespace:
        Key prefix, so several stores can share one server.
    """

    name = "redis"

    def __init__(
        self,
        url: str = DEFAULT_URL,
        *,
        client=None,
        ttl_seconds: Optional[int] = None,
        capacity: Optional[int] = None,
        namespace: str = "repro:trees",
    ):
        super().__init__()
        if ttl_seconds is not None and ttl_seconds < 1:
            raise RuntimeModelError(
                f"ttl_seconds must be >= 1, got {ttl_seconds}"
            )
        if capacity is not None and capacity < 1:
            raise RuntimeModelError(
                f"capacity must be >= 1, got {capacity}"
            )
        if client is None:
            if _redis is None:
                raise RuntimeModelError(
                    "RedisBackend needs the 'redis' package (or pass "
                    "client=..., e.g. a fakeredis instance); install "
                    "redis-py to use --cache-backend redis"
                )
            client = _redis.Redis.from_url(url)
        self.client = client
        self.url = url
        self.ttl_seconds = ttl_seconds
        self.capacity = capacity
        self.namespace = namespace
        self.evictions = 0
        # Widen read-path degradation with the transport's error tree
        # (redis.RedisError does not subclass OSError).
        degradable = [OSError]
        if _redis is not None:
            degradable.append(_redis.RedisError)
        client_error = getattr(type(client), "Error", None)
        if isinstance(client_error, type):
            degradable.append(client_error)
        self.degradable = tuple(degradable)
        # Fail fast at construction: a dead server should be a clear
        # startup error, not a run that silently misses on every get.
        try:
            self.client.ping()
        except self.degradable as exc:
            raise RuntimeModelError(
                f"cannot reach redis at {url}: {exc} — is the server "
                f"reachable? (or use --cache-backend memory for a "
                f"dependency-free in-process cache)"
            ) from exc

    # ------------------------------------------------------------------
    # Key layout
    # ------------------------------------------------------------------
    def data_key(self, key: str) -> str:
        return f"{self.namespace}:data:{key}"

    def tag_key(self, tag: str) -> str:
        return f"{self.namespace}:tag:{tag}"

    @property
    def lru_key(self) -> str:
        return f"{self.namespace}:lru"

    @property
    def clock_key(self) -> str:
        return f"{self.namespace}:clock"

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def _get(self, key: str) -> Optional[bytes]:
        clock = self.client.incr(self.clock_key)
        pipe = self.client.pipeline()
        pipe.get(self.data_key(key))
        pipe.zadd(self.lru_key, {key: clock})
        payload, _ = pipe.execute()
        if payload is None:
            # Absent or TTL-expired: undo the optimistic LRU touch so
            # the index never outgrows the data.
            self.client.zrem(self.lru_key, key)
            return None
        if isinstance(payload, str):  # decode_responses=True clients
            payload = payload.encode("utf-8")
        return payload

    def _put(self, key: str, payload: bytes, tags: Tuple[str, ...]) -> str:
        clock = self.client.incr(self.clock_key)
        pipe = self.client.pipeline()
        if self.ttl_seconds is None:
            pipe.set(self.data_key(key), payload)
        else:
            pipe.set(self.data_key(key), payload, ex=self.ttl_seconds)
        pipe.zadd(self.lru_key, {key: clock})
        for tag in tags:
            pipe.sadd(self.tag_key(tag), key)
        pipe.zcard(self.lru_key)
        size = pipe.execute()[-1]
        if self.capacity is not None and size > self.capacity:
            self._evict(int(size) - self.capacity)
        return self.data_key(key)

    def _evict(self, count: int) -> None:
        stale = self.client.zrange(self.lru_key, 0, count - 1)
        if not stale:
            return
        keys = [_text(member) for member in stale]
        pipe = self.client.pipeline()
        for key in keys:
            pipe.delete(self.data_key(key))
        pipe.zrem(self.lru_key, *keys)
        pipe.execute()
        self.evictions += len(keys)

    def _delete(self, key: str) -> bool:
        pipe = self.client.pipeline()
        pipe.delete(self.data_key(key))
        pipe.zrem(self.lru_key, key)
        removed, _ = pipe.execute()
        return bool(removed)

    def _keys(self) -> List[str]:
        prefix = f"{self.namespace}:data:"
        return sorted(
            _text(name)[len(prefix):]
            for name in self.client.scan_iter(match=f"{prefix}*")
        )

    # ------------------------------------------------------------------
    # Tags / lifecycle
    # ------------------------------------------------------------------
    def purge_tag(self, tag: str) -> int:
        """Drop every entry inserted under ``tag`` in one pipeline."""
        members = self.client.smembers(self.tag_key(tag))
        if not members:
            return 0
        keys = sorted(_text(member) for member in members)
        pipe = self.client.pipeline()
        for key in keys:
            pipe.delete(self.data_key(key))
        pipe.zrem(self.lru_key, *keys)
        pipe.delete(self.tag_key(tag))
        replies = pipe.execute()
        removed = sum(1 for reply in replies[: len(keys)] if reply)
        self.metrics.deletes += removed
        return removed

    def close(self) -> None:
        close = getattr(self.client, "close", None)
        if close is None:
            return
        try:
            close()
        except self.degradable:
            pass
