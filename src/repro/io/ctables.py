"""Shared helpers for rendering Python tables as C source.

Two generators emit C in this repo: the embedded-target table export
(:mod:`repro.io.c_export`, C89 structs for the online scheduler) and
the per-plan simulator kernels
(:mod:`repro.runtime.engine.kernel.codegen`, C99 translation units
compiled at run time).  Both need the same low-level pieces — C
identifier sanitizing, array initializers chunked to readable lines,
and (for the kernel) double constants that survive the round trip
exactly — so they live here.

``c_double`` renders a float as a C99 hexadecimal literal
(``float.hex()`` output is valid C99), which reproduces the Python
value bit for bit in the compiled object: the kernel's claim to bit
identity with the NumPy engine rests on every constant crossing the
language boundary without decimal rounding.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def sanitize(symbol: str) -> str:
    """A C identifier fragment from an application/graph name."""
    cleaned = "".join(c if c.isalnum() else "_" for c in symbol)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "g_" + cleaned
    return cleaned.lower()


def c_double(value: float) -> str:
    """``value`` as an exact C99 hexadecimal floating literal."""
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"cannot render non-finite constant {value!r}")
    return value.hex()


def c_int(value: int) -> str:
    """``value`` as an int64-safe C literal."""
    return f"INT64_C({int(value)})"


def render_array(
    name: str,
    ctype: str,
    values: Sequence[str],
    per_line: int = 8,
    indent: str = "    ",
) -> List[str]:
    """Lines of one ``static const`` array definition.

    ``values`` are pre-rendered element strings.  An empty sequence
    emits a one-element zero array (C forbids zero-length arrays) —
    callers guarantee such arrays are never indexed at run time.
    """
    if not values:
        return [f"static const {ctype} {name}[1] = {{0}};"]
    lines = [f"static const {ctype} {name}[{len(values)}] = {{"]
    for start in range(0, len(values), per_line):
        chunk = ", ".join(values[start : start + per_line])
        lines.append(f"{indent}{chunk},")
    lines.append("};")
    return lines


def render_int_array(
    name: str, values: Iterable[int], per_line: int = 8
) -> List[str]:
    """``render_array`` over int64 values."""
    return render_array(
        name, "int64_t", [c_int(v) for v in values], per_line=per_line
    )


def render_u64_array(
    name: str, values: Iterable[int], per_line: int = 4
) -> List[str]:
    """``render_array`` over uint64 bitmask words."""
    return render_array(
        name,
        "uint64_t",
        [f"UINT64_C({int(v):#018x})" for v in values],
        per_line=per_line,
    )


def render_double_array(
    name: str, values: Iterable[float], per_line: int = 4
) -> List[str]:
    """``render_array`` over exact hexadecimal double literals."""
    return render_array(
        name, "double", [c_double(v) for v in values], per_line=per_line
    )
