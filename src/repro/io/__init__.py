"""Persistence: JSON encoding and embedded C table export."""

from repro.io.c_export import export_tree_to_c, write_c_tables
from repro.io.json_io import (
    application_from_dict,
    application_to_dict,
    load_json,
    process_from_dict,
    process_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    tree_from_dict,
    tree_to_dict,
)

__all__ = [
    "application_from_dict",
    "application_to_dict",
    "export_tree_to_c",
    "write_c_tables",
    "load_json",
    "process_from_dict",
    "process_to_dict",
    "save_json",
    "schedule_from_dict",
    "schedule_to_dict",
    "tree_from_dict",
    "tree_to_dict",
]
