"""JSON (de)serialization of applications, schedules and trees.

Everything the scheduling pipeline produces can be persisted and
reloaded exactly — the embedded use case is precisely this: the
quasi-static tree is synthesized off-line and shipped to the target,
where the online scheduler only reads it.  Round-tripping is covered
by property tests (``tests/test_json_io.py``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import SerializationError
from repro.model.application import Application
from repro.model.graph import ProcessGraph
from repro.model.hypergraph import ShiftedUtility
from repro.model.process import Process, ProcessKind
from repro.quasistatic.tree import QSTree, SwitchArc
from repro.scheduling.fschedule import FSchedule, ScheduledEntry
from repro.utility.functions import UtilityFunction, utility_from_dict

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Utility functions
# ----------------------------------------------------------------------
def _utility_to_dict(fn: UtilityFunction) -> Dict[str, Any]:
    return fn.to_dict()


def _utility_from_dict(data: Dict[str, Any]) -> UtilityFunction:
    if data.get("type") == "shifted":
        return ShiftedUtility(
            _utility_from_dict(data["base"]), data["shift"]
        )
    return utility_from_dict(data)


# ----------------------------------------------------------------------
# Processes / graphs / applications
# ----------------------------------------------------------------------
def process_to_dict(proc: Process) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "name": proc.name,
        "bcet": proc.bcet,
        "wcet": proc.wcet,
        "aet": proc.aet,
        "kind": proc.kind.value,
    }
    if proc.recovery_overhead is not None:
        data["recovery_overhead"] = proc.recovery_overhead
    if proc.is_hard:
        data["deadline"] = proc.deadline
    else:
        data["utility"] = _utility_to_dict(proc.utility)
    return data


def process_from_dict(data: Dict[str, Any]) -> Process:
    try:
        kind = ProcessKind(data["kind"])
        return Process(
            name=data["name"],
            bcet=data["bcet"],
            wcet=data["wcet"],
            aet=data.get("aet"),
            kind=kind,
            deadline=data.get("deadline"),
            utility=(
                _utility_from_dict(data["utility"])
                if "utility" in data
                else None
            ),
            recovery_overhead=data.get("recovery_overhead"),
        )
    except KeyError as exc:
        raise SerializationError(f"process record missing field {exc}") from exc


def application_to_dict(app: Application) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "period": app.period,
        "k": app.k,
        "mu": app.mu,
        "graph": {
            "name": app.graph.name,
            "processes": [process_to_dict(p) for p in app.processes],
            "edges": [[s, d] for s, d in app.graph.edges],
        },
    }


def application_from_dict(data: Dict[str, Any]) -> Application:
    _check_version(data)
    try:
        graph_data = data["graph"]
        graph = ProcessGraph(
            [process_from_dict(p) for p in graph_data["processes"]],
            [tuple(e) for e in graph_data["edges"]],
            name=graph_data.get("name", "G"),
            period=data["period"],
        )
        return Application(
            graph, period=data["period"], k=data["k"], mu=data["mu"]
        )
    except KeyError as exc:
        raise SerializationError(
            f"application record missing field {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def schedule_to_dict(schedule: FSchedule) -> Dict[str, Any]:
    return {
        "entries": [
            {"name": e.name, "reexecutions": e.reexecutions}
            for e in schedule.entries
        ],
        "start_time": schedule.start_time,
        "fault_budget": schedule.fault_budget,
        "prior_completed": sorted(schedule.prior_completed),
        "prior_dropped": sorted(schedule.prior_dropped),
        "slack_sharing": schedule.slack_sharing,
    }


def schedule_from_dict(app: Application, data: Dict[str, Any]) -> FSchedule:
    try:
        return FSchedule(
            app,
            [
                ScheduledEntry(e["name"], e["reexecutions"])
                for e in data["entries"]
            ],
            start_time=data["start_time"],
            fault_budget=data["fault_budget"],
            prior_completed=data["prior_completed"],
            prior_dropped=data["prior_dropped"],
            slack_sharing=data.get("slack_sharing", True),
        )
    except KeyError as exc:
        raise SerializationError(f"schedule record missing field {exc}") from exc


# ----------------------------------------------------------------------
# Quasi-static trees
# ----------------------------------------------------------------------
def tree_to_dict(tree: QSTree) -> Dict[str, Any]:
    nodes: List[Dict[str, Any]] = []
    for node in tree:
        nodes.append(
            {
                "id": node.node_id,
                "parent": node.parent_id,
                "layer": node.layer,
                "switch_process": node.switch_process,
                "assumed_faults": node.assumed_faults,
                "schedule": schedule_to_dict(node.schedule),
                "arcs": [
                    {
                        "process": a.process,
                        "lo": a.lo,
                        "hi": a.hi,
                        "required_faults": a.required_faults,
                        "target": a.target,
                    }
                    for a in node.arcs
                ],
            }
        )
    return {"version": FORMAT_VERSION, "root": tree.root_id, "nodes": nodes}


def tree_from_dict(app: Application, data: Dict[str, Any]) -> QSTree:
    _check_version(data)
    try:
        by_id = {n["id"]: n for n in data["nodes"]}
        root_record = by_id[data["root"]]
        tree = QSTree(schedule_from_dict(app, root_record["schedule"]))
        if data["root"] != tree.root_id:
            raise SerializationError(
                "root node id mismatch; trees must be saved with root id 0"
            )
        # Rebuild children in id order so tree-assigned ids line up.
        id_map = {data["root"]: tree.root_id}
        for record in sorted(data["nodes"], key=lambda n: n["id"]):
            if record["id"] == data["root"]:
                continue
            node = tree.add_child(
                id_map[record["parent"]],
                schedule_from_dict(app, record["schedule"]),
                switch_process=record["switch_process"],
                assumed_faults=record["assumed_faults"],
                layer=record["layer"],
            )
            id_map[record["id"]] = node.node_id
        for record in data["nodes"]:
            for arc in record["arcs"]:
                tree.add_arc(
                    id_map[record["id"]],
                    SwitchArc(
                        process=arc["process"],
                        lo=arc["lo"],
                        hi=arc["hi"],
                        required_faults=arc["required_faults"],
                        target=id_map[arc["target"]],
                    ),
                )
        tree.validate()
        return tree
    except KeyError as exc:
        raise SerializationError(f"tree record missing field {exc}") from exc


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def save_json(data: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


def load_json(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        loaded = json.load(handle)
    if not isinstance(loaded, dict):
        raise SerializationError(f"{path}: expected a JSON object")
    return loaded


def _check_version(data: Dict[str, Any]) -> None:
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {version} (expected {FORMAT_VERSION})"
        )
