"""Monte-Carlo evaluation of schedules and quasi-static trees (§6).

The paper evaluates every approach on 20,000 execution scenarios per
fault count (0, 1, 2, 3 faults), with actual execution times drawn
uniformly from [BCET, WCET].  Crucially, the *same* scenarios are
replayed against every approach — the comparison is paired — which is
what :class:`MonteCarloEvaluator` implements: scenarios are generated
once per (application, fault count) and each plan runs them all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import RuntimeModelError
from repro.faults.injection import ExecutionScenario, ScenarioSampler
from repro.model.application import Application
from repro.quasistatic.tree import QSTree
from repro.runtime.online import OnlineScheduler
from repro.scheduling.fschedule import FSchedule

Plan = Union[QSTree, FSchedule]


@dataclass
class EvaluationOutcome:
    """Aggregated simulation results of one plan on one scenario set."""

    mean_utility: float
    utilities: List[float] = field(repr=False, default_factory=list)
    deadline_misses: int = 0
    mean_switches: float = 0.0
    mean_faults: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no simulated cycle missed a hard deadline."""
        return self.deadline_misses == 0


class MonteCarloEvaluator:
    """Paired Monte-Carlo comparison of scheduling approaches.

    Parameters
    ----------
    app:
        The application under evaluation.
    n_scenarios:
        Scenarios per fault count (the paper uses 20,000; smaller
        values keep the benches fast and the flag
        ``--full-scale`` restores the paper's number).
    fault_counts:
        Which fault counts to evaluate (default 0..k).
    seed:
        Seed of the scenario sampler.
    """

    def __init__(
        self,
        app: Application,
        n_scenarios: int = 200,
        fault_counts: Optional[Sequence[int]] = None,
        seed: int = 1,
    ):
        if n_scenarios < 1:
            raise RuntimeModelError("need at least one scenario")
        self.app = app
        self.fault_counts = (
            list(fault_counts)
            if fault_counts is not None
            else list(range(app.k + 1))
        )
        # Couple the fault-count axes: the i-th scenario of every fault
        # count shares the same execution-time draws, differing only in
        # the fault pattern.  Cross-fault-count comparisons ("utility
        # drops by x% under one fault") are then paired rather than
        # independent, which removes most of the sampling noise.
        from repro.faults.scenarios import sample_scenario

        sampler = ScenarioSampler(app, seed=seed)
        max_attempts = max(self.fault_counts, default=0) + 1
        names = [p.name for p in app.processes]
        duration_sets = [
            {
                name: tuple(values)
                for name, values in sampler.sample_durations(
                    max_attempts
                ).items()
            }
            for _ in range(n_scenarios)
        ]
        self.scenarios: Dict[int, List[ExecutionScenario]] = {}
        for f in self.fault_counts:
            patterns = [
                sample_scenario(names, f, sampler.rng)
                for _ in range(n_scenarios)
            ]
            self.scenarios[f] = [
                ExecutionScenario(durations, pattern)
                for durations, pattern in zip(duration_sets, patterns)
            ]

    def evaluate(self, plan: Plan) -> Dict[int, EvaluationOutcome]:
        """Run all scenario sets against ``plan``.

        Returns one :class:`EvaluationOutcome` per fault count.
        """
        scheduler = OnlineScheduler(self.app, plan, record_events=False)
        outcomes: Dict[int, EvaluationOutcome] = {}
        for faults, scenarios in self.scenarios.items():
            utilities: List[float] = []
            misses = 0
            switches = 0
            observed = 0
            for scenario in scenarios:
                result = scheduler.run(scenario)
                utilities.append(result.utility)
                if not result.met_all_hard_deadlines:
                    misses += 1
                switches += len(result.switches)
                observed += result.faults_observed
            count = len(scenarios)
            outcomes[faults] = EvaluationOutcome(
                mean_utility=float(np.mean(utilities)) if utilities else 0.0,
                utilities=utilities,
                deadline_misses=misses,
                mean_switches=switches / count,
                mean_faults=observed / count,
            )
        return outcomes

    def compare(
        self, plans: Mapping[str, Plan]
    ) -> Dict[str, Dict[int, EvaluationOutcome]]:
        """Evaluate several named plans on the same scenario sets."""
        return {name: self.evaluate(plan) for name, plan in plans.items()}


def normalized_to(
    results: Mapping[str, Mapping[int, EvaluationOutcome]],
    reference: str,
    reference_faults: int = 0,
) -> Dict[str, Dict[int, float]]:
    """Mean utilities normalized to one approach/fault-count cell (%).

    The paper's Fig. 9 normalizes everything to FTQS with no faults;
    Table 1 normalizes to FTSS.  Returns percentages.
    """
    if reference not in results:
        raise RuntimeModelError(f"unknown reference approach {reference!r}")
    base = results[reference][reference_faults].mean_utility
    if base <= 0:
        raise RuntimeModelError(
            "reference mean utility is non-positive; cannot normalize"
        )
    return {
        name: {
            faults: 100.0 * outcome.mean_utility / base
            for faults, outcome in per_fault.items()
        }
        for name, per_fault in results.items()
    }
