"""Monte-Carlo evaluation of schedules and quasi-static trees (§6).

The paper evaluates every approach on 20,000 execution scenarios per
fault count (0, 1, 2, 3 faults), with actual execution times drawn
uniformly from [BCET, WCET].  Crucially, the *same* scenarios are
replayed against every approach — the comparison is paired — which is
what :class:`MonteCarloEvaluator` implements: scenarios are generated
once per (application, fault count) and each plan runs them all.

Two interchangeable engines execute the replay:

* ``engine="reference"`` — the pure-Python
  :class:`~repro.runtime.online.OnlineScheduler` event loop, one
  scenario at a time (the behavioral oracle);
* ``engine="batched"`` — the array-based
  :class:`~repro.runtime.engine.simulator.BatchSimulator`, which packs
  each scenario set into a :class:`ScenarioBatch` and is bit-identical
  to the oracle (see ``tests/test_engine_differential.py``) while an
  order of magnitude faster;
* ``engine="kernel"`` — the generated-C
  :class:`~repro.runtime.engine.kernel.KernelSimulator`, which
  compiles the plan's decision tables to a cached shared object and is
  bit-identical to both (falling back to the batched engine, with a
  counted reason, when no C compiler is available).

Engine and parallelism are routed by one
:class:`~repro.execution.ExecutionConfig` (``execution=`` — an
instance or a spec string like ``"kernel@threads:8"``):
``mode="processes"`` shards the scenario range across
``multiprocessing`` workers via
:class:`~repro.runtime.engine.parallel.ParallelEvaluator`,
``mode="threads"`` across a GIL-free thread pool via
:class:`~repro.runtime.engine.threads.ThreadedEvaluator`.  Sharding is
deterministic and outcome-preserving for any mode and worker count.
The pre-:class:`ExecutionConfig` keywords ``engine=``/``jobs=`` remain
as deprecated aliases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import RuntimeModelError
from repro.execution import (
    ENGINES,
    ExecutionConfig,
    choices_line,
    resolve_execution,
)
from repro.faults.injection import ExecutionScenario, ScenarioSampler
from repro.model.application import Application
from repro.quasistatic.tree import QSTree
from repro.runtime.engine.batch import ScenarioBatch
from repro.runtime.engine.simulator import BatchSimulator
from repro.runtime.online import OnlineScheduler
from repro.scheduling.fschedule import FSchedule

Plan = Union[QSTree, FSchedule]

#: Raw simulation of one scenario set: (per-scenario utilities,
#: deadline misses, total switches, total faults, oracle fallbacks).
#: ``fallbacks`` counts scenarios the batched engine routed through
#: the reference loop (the whole set, for ``engine="reference"``).
RawOutcome = Tuple[List[float], int, int, int, int]

def _check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise RuntimeModelError(
            f"unknown engine {engine!r}; {choices_line()}"
        )
    return engine


@dataclass
class EvaluationOutcome:
    """Aggregated simulation results of one plan on one scenario set."""

    mean_utility: float
    utilities: List[float] = field(repr=False, default_factory=list)
    deadline_misses: int = 0
    mean_switches: float = 0.0
    mean_faults: float = 0.0
    fallbacks: int = 0

    @property
    def ok(self) -> bool:
        """True when no simulated cycle missed a hard deadline."""
        return self.deadline_misses == 0

    @property
    def n_scenarios(self) -> int:
        return len(self.utilities)

    @property
    def fast_path_share(self) -> float:
        """Fraction of scenarios resolved without the reference loop.

        1.0 for a fully vectorized batched run, 0.0 for the reference
        engine; drops in between flag fast-path coverage regressions.
        """
        if not self.utilities:
            return 0.0
        return 1.0 - self.fallbacks / len(self.utilities)

    @classmethod
    def aggregate(
        cls,
        utilities: Sequence[float],
        deadline_misses: int,
        total_switches: int,
        total_faults: int,
        fallbacks: int = 0,
    ) -> "EvaluationOutcome":
        """Aggregate per-scenario results into one outcome.

        Raises :class:`RuntimeModelError` on an empty scenario set —
        the per-scenario means are undefined, and silently returning
        zeros would poison every normalization downstream.
        """
        count = len(utilities)
        if count == 0:
            raise RuntimeModelError(
                "cannot aggregate an empty scenario set; every fault "
                "count needs at least one scenario"
            )
        return cls(
            mean_utility=float(np.mean(utilities)),
            utilities=list(utilities),
            deadline_misses=deadline_misses,
            mean_switches=total_switches / count,
            mean_faults=total_faults / count,
            fallbacks=fallbacks,
        )


class MonteCarloEvaluator:
    """Paired Monte-Carlo comparison of scheduling approaches.

    Parameters
    ----------
    app:
        The application under evaluation.
    n_scenarios:
        Scenarios per fault count (the paper uses 20,000; smaller
        values keep the benches fast and the flag
        ``--full-scale`` restores the paper's number).
    fault_counts:
        Which fault counts to evaluate (default 0..k); must be
        non-empty.
    seed:
        Seed of the scenario sampler.
    execution:
        An :class:`~repro.execution.ExecutionConfig` or spec string
        (``"reference"``, ``"kernel@threads:8"``,
        ``"batched@processes:4"``) routing engine and parallelism;
        defaults to the inline reference engine.  Results are
        identical for every config, only speed differs.
    engine, jobs:
        Deprecated aliases (``engine=E, jobs=N`` ≡
        ``execution=f"{E}@processes:{N}"``, inline for ``N == 1``);
        they emit a :class:`DeprecationWarning` and cannot be combined
        with ``execution=``.
    resources:
        An optional :class:`repro.pipeline.resources.ResourceManager`.
        When set, sharded evaluation borrows the manager's shared
        worker pool (one spawn for the whole experiment run) instead
        of spawning a pool per evaluator; :meth:`close` then releases
        only this evaluator's shared-memory segments.
    """

    #: The historical default routing (the oracle loop, inline).
    DEFAULT_EXECUTION = ExecutionConfig(engine="reference")

    def __init__(
        self,
        app: Application,
        n_scenarios: int = 200,
        fault_counts: Optional[Sequence[int]] = None,
        seed: int = 1,
        execution: Union[None, str, ExecutionConfig] = None,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
        resources=None,
    ):
        if n_scenarios < 1:
            raise RuntimeModelError("need at least one scenario")
        self.app = app
        self.n_scenarios = int(n_scenarios)
        self.seed = seed
        self.execution = resolve_execution(
            execution,
            engine,
            jobs,
            base=self.DEFAULT_EXECUTION,
            owner="MonteCarloEvaluator",
        )
        # Read-only legacy mirrors of the resolved routing.
        self.engine = self.execution.engine
        self.jobs = self.execution.workers
        self.resources = resources
        self.fault_counts = (
            list(fault_counts)
            if fault_counts is not None
            else list(range(app.k + 1))
        )
        if not self.fault_counts:
            raise RuntimeModelError(
                "need at least one fault count to evaluate"
            )
        # Couple the fault-count axes: the i-th scenario of every fault
        # count shares the same execution-time draws, differing only in
        # the fault pattern.  Cross-fault-count comparisons ("utility
        # drops by x% under one fault") are then paired rather than
        # independent, which removes most of the sampling noise.
        from repro.faults.scenarios import sample_scenario

        sampler = ScenarioSampler(app, seed=seed)
        max_attempts = max(self.fault_counts, default=0) + 1
        names = [p.name for p in app.processes]
        duration_sets = [
            {
                name: tuple(values)
                for name, values in sampler.sample_durations(
                    max_attempts
                ).items()
            }
            for _ in range(n_scenarios)
        ]
        self.scenarios: Dict[int, List[ExecutionScenario]] = {}
        for f in self.fault_counts:
            patterns = [
                sample_scenario(names, f, sampler.rng)
                for _ in range(n_scenarios)
            ]
            self.scenarios[f] = [
                ExecutionScenario(durations, pattern)
                for durations, pattern in zip(duration_sets, patterns)
            ]
        self._batches: Dict[int, ScenarioBatch] = {}
        # Persistent sharded executors, one per ExecutionConfig: the
        # worker pool / thread pool and shared-memory scenario
        # segments survive across evaluate()/compare() calls (see
        # ParallelEvaluator and ThreadedEvaluator).
        self._executors: Dict[ExecutionConfig, object] = {}

    # ------------------------------------------------------------------
    # Simulation primitives (shared by in-process and sharded paths)
    # ------------------------------------------------------------------
    def _batch_for(self, faults: int) -> ScenarioBatch:
        """The packed form of one scenario set (cached per fault count)."""
        batch = self._batches.get(faults)
        if batch is None:
            batch = ScenarioBatch.from_scenarios(
                self.app, self.scenarios[faults]
            )
            self._batches[faults] = batch
        return batch

    @staticmethod
    def _reference_raw(
        scheduler: OnlineScheduler, scenarios: Sequence[ExecutionScenario]
    ) -> RawOutcome:
        utilities: List[float] = []
        misses = 0
        switches = 0
        observed = 0
        for scenario in scenarios:
            result = scheduler.run(scenario)
            utilities.append(result.utility)
            if not result.met_all_hard_deadlines:
                misses += 1
            switches += len(result.switches)
            observed += result.faults_observed
        return utilities, misses, switches, observed, len(utilities)

    @staticmethod
    def _batched_raw(
        simulator: BatchSimulator, batch: ScenarioBatch
    ) -> RawOutcome:
        result = simulator.run_batch(batch)
        return (
            [float(u) for u in result.utilities],
            int(result.deadline_miss.sum()),
            int(result.switch_counts.sum()),
            int(result.faults_observed.sum()),
            result.n_fallback,
        )

    def simulate_raw(
        self,
        plan: Plan,
        scenarios: Sequence[ExecutionScenario],
        engine: Optional[str] = None,
    ) -> RawOutcome:
        """Simulate an explicit scenario list; returns raw counts.

        The building block :class:`ParallelEvaluator` workers call on
        their shard slices.
        """
        engine = self.engine if engine is None else _check_engine(engine)
        if engine in ("batched", "kernel"):
            return self._batched_raw(
                self._simulator_for(engine, plan),
                ScenarioBatch.from_scenarios(self.app, scenarios),
            )
        return self._reference_raw(
            OnlineScheduler(self.app, plan, record_events=False), scenarios
        )

    def _simulator_for(self, engine: str, plan: Plan) -> BatchSimulator:
        """The array-engine simulator for ``engine`` (``run_batch`` duck
        type; the kernel simulator degrades to batched on its own)."""
        if engine == "kernel":
            from repro.runtime.engine.kernel import KernelSimulator

            return KernelSimulator(self.app, plan)
        return BatchSimulator(self.app, plan)

    # ------------------------------------------------------------------
    # Public evaluation API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        plan: Plan,
        execution: Union[None, str, ExecutionConfig] = None,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
    ) -> Dict[int, EvaluationOutcome]:
        """Run all scenario sets against ``plan``.

        Returns one :class:`EvaluationOutcome` per fault count.
        ``execution`` overrides the evaluator-wide routing for this
        call (the benches use this to time several engines on the same
        scenario sets); the deprecated ``engine``/``jobs`` keywords
        override their respective halves of it.
        """
        config = resolve_execution(
            execution,
            engine,
            jobs,
            base=self.execution,
            owner="MonteCarloEvaluator.evaluate",
        )
        if config.workers > 1 and config.mode != "inline":
            if config.mode == "processes" and config.engine == "kernel":
                # Warm the on-disk artifact cache parent-side so every
                # worker loads the same prebuilt object instead of
                # racing to compile it.  (The threaded executor builds
                # its shard simulators in-process itself.)
                self._simulator_for(config.engine, plan)
            return self.executor(config).evaluate(plan)
        engine = config.engine
        outcomes: Dict[int, EvaluationOutcome] = {}
        if engine in ("batched", "kernel"):
            simulator = self._simulator_for(engine, plan)
            for faults in self.fault_counts:
                raw = self._batched_raw(simulator, self._batch_for(faults))
                outcomes[faults] = EvaluationOutcome.aggregate(*raw)
        else:
            scheduler = OnlineScheduler(self.app, plan, record_events=False)
            for faults in self.fault_counts:
                raw = self._reference_raw(scheduler, self.scenarios[faults])
                outcomes[faults] = EvaluationOutcome.aggregate(*raw)
        return outcomes

    def compare(
        self, plans: Mapping[str, Plan]
    ) -> Dict[str, Dict[int, EvaluationOutcome]]:
        """Evaluate several named plans on the same scenario sets.

        With ``jobs > 1`` every plan reuses one persistent worker pool
        and one set of shared-memory scenario segments.
        """
        return {name: self.evaluate(plan) for name, plan in plans.items()}

    # ------------------------------------------------------------------
    # Executor lifecycle
    # ------------------------------------------------------------------
    def executor(self, execution: Union[str, ExecutionConfig]):
        """The persistent sharded executor for one
        :class:`~repro.execution.ExecutionConfig` (or spec string).

        ``mode="threads"`` configs get a
        :class:`~repro.runtime.engine.threads.ThreadedEvaluator`, every
        other config a
        :class:`~repro.runtime.engine.parallel.ParallelEvaluator`;
        each config's executor (its worker/thread pool and scenario
        segments) is cached for the evaluator's lifetime.
        """
        config = ExecutionConfig.coerce(execution)
        executor = self._executors.get(config)
        if executor is None:
            if config.mode == "threads":
                from repro.runtime.engine.threads import ThreadedEvaluator

                executor = ThreadedEvaluator(self, config)
            else:
                from repro.runtime.engine.parallel import ParallelEvaluator

                pool = None
                if self.resources is not None and config.workers > 1:
                    pool = self.resources.evaluation_pool(config.workers)
                executor = ParallelEvaluator(
                    self.app,
                    n_scenarios=self.n_scenarios,
                    fault_counts=self.fault_counts,
                    seed=self.seed,
                    execution=config,
                    source=self,
                    pool=pool,
                )
            self._executors[config] = executor
        return executor

    def parallel(self, engine: str, jobs: int) -> "ParallelEvaluator":
        """Deprecated: the process-sharding executor for (engine, jobs).

        Alias for ``executor(f"{engine}@processes:{jobs}")``.
        """
        import warnings

        warnings.warn(
            "MonteCarloEvaluator.parallel(engine, jobs) is deprecated; "
            "use executor('ENGINE@processes:N') / "
            "executor(ExecutionConfig(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.executor(
            ExecutionConfig(
                engine=engine, mode="processes", workers=int(jobs)
            )
        )

    def close(self) -> None:
        """Release any worker/thread pools and shared-memory segments."""
        for executor in self._executors.values():
            executor.close()
        self._executors.clear()

    def __enter__(self) -> "MonteCarloEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def normalized_to(
    results: Mapping[str, Mapping[int, EvaluationOutcome]],
    reference: str,
    reference_faults: int = 0,
) -> Dict[str, Dict[int, float]]:
    """Mean utilities normalized to one approach/fault-count cell (%).

    The paper's Fig. 9 normalizes everything to FTQS with no faults;
    Table 1 normalizes to FTSS.  Returns percentages.
    """
    if reference not in results:
        raise RuntimeModelError(f"unknown reference approach {reference!r}")
    if reference_faults not in results[reference]:
        raise RuntimeModelError(
            f"reference approach {reference!r} has no outcome for "
            f"{reference_faults} faults"
        )
    base = results[reference][reference_faults].mean_utility
    if base <= 0:
        raise RuntimeModelError(
            "reference mean utility is non-positive; cannot normalize"
        )
    return {
        name: {
            faults: 100.0 * outcome.mean_utility / base
            for faults, outcome in per_fault.items()
        }
        for name, per_fault in results.items()
    }
