"""Experiment drivers for Fig. 9a and Fig. 9b (paper §6).

Fig. 9a compares the overall utility of FTSF, FTSS and FTQS in the
no-fault scenario, across application sizes 10..50; Fig. 9b shows how
FTQS degrades with 1/2/3 faults and that it stays above the static
alternatives even at 3 faults.  Both normalize utilities to FTQS
(no faults = 100%) per application before averaging.

The paper's full scale — 50 applications per size and 20,000 scenarios
per fault count — takes hours in the pure-Python reference loop;
:class:`Fig9Config` scales it down by default and the benches/CLI
expose flags to restore the full numbers (shapes are stable well below
full scale).  The batched engine (``execution="batched"``, the
default) cuts the simulation share of that time by about an order of
magnitude with bit-identical results, and a sharded spec
(``"kernel@threads:8"``, ``"batched@processes:4"``) cuts it further.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.evaluation.metrics import NormalizedTable, format_table
from repro.evaluation.montecarlo import normalized_to
from repro.pipeline.runner import ExperimentRunner
from repro.quasistatic.ftqs import FTQSConfig
from repro.scheduling.ftsf import ftsf
from repro.workloads.suite import WorkloadSpec

import numpy as np


@dataclass(frozen=True)
class Fig9Config:
    """Scale knobs of the Fig. 9 experiments."""

    sizes: Tuple[int, ...] = (10, 15, 20, 25, 30, 35, 40, 45, 50)
    apps_per_size: int = 5
    n_scenarios: int = 100
    max_schedules: int = 8
    k: int = 3
    mu: int = 15
    seed: int = 2008
    execution: str = "batched"

    @classmethod
    def paper_scale(cls) -> "Fig9Config":
        """The paper's full §6 parameters (expensive)."""
        return cls(apps_per_size=50, n_scenarios=20000, max_schedules=16)


@dataclass
class Fig9Row:
    """One plotted point: size × approach × fault count → mean %."""

    size: int
    approach: str
    faults: int
    utility_percent: float
    n_apps: int


class Fig9Runner(ExperimentRunner):
    """Fig. 9 as a pipeline spec: an application-size grid, three
    approaches per application.

    For each application: build FTSS (static), FTSF (baseline) and the
    FTQS tree, replay identical scenario sets for each fault count
    against all three, and normalize mean utilities to FTQS/no-faults.
    One evaluator serves all three plans of an application, its
    scenario segments released before the next application; with
    process sharding the worker processes are the run-wide pool of the
    :class:`~repro.pipeline.resources.ResourceManager`.
    """

    def __init__(
        self,
        config: Fig9Config = Fig9Config(),
        faults_for_statics: Tuple[int, ...] = (0, 3),
        **kwargs,
    ):
        super().__init__(execution=config.execution, **kwargs)
        self.config = config
        self.faults_for_statics = faults_for_statics

    def _run(self) -> List[Fig9Row]:
        config = self.config
        rng = np.random.default_rng(config.seed)
        tables: Dict[int, NormalizedTable] = {
            s: NormalizedTable() for s in config.sizes
        }
        counts: Dict[int, int] = {s: 0 for s in config.sizes}

        for size in config.sizes:
            spec = WorkloadSpec(
                n_processes=size, k=config.k, mu=config.mu
            )
            produced = 0
            for app, root in (
                self.candidates(
                    spec, rng, max_attempts=config.apps_per_size * 4
                )
                if config.apps_per_size > 0
                else ()
            ):
                baseline = ftsf(app)
                if baseline is None:
                    continue
                tree = self.synthesize(
                    app, root, FTQSConfig(max_schedules=config.max_schedules)
                )
                with self.evaluator(
                    app,
                    n_scenarios=config.n_scenarios,
                    fault_counts=list(range(config.k + 1)),
                    seed=config.seed + produced,
                ) as evaluator:
                    results = evaluator.compare(
                        {"FTQS": tree, "FTSS": root, "FTSF": baseline}
                    )
                percents = normalized_to(
                    results, "FTQS", reference_faults=0
                )
                for approach, per_fault in percents.items():
                    for faults, percent in per_fault.items():
                        if (
                            approach != "FTQS"
                            and faults not in self.faults_for_statics
                        ):
                            continue
                        tables[size].add(approach, faults, percent)
                produced += 1
                if produced >= config.apps_per_size:
                    break
            counts[size] = produced

        return self._rows(tables, counts)

    def _rows(self, tables, counts) -> List[Fig9Row]:
        config = self.config
        rows: List[Fig9Row] = []
        for size in config.sizes:
            table = tables[size]
            for approach in table.approaches():
                for faults in table.fault_counts():
                    stats = table.cell(approach, faults)
                    if stats.count == 0:
                        continue
                    rows.append(
                        Fig9Row(
                            size=size,
                            approach=approach,
                            faults=faults,
                            utility_percent=stats.mean,
                            n_apps=counts[size],
                        )
                    )
        return rows


def run_fig9(
    config: Fig9Config = Fig9Config(),
    faults_for_statics: Tuple[int, ...] = (0, 3),
    *,
    synthesis: str = "fast",
    synthesis_jobs: int = 1,
    stats=None,
    resources=None,
    store=None,
    checkpoint=None,
) -> List[Fig9Row]:
    """Run the Fig. 9 experiment; returns all (size, approach, faults)
    points for both panels.

    A thin wrapper over :class:`Fig9Runner`; ``resources``/``store``/
    ``checkpoint`` are the pipeline's shared worker pools, tree cache
    and resume journal (see :mod:`repro.pipeline`).
    """
    return Fig9Runner(
        config,
        faults_for_statics,
        synthesis=synthesis,
        synthesis_jobs=synthesis_jobs,
        stats=stats,
        resources=resources,
        store=store,
        checkpoint=checkpoint,
    ).run()


def fig9a_rows(rows: List[Fig9Row]) -> List[Fig9Row]:
    """Panel (a): the no-fault series of all three approaches."""
    return [r for r in rows if r.faults == 0]


def fig9b_rows(rows: List[Fig9Row]) -> List[Fig9Row]:
    """Panel (b): FTQS at 0..3 faults, statics at 3 faults."""
    return [
        r
        for r in rows
        if r.approach == "FTQS" or r.faults > 0
    ]


def format_fig9(rows: List[Fig9Row], panel: str) -> str:
    """Render a panel as the paper's series (one column per size)."""
    selected = fig9a_rows(rows) if panel == "a" else fig9b_rows(rows)
    sizes = sorted({r.size for r in selected})
    series = sorted({(r.approach, r.faults) for r in selected})
    headers = ["series"] + [str(s) for s in sizes]
    body = []
    for approach, faults in series:
        label = f"{approach} ({faults} faults)"
        row: List[object] = [label]
        for size in sizes:
            match = [
                r.utility_percent
                for r in selected
                if r.size == size and r.approach == approach and r.faults == faults
            ]
            row.append(match[0] if match else float("nan"))
        body.append(row)
    title = (
        "Fig. 9a — utility normalized to FTQS (no faults), %"
        if panel == "a"
        else "Fig. 9b — utility normalized to FTQS (no faults), %, fault scenarios"
    )
    return format_table(headers, body, title=title)
