"""Extension experiments: parameter sweeps the paper holds fixed.

The paper fixes the hard/soft mix at 50/50 (Table 1) and the fault
budget at k = 3 (Fig. 9) / k = 2 (CC).  Two sweeps characterize how
the FTQS-over-FTSS advantage moves with those choices:

* :func:`run_soft_ratio_sweep` — from almost-all-hard (nothing to
  adapt, the tree degenerates) to all-soft (everything is adaptable);
* :func:`run_fault_budget_sweep` — k = 0 (no recovery slack; FTQS
  reduces to the quasi-static scheduling of Cortes et al. [3]) up to
  k = 4 (recovery slack dominates the schedule).

Both report, per sweep point: the FTQS utility normalized to FTSS on
paired scenarios, the fraction of soft processes the root schedule had
to drop, and the tree construction time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.evaluation.metrics import format_table
from repro.pipeline.runner import ExperimentRunner
from repro.quasistatic.ftqs import FTQSConfig
from repro.workloads.suite import WorkloadSpec


@dataclass(frozen=True)
class SweepConfig:
    """Shared knobs of both sweeps."""

    n_apps: int = 4
    n_processes: int = 20
    n_scenarios: int = 100
    max_schedules: int = 8
    mu: int = 15
    seed: int = 2008
    period_pressure: Tuple[float, float] = (0.75, 0.95)
    execution: str = "batched"


@dataclass
class SweepRow:
    """One sweep point, averaged over the applications."""

    parameter: float
    ftqs_vs_ftss_percent: float
    dropped_fraction: float
    build_seconds: float
    n_apps: int


class SweepRunner(ExperimentRunner):
    """Both parameter sweeps as one pipeline spec.

    The grid is a list of ``(parameter value, WorkloadSpec)`` points;
    every point runs the same generate → synthesize → compare loop on
    a shared RNG.  Repeated sweep points over identical synthesis
    inputs reload from the tree store when one is attached.
    """

    def __init__(
        self,
        points: List[Tuple[float, WorkloadSpec]],
        config: SweepConfig = SweepConfig(),
        **kwargs,
    ):
        super().__init__(execution=config.execution, **kwargs)
        self.points = points
        self.config = config

    def _evaluate_point(
        self, spec: WorkloadSpec, rng: np.random.Generator
    ) -> SweepRow:
        config = self.config
        gains: List[float] = []
        dropped: List[float] = []
        build: List[float] = []
        produced = 0
        for app, root in (
            self.candidates(spec, rng, max_attempts=4 * config.n_apps)
            if config.n_apps > 0
            else ()
        ):
            start = time.perf_counter()
            tree = self.synthesize(
                app, root, FTQSConfig(max_schedules=config.max_schedules)
            )
            build.append(time.perf_counter() - start)
            fault_counts = [0] if app.k == 0 else [0, min(1, app.k)]
            with self.evaluator(
                app,
                n_scenarios=config.n_scenarios,
                fault_counts=fault_counts,
                seed=config.seed + produced,
            ) as evaluator:
                results = evaluator.compare({"tree": tree, "root": root})
            base = results["root"][0].mean_utility
            if base > 0:
                gains.append(
                    100.0 * results["tree"][0].mean_utility / base
                )
            n_soft = len(app.soft)
            if n_soft:
                dropped.append(len(root.dropped) / n_soft)
            else:
                dropped.append(0.0)
            produced += 1
            if produced >= config.n_apps:
                break
        return SweepRow(
            parameter=0.0,  # filled per point below
            ftqs_vs_ftss_percent=(
                float(np.mean(gains)) if gains else float("nan")
            ),
            dropped_fraction=float(np.mean(dropped)) if dropped else 0.0,
            build_seconds=float(np.mean(build)) if build else 0.0,
            n_apps=produced,
        )

    def _run(self) -> List[SweepRow]:
        rng = np.random.default_rng(self.config.seed)
        rows: List[SweepRow] = []
        for parameter, spec in self.points:
            row = self._evaluate_point(spec, rng)
            row.parameter = parameter
            rows.append(row)
        return rows


def _run_sweep(
    points: List[Tuple[float, WorkloadSpec]],
    config: SweepConfig,
    synthesis: str,
    synthesis_jobs: int,
    stats,
    resources,
    store,
    checkpoint=None,
) -> List[SweepRow]:
    return SweepRunner(
        points,
        config,
        synthesis=synthesis,
        synthesis_jobs=synthesis_jobs,
        stats=stats,
        resources=resources,
        store=store,
        checkpoint=checkpoint,
    ).run()


def run_soft_ratio_sweep(
    ratios: Tuple[float, ...] = (0.2, 0.35, 0.5, 0.65, 0.8),
    config: SweepConfig = SweepConfig(),
    k: int = 3,
    *,
    synthesis: str = "fast",
    synthesis_jobs: int = 1,
    stats=None,
    resources=None,
    store=None,
    checkpoint=None,
) -> List[SweepRow]:
    """Sweep the soft-process fraction at fixed k."""
    points = [
        (
            ratio,
            WorkloadSpec(
                n_processes=config.n_processes,
                soft_ratio=ratio,
                k=k,
                mu=config.mu,
                period_pressure_range=config.period_pressure,
            ),
        )
        for ratio in ratios
    ]
    return _run_sweep(
        points,
        config,
        synthesis,
        synthesis_jobs,
        stats,
        resources,
        store,
        checkpoint,
    )


def run_fault_budget_sweep(
    budgets: Tuple[int, ...] = (0, 1, 2, 3, 4),
    config: SweepConfig = SweepConfig(),
    soft_ratio: float = 0.5,
    *,
    synthesis: str = "fast",
    synthesis_jobs: int = 1,
    stats=None,
    resources=None,
    store=None,
    checkpoint=None,
) -> List[SweepRow]:
    """Sweep the fault budget k at a fixed hard/soft mix."""
    points = [
        (
            float(k),
            WorkloadSpec(
                n_processes=config.n_processes,
                soft_ratio=soft_ratio,
                k=k,
                mu=config.mu,
                period_pressure_range=config.period_pressure,
            ),
        )
        for k in budgets
    ]
    return _run_sweep(
        points,
        config,
        synthesis,
        synthesis_jobs,
        stats,
        resources,
        store,
        checkpoint,
    )


def format_sweep(rows: List[SweepRow], parameter_name: str) -> str:
    headers = [
        parameter_name,
        "FTQS vs FTSS (%)",
        "root dropped (%)",
        "build (s)",
        "apps",
    ]
    body = [
        [
            row.parameter,
            row.ftqs_vs_ftss_percent,
            100.0 * row.dropped_fraction,
            round(row.build_seconds, 2),
            row.n_apps,
        ]
        for row in rows
    ]
    return format_table(
        headers, body, title=f"Sweep over {parameter_name}"
    )
