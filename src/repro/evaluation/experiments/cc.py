"""Experiment driver for the cruise-controller case study (paper §6).

The paper reports, for the 32-process CC application with k = 2 and
µ = 10% of each WCET: FTQS needs 39 schedules for a 14% no-fault
improvement over FTSS and an 81% improvement over FTSF, and its
utility drops by only 4% under one fault and 9% under two faults.

We reconstruct the CC graph (see :mod:`repro.workloads.cruise`) and
report the same quantities on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import UnschedulableError
from repro.evaluation.metrics import format_table
from repro.evaluation.montecarlo import normalized_to
from repro.pipeline.runner import ExperimentRunner
from repro.quasistatic.ftqs import FTQSConfig
from repro.scheduling.ftsf import ftsf
from repro.scheduling.ftss import ftss
from repro.workloads.cruise import cruise_controller


@dataclass(frozen=True)
class CCConfig:
    """Scale knobs of the cruise-controller experiment."""

    max_schedules: int = 39
    n_scenarios: int = 300
    seed: int = 2008
    execution: str = "batched"

    @classmethod
    def paper_scale(cls) -> "CCConfig":
        return cls(n_scenarios=20000)


@dataclass
class CCReport:
    """Measured quantities mirroring the paper's CC paragraph."""

    tree_nodes: int
    distinct_schedules: int
    ftqs_vs_ftss_percent: float     # no-fault improvement over FTSS
    ftqs_vs_ftsf_percent: float     # no-fault improvement over FTSF
    degradation_1_fault_percent: float
    degradation_2_faults_percent: float
    mean_utility: Dict[str, Dict[int, float]]

    def format(self) -> str:
        headers = ["approach", "0 faults", "1 fault", "2 faults"]
        body = []
        for approach in ("FTQS", "FTSS", "FTSF"):
            per_fault = self.mean_utility[approach]
            body.append(
                [approach]
                + [per_fault.get(f, float("nan")) for f in (0, 1, 2)]
            )
        table = format_table(
            headers,
            body,
            title="Cruise controller — utility normalized to FTQS "
            "(no faults), %",
        )
        return (
            f"{table}\n"
            f"tree: {self.tree_nodes} nodes / "
            f"{self.distinct_schedules} distinct schedules\n"
            f"FTQS vs FTSS (no faults): +{self.ftqs_vs_ftss_percent:.1f}%\n"
            f"FTQS vs FTSF (no faults): +{self.ftqs_vs_ftsf_percent:.1f}%\n"
            f"FTQS degradation: {self.degradation_1_fault_percent:.1f}% @1 "
            f"fault, {self.degradation_2_faults_percent:.1f}% @2 faults"
        )


class CCRunner(ExperimentRunner):
    """The cruise-controller case study as a pipeline spec: a fixed
    application instead of a workload grid, three approaches, one
    paired evaluation."""

    def __init__(self, config: CCConfig = CCConfig(), **kwargs):
        super().__init__(execution=config.execution, **kwargs)
        self.config = config

    def _run(self) -> CCReport:
        config = self.config
        app = cruise_controller()
        root = ftss(app)
        if root is None:
            raise UnschedulableError("cruise controller is not schedulable")
        baseline = ftsf(app)
        if baseline is None:
            raise UnschedulableError("FTSF failed on the cruise controller")
        tree = self.synthesize(
            app, root, FTQSConfig(max_schedules=config.max_schedules)
        )

        with self.evaluator(
            app,
            n_scenarios=config.n_scenarios,
            fault_counts=[0, 1, 2],
            seed=config.seed,
        ) as evaluator:
            results = evaluator.compare(
                {"FTQS": tree, "FTSS": root, "FTSF": baseline}
            )
        percents = normalized_to(results, "FTQS", reference_faults=0)

        ftqs0 = results["FTQS"][0].mean_utility
        ftss0 = results["FTSS"][0].mean_utility
        ftsf0 = results["FTSF"][0].mean_utility
        return CCReport(
            tree_nodes=len(tree),
            distinct_schedules=tree.different_schedules(),
            ftqs_vs_ftss_percent=100.0 * (ftqs0 - ftss0) / ftss0,
            ftqs_vs_ftsf_percent=100.0 * (ftqs0 - ftsf0) / ftsf0,
            degradation_1_fault_percent=100.0 - percents["FTQS"][1],
            degradation_2_faults_percent=100.0 - percents["FTQS"][2],
            mean_utility=percents,
        )


def run_cc(
    config: CCConfig = CCConfig(),
    *,
    synthesis: str = "fast",
    synthesis_jobs: int = 1,
    stats=None,
    resources=None,
    store=None,
    checkpoint=None,
) -> CCReport:
    """Run the CC case study and return the measured report.

    A thin wrapper over :class:`CCRunner`; ``resources``/``store``/
    ``checkpoint`` are the pipeline's shared worker pools, tree cache
    and resume journal (see :mod:`repro.pipeline`).
    """
    return CCRunner(
        config,
        synthesis=synthesis,
        synthesis_jobs=synthesis_jobs,
        stats=stats,
        resources=resources,
        store=store,
        checkpoint=checkpoint,
    ).run()
