"""Ablation experiments for the design choices of FTSS/FTQS.

DESIGN.md calls out four design choices the paper's heuristics make;
each ablation disables one of them and measures the utility impact on
a shared application suite (paired scenarios, like every other
experiment):

* ``no-dropping``   — FTSS without the S'/S'' dropping heuristic
  (drops only when forced by schedulability);
* ``private-slack`` — recovery slack reserved per process instead of
  shared (paper §3's sharing is the fault-tolerance enabler);
* ``no-intervals``  — FTQS switching on the naive "whenever safe"
  rule instead of interval partitioning;
* ``wcet-opt``      — FTSS optimizing utility at worst-case instead of
  average-case execution times (the Fig. 4 argument).

A fifth row measures the fully-online re-planning straw man of §1 —
its utility *and* its scheduling overhead per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.evaluation.metrics import NormalizedTable, format_table
from repro.pipeline.runner import ExperimentRunner
from repro.quasistatic.ftqs import FTQSConfig
from repro.runtime.replanner import run_replanning
from repro.scheduling.ftss import FTSSConfig, ftss
from repro.workloads.suite import WorkloadSpec


@dataclass(frozen=True)
class AblationConfig:
    """Scale knobs of the ablation experiments."""

    n_apps: int = 5
    n_processes: int = 30
    n_scenarios: int = 100
    max_schedules: int = 8
    k: int = 3
    mu: int = 15
    seed: int = 2008
    include_replanner: bool = True
    replanner_scenarios: int = 10
    execution: str = "batched"


#: Configurations attempted per application; used to report how often
#: each one failed to produce any schedule at all (private slack
#: typically cannot schedule a loaded application — slack *sharing* is
#: what makes the fault tolerance affordable, paper §3).
ABLATED_FTSS_CONFIGS = {
    "no-dropping": FTSSConfig(drop_heuristic=False),
    "private-slack": FTSSConfig(slack_sharing=False),
    "wcet-opt": FTSSConfig(optimize_for="wcet"),
}


@dataclass
class AblationRow:
    """Utility (and optional overhead) of one configuration."""

    name: str
    utility_percent: Dict[int, float]  # fault count -> mean % vs default
    overhead_ms: Optional[float] = None  # scheduling time per cycle
    schedulable_fraction: float = 1.0  # apps this config could schedule


class AblationRunner(ExperimentRunner):
    """The ablation battery as a pipeline spec: one workload point,
    many plans per application (ablated FTSS variants + FTQS ablation
    configs), normalized to the default FTSS.

    Every FTQS variant goes through :meth:`synthesize`, so with a tree
    store attached each (application, ablation config) pair caches
    independently — the config is part of the content address.
    """

    def __init__(self, config: AblationConfig = AblationConfig(), **kwargs):
        super().__init__(execution=config.execution, **kwargs)
        self.config = config

    def _build_plans(self, app, root):
        """All ablated plans for one application (None entries
        skipped)."""
        config = self.config
        plans = {}
        for name, ftss_config in ABLATED_FTSS_CONFIGS.items():
            plan = ftss(app, config=ftss_config)
            if plan is not None:
                plans[name] = plan
        plans["no-intervals"] = self.synthesize(
            app,
            root,
            FTQSConfig(
                max_schedules=config.max_schedules,
                use_interval_partitioning=False,
            ),
        )
        plans["no-fault-children"] = self.synthesize(
            app,
            root,
            FTQSConfig(
                max_schedules=config.max_schedules,
                fault_children=False,
            ),
        )
        plans["ftqs-default"] = self.synthesize(
            app, root, FTQSConfig(max_schedules=config.max_schedules)
        )
        plans["ftss-default"] = root
        return plans

    def _run(self) -> List[AblationRow]:
        config = self.config
        rng = np.random.default_rng(config.seed)
        spec = WorkloadSpec(
            n_processes=config.n_processes, k=config.k, mu=config.mu
        )
        table = NormalizedTable()
        overhead: Dict[str, List[float]] = {}
        scheduled_counts: Dict[str, int] = {}

        produced = 0
        for app, root in (
            self.candidates(spec, rng, max_attempts=4 * config.n_apps)
            if config.n_apps > 0
            else ()
        ):
            plans = self._build_plans(app, root)
            for name in ABLATED_FTSS_CONFIGS:
                scheduled_counts.setdefault(name, 0)
                if name in plans:
                    scheduled_counts[name] += 1
            with self.evaluator(
                app,
                n_scenarios=config.n_scenarios,
                fault_counts=list(range(config.k + 1)),
                seed=config.seed + produced,
            ) as evaluator:
                results = evaluator.compare(plans)
                base = results["ftss-default"]
                for name, outcome in results.items():
                    for faults in range(config.k + 1):
                        denom = base[faults].mean_utility
                        if denom <= 0:
                            continue
                        table.add(
                            name,
                            faults,
                            100.0 * outcome[faults].mean_utility / denom,
                        )
                if config.include_replanner:
                    utils = []
                    seconds = []
                    for scenario in evaluator.scenarios[0][
                        : config.replanner_scenarios
                    ]:
                        outcome = run_replanning(app, scenario)
                        utils.append(outcome.result.utility)
                        seconds.append(outcome.scheduling_seconds)
                    denom = base[0].mean_utility
                    if denom > 0 and utils:
                        table.add(
                            "online-replan",
                            0,
                            100.0 * float(np.mean(utils)) / denom,
                        )
                        overhead.setdefault("online-replan", []).append(
                            1000.0 * float(np.mean(seconds))
                        )
            produced += 1
            if produced >= config.n_apps:
                break

        rows: List[AblationRow] = []
        row_names = set(table.approaches()) | set(scheduled_counts)
        for name in sorted(row_names):
            per_fault = {
                f: table.cell(name, f).mean
                for f in table.fault_counts()
                if table.cell(name, f).count > 0
            }
            mean_overhead = None
            if name in overhead:
                mean_overhead = float(np.mean(overhead[name]))
            fraction = 1.0
            if name in scheduled_counts and produced > 0:
                fraction = scheduled_counts[name] / produced
            rows.append(
                AblationRow(
                    name=name,
                    utility_percent=per_fault,
                    overhead_ms=mean_overhead,
                    schedulable_fraction=fraction,
                )
            )
        return rows


def run_ablations(
    config: AblationConfig = AblationConfig(),
    *,
    synthesis: str = "fast",
    synthesis_jobs: int = 1,
    stats=None,
    resources=None,
    store=None,
    checkpoint=None,
) -> List[AblationRow]:
    """Run all ablations; utilities are normalized to ``ftss-default``.

    The FTSS ablations answer "how much does this FTSS design choice
    contribute to the static schedule's utility"; the FTQS rows answer
    the same for the tree construction.  A thin wrapper over
    :class:`AblationRunner`; ``resources``/``store``/``checkpoint``
    are the pipeline's shared worker pools, tree cache and resume
    journal.
    """
    return AblationRunner(
        config,
        synthesis=synthesis,
        synthesis_jobs=synthesis_jobs,
        stats=stats,
        resources=resources,
        store=store,
        checkpoint=checkpoint,
    ).run()


def format_ablations(rows: List[AblationRow]) -> str:
    fault_counts = sorted(
        {f for row in rows for f in row.utility_percent}
    )
    headers = (
        ["configuration"]
        + [f"{f} faults" for f in fault_counts]
        + ["sched ms/cycle", "schedulable"]
    )
    body: List[List[object]] = []
    for row in rows:
        cells: List[object] = [row.name]
        for f in fault_counts:
            cells.append(row.utility_percent.get(f, float("nan")))
        cells.append(
            "-" if row.overhead_ms is None else round(row.overhead_ms, 1)
        )
        cells.append(f"{100 * row.schedulable_fraction:.0f}%")
        body.append(cells)
    return format_table(
        headers,
        body,
        title="Ablations — utility normalized to default FTSS (%)",
    )
