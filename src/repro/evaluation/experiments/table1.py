"""Experiment driver for Table 1 (paper §6, third experiment set).

The paper fixes 50 applications with 30 processes each (half hard,
half soft) and sweeps the quasi-static tree size M over
{1, 2, 8, 13, 23, 34, 79, 89} nodes.  For each M it reports the mean
utility normalized to FTSS (the single f-schedule, M = 1) under 0, 1,
2 and 3 faults, plus the scheduler's construction run time.  The
paper's trend: utility rises quickly with the first handful of nodes
(+11% at 2, +21% at 8) and saturates around +26%, while run time grows
steeply with M.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.evaluation.metrics import NormalizedTable, format_table
from repro.pipeline.runner import ExperimentRunner
from repro.quasistatic.ftqs import FTQSConfig
from repro.workloads.suite import WorkloadSpec


@dataclass(frozen=True)
class Table1Config:
    """Scale knobs of the Table 1 experiment."""

    tree_sizes: Tuple[int, ...] = (1, 2, 8, 13, 23, 34, 79, 89)
    n_apps: int = 5
    n_processes: int = 30
    n_scenarios: int = 100
    k: int = 3
    mu: int = 15
    seed: int = 2008
    execution: str = "batched"

    @classmethod
    def paper_scale(cls) -> "Table1Config":
        return cls(n_apps=50, n_scenarios=20000)


@dataclass
class Table1Row:
    """One row of Table 1: tree size → normalized utilities + runtime."""

    nodes: int
    utility_percent: Dict[int, float]  # fault count -> mean %
    runtime_seconds: float
    n_apps: int


class Table1Runner(ExperimentRunner):
    """Table 1 as a pipeline spec: one workload point, an M sweep.

    The loop runs application-outer: each application's evaluator (and
    under process sharding its shared-memory scenario segments) is
    reused across the *whole* M sweep — baseline plus every tree size
    — and
    released deterministically before the next application starts.
    Worker processes themselves belong to the run's
    :class:`~repro.pipeline.resources.ResourceManager` and are spawned
    once for all applications.  Values are re-aggregated in the
    original (M, application) order, so the reported rows are
    unchanged.

    The construction-time column measures :meth:`synthesize` — the
    selected engine, or the tree-store load on a cache hit.
    """

    def __init__(self, config: Table1Config = Table1Config(), **kwargs):
        super().__init__(execution=config.execution, **kwargs)
        self.config = config

    def _run(self) -> List[Table1Row]:
        config = self.config
        rng = np.random.default_rng(config.seed)
        spec = WorkloadSpec(
            n_processes=config.n_processes,
            soft_ratio=0.5,
            k=config.k,
            mu=config.mu,
        )
        percents: Dict[int, List[Tuple[int, float]]] = {
            m: [] for m in config.tree_sizes
        }
        runtimes: Dict[int, float] = {m: 0.0 for m in config.tree_sizes}
        produced = 0
        for app, root in (
            self.candidates(spec, rng) if config.n_apps > 0 else ()
        ):
            with self.evaluator(
                app,
                n_scenarios=config.n_scenarios,
                fault_counts=list(range(config.k + 1)),
                seed=config.seed + produced,
            ) as evaluator:
                baseline = evaluator.evaluate(root)
                if baseline[0].mean_utility <= 0:
                    continue
                for m in config.tree_sizes:
                    start = time.perf_counter()
                    if m == 1:
                        plan = root
                    else:
                        plan = self.synthesize(
                            app, root, FTQSConfig(max_schedules=m)
                        )
                    runtimes[m] += time.perf_counter() - start
                    outcome = evaluator.evaluate(plan)
                    for faults in range(config.k + 1):
                        base = baseline[faults].mean_utility
                        if base <= 0:
                            continue
                        percents[m].append(
                            (
                                faults,
                                100.0
                                * outcome[faults].mean_utility
                                / base,
                            )
                        )
                produced += 1
            if produced >= config.n_apps:
                break

        rows: List[Table1Row] = []
        for m in config.tree_sizes:
            table = NormalizedTable()
            for faults, percent in percents[m]:
                table.add("FTQS", faults, percent)
            rows.append(
                Table1Row(
                    nodes=m,
                    utility_percent={
                        faults: table.cell("FTQS", faults).mean
                        for faults in range(config.k + 1)
                    },
                    runtime_seconds=runtimes[m] / max(1, produced),
                    n_apps=produced,
                )
            )
        return rows


def run_table1(
    config: Table1Config = Table1Config(),
    *,
    synthesis: str = "fast",
    synthesis_jobs: int = 1,
    stats=None,
    resources=None,
    store=None,
    checkpoint=None,
) -> List[Table1Row]:
    """Run the tree-size sweep; returns one row per M.

    A thin wrapper over :class:`Table1Runner`; ``resources``/``store``/
    ``checkpoint`` are the pipeline's shared worker pools, tree cache
    and resume journal (see :mod:`repro.pipeline`).
    """
    return Table1Runner(
        config,
        synthesis=synthesis,
        synthesis_jobs=synthesis_jobs,
        stats=stats,
        resources=resources,
        store=store,
        checkpoint=checkpoint,
    ).run()


def format_table1(rows: List[Table1Row]) -> str:
    """Render in the paper's Table 1 layout."""
    fault_counts = sorted(rows[0].utility_percent) if rows else []
    headers = ["Nodes"] + [f"{f} faults" for f in fault_counts] + [
        "Run time, sec"
    ]
    body: List[List[object]] = []
    for row in rows:
        cells: List[object] = [row.nodes]
        cells += [row.utility_percent[f] for f in fault_counts]
        cells.append(round(row.runtime_seconds, 2))
        body.append(cells)
    return format_table(
        headers,
        body,
        title="Table 1 — utility normalized to FTSS (%), by tree size",
    )
