"""Experiment driver for Table 1 (paper §6, third experiment set).

The paper fixes 50 applications with 30 processes each (half hard,
half soft) and sweeps the quasi-static tree size M over
{1, 2, 8, 13, 23, 34, 79, 89} nodes.  For each M it reports the mean
utility normalized to FTSS (the single f-schedule, M = 1) under 0, 1,
2 and 3 faults, plus the scheduler's construction run time.  The
paper's trend: utility rises quickly with the first handful of nodes
(+11% at 2, +21% at 8) and saturates around +26%, while run time grows
steeply with M.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.evaluation.metrics import NormalizedTable, format_table
from repro.evaluation.montecarlo import MonteCarloEvaluator
from repro.quasistatic.ftqs import FTQSConfig, ftqs
from repro.scheduling.ftss import ftss
from repro.workloads.suite import WorkloadSpec, generate_application


@dataclass(frozen=True)
class Table1Config:
    """Scale knobs of the Table 1 experiment."""

    tree_sizes: Tuple[int, ...] = (1, 2, 8, 13, 23, 34, 79, 89)
    n_apps: int = 5
    n_processes: int = 30
    n_scenarios: int = 100
    k: int = 3
    mu: int = 15
    seed: int = 2008
    engine: str = "batched"
    jobs: int = 1

    @classmethod
    def paper_scale(cls) -> "Table1Config":
        return cls(n_apps=50, n_scenarios=20000)


@dataclass
class Table1Row:
    """One row of Table 1: tree size → normalized utilities + runtime."""

    nodes: int
    utility_percent: Dict[int, float]  # fault count -> mean %
    runtime_seconds: float
    n_apps: int


def run_table1(config: Table1Config = Table1Config()) -> List[Table1Row]:
    """Run the tree-size sweep; returns one row per M."""
    rng = np.random.default_rng(config.seed)
    spec = WorkloadSpec(
        n_processes=config.n_processes,
        soft_ratio=0.5,
        k=config.k,
        mu=config.mu,
    )
    apps = []
    while len(apps) < config.n_apps:
        app = generate_application(spec, rng=rng)
        root = ftss(app)
        if root is None:
            continue
        evaluator = MonteCarloEvaluator(
            app,
            n_scenarios=config.n_scenarios,
            fault_counts=list(range(config.k + 1)),
            seed=config.seed + len(apps),
            engine=config.engine,
            jobs=config.jobs,
        )
        baseline = evaluator.evaluate(root)
        # With jobs > 1 every evaluator would otherwise keep its
        # worker pool and shared-memory segments alive for the whole
        # sweep (n_apps pools at once); close after each use — the
        # pool respawns on the next evaluate, bounding concurrency at
        # one pool without losing the per-evaluate amortization.
        evaluator.close()
        if baseline[0].mean_utility <= 0:
            continue
        apps.append((app, root, evaluator, baseline))

    rows: List[Table1Row] = []
    for m in config.tree_sizes:
        table = NormalizedTable()
        total_runtime = 0.0
        for app, root, evaluator, baseline in apps:
            start = time.perf_counter()
            if m == 1:
                plan = root
            else:
                plan = ftqs(app, root, FTQSConfig(max_schedules=m))
            total_runtime += time.perf_counter() - start
            try:
                outcome = evaluator.evaluate(plan)
            finally:
                evaluator.close()
            for faults in range(config.k + 1):
                base = baseline[faults].mean_utility
                if base <= 0:
                    continue
                table.add(
                    "FTQS",
                    faults,
                    100.0 * outcome[faults].mean_utility / base,
                )
        rows.append(
            Table1Row(
                nodes=m,
                utility_percent={
                    faults: table.cell("FTQS", faults).mean
                    for faults in range(config.k + 1)
                },
                runtime_seconds=total_runtime / max(1, len(apps)),
                n_apps=len(apps),
            )
        )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render in the paper's Table 1 layout."""
    fault_counts = sorted(rows[0].utility_percent) if rows else []
    headers = ["Nodes"] + [f"{f} faults" for f in fault_counts] + [
        "Run time, sec"
    ]
    body: List[List[object]] = []
    for row in rows:
        cells: List[object] = [row.nodes]
        cells += [row.utility_percent[f] for f in fault_counts]
        cells.append(round(row.runtime_seconds, 2))
        body.append(cells)
    return format_table(
        headers,
        body,
        title="Table 1 — utility normalized to FTSS (%), by tree size",
    )
