"""Experiment drivers: one module per paper table/figure + ablations."""

from repro.evaluation.experiments.ablations import (
    AblationConfig,
    AblationRow,
    format_ablations,
    run_ablations,
)
from repro.evaluation.experiments.cc import CCConfig, CCReport, run_cc
from repro.evaluation.experiments.fig9 import (
    Fig9Config,
    Fig9Row,
    fig9a_rows,
    fig9b_rows,
    format_fig9,
    run_fig9,
)
from repro.evaluation.experiments.sweeps import (
    SweepConfig,
    SweepRow,
    format_sweep,
    run_fault_budget_sweep,
    run_soft_ratio_sweep,
)
from repro.evaluation.experiments.table1 import (
    Table1Config,
    Table1Row,
    format_table1,
    run_table1,
)

__all__ = [
    "AblationConfig",
    "AblationRow",
    "CCConfig",
    "CCReport",
    "Fig9Config",
    "Fig9Row",
    "SweepConfig",
    "SweepRow",
    "Table1Config",
    "Table1Row",
    "format_sweep",
    "run_fault_budget_sweep",
    "run_soft_ratio_sweep",
    "fig9a_rows",
    "fig9b_rows",
    "format_ablations",
    "format_fig9",
    "format_table1",
    "run_ablations",
    "run_cc",
    "run_fig9",
    "run_table1",
]
