"""Experiment drivers: one module per paper table/figure + ablations.

Every driver is a spec of
:class:`repro.pipeline.runner.ExperimentRunner` — the shared
generate → synthesize → evaluate → rows loop — plus a ``run_*``
function wrapper that preserves the historical call signature.  All of
them accept ``resources`` (shared worker pools) and ``store`` (the
content-addressed tree cache); see :mod:`repro.pipeline`.
"""

from repro.evaluation.experiments.ablations import (
    AblationConfig,
    AblationRow,
    AblationRunner,
    format_ablations,
    run_ablations,
)
from repro.evaluation.experiments.cc import (
    CCConfig,
    CCReport,
    CCRunner,
    run_cc,
)
from repro.evaluation.experiments.fig9 import (
    Fig9Config,
    Fig9Row,
    Fig9Runner,
    fig9a_rows,
    fig9b_rows,
    format_fig9,
    run_fig9,
)
from repro.evaluation.experiments.sweeps import (
    SweepConfig,
    SweepRow,
    SweepRunner,
    format_sweep,
    run_fault_budget_sweep,
    run_soft_ratio_sweep,
)
from repro.evaluation.experiments.table1 import (
    Table1Config,
    Table1Row,
    Table1Runner,
    format_table1,
    run_table1,
)

__all__ = [
    "AblationConfig",
    "AblationRow",
    "AblationRunner",
    "CCConfig",
    "CCReport",
    "CCRunner",
    "Fig9Config",
    "Fig9Row",
    "Fig9Runner",
    "SweepConfig",
    "SweepRow",
    "SweepRunner",
    "Table1Config",
    "Table1Row",
    "Table1Runner",
    "format_sweep",
    "run_fault_budget_sweep",
    "run_soft_ratio_sweep",
    "fig9a_rows",
    "fig9b_rows",
    "format_ablations",
    "format_fig9",
    "format_table1",
    "run_ablations",
    "run_cc",
    "run_fig9",
    "run_table1",
]
