"""Evaluation harness: Monte-Carlo simulation, exhaustive
verification, metrics and the experiment drivers."""

from repro.evaluation.metrics import CellStats, NormalizedTable, format_table
from repro.evaluation.montecarlo import (
    EvaluationOutcome,
    MonteCarloEvaluator,
    normalized_to,
)
from repro.evaluation.verification import (
    Counterexample,
    VerificationReport,
    combination_count,
    verify_all_reachable_schedules,
    verify_deadline_guarantee,
)

__all__ = [
    "CellStats",
    "Counterexample",
    "EvaluationOutcome",
    "MonteCarloEvaluator",
    "NormalizedTable",
    "VerificationReport",
    "combination_count",
    "format_table",
    "normalized_to",
    "verify_all_reachable_schedules",
    "verify_deadline_guarantee",
]
