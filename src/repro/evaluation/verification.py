"""Exhaustive verification of the hard-deadline guarantee.

Monte-Carlo simulation (``repro.evaluation.montecarlo``) samples the
scenario space; for *small* applications we can do better and check it
exhaustively, in the spirit of model checking:

* **fault scenarios** — every multiset of at most k faults over the
  processes (:func:`repro.faults.enumerate_scenarios`); and
* **execution times** — every combination of per-process BCET/WCET
  corners.  Corner coverage is the right notion here: every completion
  bound used by the synthesis analyses is a monotone (sum/max) function
  of the individual execution times, so its extrema lie on corners of
  the [BCET, WCET] box.  Interior points can still exercise *different
  switch decisions* of the quasi-static tree — those are covered by the
  randomized property tests — but a deadline violation at an interior
  point implies one at a corner for the schedule actually executed.

The verifier replays every combination through the real online
scheduler and reports the first counterexample, making it both a test
oracle (``tests/test_verification.py``) and a debugging tool
(the counterexample is a concrete replayable scenario).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, List, Optional, Union

from repro.errors import ModelError
from repro.faults.injection import ExecutionScenario
from repro.faults.model import FaultScenario
from repro.faults.scenarios import count_scenarios, enumerate_scenarios
from repro.model.application import Application
from repro.quasistatic.tree import QSTree
from repro.runtime.online import OnlineScheduler
from repro.scheduling.fschedule import FSchedule

#: Refuse to enumerate beyond this many combinations by default.
DEFAULT_COMBINATION_LIMIT = 200_000


@dataclass(frozen=True)
class Counterexample:
    """A concrete scenario violating a guarantee."""

    scenario: ExecutionScenario
    missed: tuple
    makespan: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Counterexample(faults={self.scenario.faults}, "
            f"missed={list(self.missed)}, makespan={self.makespan})"
        )


@dataclass
class VerificationReport:
    """Outcome of one exhaustive verification run."""

    combinations_checked: int
    counterexample: Optional[Counterexample] = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None


def corner_time_vectors(app: Application) -> Iterator[dict]:
    """All per-process BCET/WCET corner assignments."""
    names = [p.name for p in app.processes]
    corners = [(app.process(n).bcet, app.process(n).wcet) for n in names]
    for combo in product(*corners):
        yield dict(zip(names, combo))


def combination_count(app: Application) -> int:
    """Number of (corner, fault-scenario) combinations to check."""
    distinct_corners = 1
    for proc in app.processes:
        distinct_corners *= 1 if proc.bcet == proc.wcet else 2
    return distinct_corners * count_scenarios(len(app.processes), app.k)


def verify_deadline_guarantee(
    app: Application,
    plan: Union[QSTree, FSchedule],
    limit: int = DEFAULT_COMBINATION_LIMIT,
) -> VerificationReport:
    """Exhaustively check the hard-deadline and period guarantees.

    Replays every corner execution-time vector under every fault
    scenario with at most k faults.  Raises
    :class:`~repro.errors.ModelError` when the combination space
    exceeds ``limit`` (use the Monte-Carlo evaluator for large
    applications).
    """
    total = combination_count(app)
    if total > limit:
        raise ModelError(
            f"{total} combinations exceed the limit of {limit}; "
            f"use MonteCarloEvaluator for applications of this size"
        )
    scheduler = OnlineScheduler(app, plan, record_events=False)
    names = [p.name for p in app.processes]
    fault_patterns: List[FaultScenario] = list(
        enumerate_scenarios(names, app.k)
    )
    checked = 0
    for times in corner_time_vectors(app):
        durations = {
            name: (value,) * (app.k + 1) for name, value in times.items()
        }
        for pattern in fault_patterns:
            scenario = ExecutionScenario(durations, pattern)
            result = scheduler.run(scenario)
            checked += 1
            if result.hard_misses or result.makespan > app.period:
                return VerificationReport(
                    combinations_checked=checked,
                    counterexample=Counterexample(
                        scenario=scenario,
                        missed=result.hard_misses,
                        makespan=result.makespan,
                    ),
                )
    return VerificationReport(combinations_checked=checked)


def verify_all_reachable_schedules(
    app: Application, tree: QSTree
) -> List[int]:
    """Static check: every tree node's schedule is feasible *from the
    latest switch time of any arc pointing at it*.

    Returns the ids of violating nodes (empty = all safe).  This is
    the static counterpart of the dynamic guarantee: interval
    partitioning caps every arc at the child's latest safe start, so
    no arc may admit a start time at which the child breaks.
    """
    from repro.quasistatic.intervals import rebased

    violations: List[int] = []
    for node in tree.nodes():
        for arc in node.arcs:
            child = tree.node(arc.target)
            probe = rebased(child.schedule, arc.hi)
            if not probe.is_schedulable():
                violations.append(arc.target)
    return sorted(set(violations))
