"""Cross-application aggregation helpers for the experiment drivers.

Each experiment runs several approaches on many applications; the
paper reports utilities *normalized per application* (to FTQS in
Fig. 9, to FTSS in Table 1) and then averaged.  Normalizing before
averaging keeps applications with large absolute utilities from
dominating the mean, which is also why we follow the same order here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np


@dataclass
class CellStats:
    """Summary statistics of one (approach, fault-count) table cell."""

    mean: float
    std: float
    count: int

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "CellStats":
        data = np.asarray(list(values), dtype=float)
        if data.size == 0:
            return cls(mean=float("nan"), std=float("nan"), count=0)
        return cls(
            mean=float(np.mean(data)),
            std=float(np.std(data)),
            count=int(data.size),
        )


class NormalizedTable:
    """Accumulates per-application normalized utilities.

    ``add(app_index, approach, faults, percent)`` records one value;
    ``cell(approach, faults)`` aggregates across applications.
    """

    def __init__(self) -> None:
        self._values: Dict[Tuple[str, int], List[float]] = {}

    def add(self, approach: str, faults: int, percent: float) -> None:
        self._values.setdefault((approach, faults), []).append(percent)

    def cell(self, approach: str, faults: int) -> CellStats:
        return CellStats.from_values(self._values.get((approach, faults), []))

    def approaches(self) -> List[str]:
        return sorted({a for a, _ in self._values})

    def fault_counts(self) -> List[int]:
        return sorted({f for _, f in self._values})

    def as_rows(self) -> List[Dict[str, object]]:
        """Flat row dicts (approach, faults, mean, std, n) for printing."""
        rows = []
        for approach in self.approaches():
            for faults in self.fault_counts():
                stats = self.cell(approach, faults)
                if stats.count == 0:
                    continue
                rows.append(
                    {
                        "approach": approach,
                        "faults": faults,
                        "mean": stats.mean,
                        "std": stats.std,
                        "n": stats.count,
                    }
                )
        return rows


def format_table(
    headers: List[str], rows: List[List[object]], title: Optional[str] = None
) -> str:
    """Plain-text table renderer used by every experiment driver."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)
