"""Runtime substrate: online scheduler, traces, re-planning comparator."""

from repro.runtime.online import OnlineScheduler, simulate
from repro.runtime.replanner import ReplanningResult, run_replanning
from repro.runtime.trace import EventKind, ExecutionResult, TraceEvent

__all__ = [
    "EventKind",
    "ExecutionResult",
    "OnlineScheduler",
    "ReplanningResult",
    "TraceEvent",
    "run_replanning",
    "simulate",
]
