"""Runtime substrate: online scheduler, traces, re-planning comparator,
and the batched simulation engine."""

from repro.runtime.online import OnlineScheduler, simulate
from repro.runtime.replanner import ReplanningResult, run_replanning
from repro.runtime.trace import EventKind, ExecutionResult, TraceEvent
from repro.runtime.engine import (
    BatchResult,
    BatchSimulator,
    ParallelEvaluator,
    ScenarioBatch,
)

__all__ = [
    "BatchResult",
    "BatchSimulator",
    "EventKind",
    "ExecutionResult",
    "OnlineScheduler",
    "ParallelEvaluator",
    "ReplanningResult",
    "ScenarioBatch",
    "TraceEvent",
    "run_replanning",
    "simulate",
]
