"""The online scheduler executing a quasi-static tree (paper §1, §3).

At run time the scheduler is deliberately lightweight: it walks the
active f-schedule in order, starts each process as soon as the
previous one finishes (self-triggered, non-preemptive, single node),
and at every process completion scans the current tree node's arcs for
that process — a handful of integer comparisons — to decide whether to
switch to a better precalculated schedule.  Faults are handled with
the recovery slack of the active schedule: hard processes are always
re-executed; soft processes are re-executed only when the allotment
permits it, the re-execution cannot endanger any hard deadline from
the current state, and it is expected to be beneficial — otherwise the
process is dropped (paper §2.2).

The same engine executes purely static schedules (FTSS, FTSF): a
static schedule is just a tree with a single node and no arcs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

from repro.errors import RuntimeModelError
from repro.faults.injection import ExecutionScenario
from repro.model.application import Application
from repro.quasistatic.tree import QSNode, QSTree, SwitchArc
from repro.runtime.trace import EventKind, ExecutionResult, TraceEvent
from repro.scheduling.fschedule import FSchedule, ScheduledEntry
from repro.utility.stale import stale_coefficients


class OnlineScheduler:
    """Quasi-static online scheduler over a tree (or a single schedule).

    Parameters
    ----------
    app:
        The application being executed.
    plan:
        Either a :class:`QSTree` (quasi-static operation) or a single
        :class:`FSchedule` (static operation).
    record_events:
        Keep the full event trace in the result (disable for big
        Monte-Carlo runs to save memory).
    """

    def __init__(
        self,
        app: Application,
        plan: Union[QSTree, FSchedule],
        record_events: bool = True,
    ):
        self.app = app
        if isinstance(plan, FSchedule):
            self.tree = QSTree(plan)
        elif isinstance(plan, QSTree):
            self.tree = plan
        else:
            raise RuntimeModelError(
                f"plan must be a QSTree or FSchedule, got {type(plan)!r}"
            )
        self.record_events = record_events

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run(self, scenario: ExecutionScenario) -> ExecutionResult:
        """Execute one operation cycle under ``scenario``."""
        app = self.app
        node = self.tree.root
        schedule = node.schedule
        position = 0
        clock = 0
        observed_faults = 0
        completed: Dict[str, int] = {}
        # Runtime drops (after faults) only; processes a schedule plans
        # not to run are implicitly dropped at finalization — a later
        # switch may still re-introduce them.
        dropped: Set[str] = set()
        switches: List[int] = []
        events: List[TraceEvent] = []

        def emit(time: int, kind: EventKind, process: Optional[str], detail: int = 0):
            if self.record_events:
                events.append(TraceEvent(time, kind, process, detail))

        while position < len(schedule.entries):
            entry = schedule.entries[position]
            name = entry.name
            attempt = 0
            completion: Optional[int] = None
            while True:
                if attempt > 0:
                    mu = app.recovery_overhead(name)
                    emit(clock, EventKind.RECOVERY, name, attempt)
                    clock += mu
                emit(clock, EventKind.START, name, attempt)
                clock += scenario.duration_of(name, attempt)
                if scenario.fails(name, attempt):
                    observed_faults += 1
                    emit(clock, EventKind.FAULT, name, attempt)
                    if self._should_reexecute(
                        schedule,
                        position,
                        attempt,
                        clock,
                        observed_faults,
                        completed,
                        dropped,
                    ):
                        attempt += 1
                        continue
                    dropped.add(name)
                    emit(clock, EventKind.DROP, name, attempt)
                    break
                completion = clock
                completed[name] = completion
                emit(clock, EventKind.COMPLETE, name, attempt)
                break

            if completion is not None:
                arc = self._matching_arc(node, name, completion, observed_faults)
                if arc is not None:
                    node = self.tree.node(arc.target)
                    schedule = node.schedule
                    position = 0
                    switches.append(node.node_id)
                    emit(completion, EventKind.SWITCH, name, node.node_id)
                    continue
            position += 1

        return self._finalize(
            completed, dropped, observed_faults, switches, clock, events
        )

    # ------------------------------------------------------------------
    # Decision helpers
    # ------------------------------------------------------------------
    def _matching_arc(
        self,
        node: QSNode,
        process: str,
        completion_time: int,
        observed_faults: int,
    ) -> Optional[SwitchArc]:
        """The arc to follow after ``process`` completed, if any.

        Among matching arcs the most fault-specific one wins (highest
        ``required_faults``) — it was generated with the tightest
        assumptions about the remaining fault budget; ties break by
        target id for determinism.
        """
        matching = [
            a
            for a in node.arcs_for(process)
            if a.matches(completion_time, observed_faults)
        ]
        if not matching:
            return None
        return min(matching, key=lambda a: (-a.required_faults, a.target))

    def _should_reexecute(
        self,
        schedule: FSchedule,
        position: int,
        attempt: int,
        clock: int,
        observed_faults: int,
        completed: Dict[str, int],
        dropped: Set[str],
    ) -> bool:
        """Decide whether the faulted attempt is retried (paper §2.2).

        Hard processes always re-execute.  A soft process re-executes
        when (a) its static allotment permits another attempt, (b) the
        re-execution keeps every remaining hard process schedulable
        from the current instant under the remaining fault budget, and
        (c) the expected utility with re-execution beats dropping.
        """
        app = self.app
        entry = schedule.entries[position]
        proc = app.process(entry.name)
        if proc.is_hard:
            return True
        if attempt >= entry.reexecutions:
            return False
        remaining_budget = max(0, app.k - observed_faults)
        restart = clock + app.recovery_overhead(entry.name)

        # (b) safety: re-execution first, then the rest of the active
        # schedule, analysed from `restart` with the remaining budget.
        remaining_entries = [
            ScheduledEntry(
                entry.name, min(entry.reexecutions - attempt - 1, remaining_budget)
            )
        ]
        for later in schedule.entries[position + 1 :]:
            cap = (
                remaining_budget
                if app.process(later.name).is_hard
                else min(later.reexecutions, remaining_budget)
            )
            remaining_entries.append(ScheduledEntry(later.name, cap))
        probe = FSchedule(
            app,
            remaining_entries,
            start_time=restart,
            fault_budget=remaining_budget,
            prior_completed=frozenset(completed),
            prior_dropped=frozenset(dropped),
            slack_sharing=schedule.slack_sharing,
        )
        if not probe.is_schedulable():
            return False

        # (c) benefit: conditional on this fault, compare expected
        # utility of re-executing vs dropping (tail at AET).
        return self._reexecution_beneficial(
            schedule, position, restart, clock, completed, dropped
        )

    def _reexecution_beneficial(
        self,
        schedule: FSchedule,
        position: int,
        restart: int,
        drop_time: int,
        completed: Dict[str, int],
        dropped: Set[str],
    ) -> bool:
        app = self.app
        graph = app.graph
        entry = schedule.entries[position]
        proc = app.process(entry.name)

        tail = schedule.entries[position + 1 :]

        keep_alphas = stale_coefficients(graph, dropped | schedule.all_dropped)
        keep_clock = restart + proc.aet
        keep_utility = 0.0
        if keep_clock <= app.period:
            keep_utility = keep_alphas[entry.name] * proc.utility_at(keep_clock)
        for later in tail:
            later_proc = app.process(later.name)
            keep_clock += later_proc.aet
            if later_proc.is_soft and keep_clock <= app.period:
                keep_utility += keep_alphas[later.name] * later_proc.utility_at(
                    keep_clock
                )

        drop_alphas = stale_coefficients(
            graph, dropped | schedule.all_dropped | {entry.name}
        )
        drop_clock = drop_time
        drop_utility = 0.0
        for later in tail:
            later_proc = app.process(later.name)
            drop_clock += later_proc.aet
            if later_proc.is_soft and drop_clock <= app.period:
                drop_utility += drop_alphas[later.name] * later_proc.utility_at(
                    drop_clock
                )
        return keep_utility > drop_utility

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _finalize(
        self,
        completed: Dict[str, int],
        dropped: Set[str],
        observed_faults: int,
        switches: List[int],
        clock: int,
        events: List[TraceEvent],
    ) -> ExecutionResult:
        app = self.app
        graph = app.graph
        # Soft processes neither completed nor explicitly dropped were
        # dropped implicitly (never part of any active schedule).
        for proc in app.soft:
            if proc.name not in completed:
                dropped.add(proc.name)
        alphas = stale_coefficients(graph, dropped)
        utility = 0.0
        for name, time in completed.items():
            proc = graph[name]
            if proc.is_soft and time <= app.period:
                utility += alphas[name] * proc.utility_at(time)
        hard_misses = tuple(
            sorted(
                p.name
                for p in app.hard
                if p.name not in completed
                or completed[p.name] > p.deadline
            )
        )
        return ExecutionResult(
            completion_times=completed,
            dropped=frozenset(dropped),
            utility=utility,
            hard_misses=hard_misses,
            faults_observed=observed_faults,
            switches=tuple(switches),
            makespan=clock,
            events=events,
        )


def simulate(
    app: Application,
    plan: Union[QSTree, FSchedule],
    scenario: ExecutionScenario,
    record_events: bool = True,
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`OnlineScheduler`."""
    return OnlineScheduler(app, plan, record_events=record_events).run(scenario)
