"""A fully-online re-planning scheduler (overhead comparator).

The paper motivates quasi-static scheduling by the "unacceptable
overhead" of a purely online approach "which computes a new schedule
every time a process fails or completes" (§1, abstract).  This module
implements exactly that straw man so the claim can be measured: after
every process completion (and every fault), FTSS is re-run on the
remaining processes from the current instant, and the first process of
the fresh schedule is executed next.

The resulting utility is an upper-ish bound for adaptive scheduling —
every decision uses the true current time — but each decision costs a
full FTSS run.  :class:`ReplanningResult` therefore also reports the
number of scheduler invocations and the host-measured scheduling time,
which the ``ablation`` benches compare against the (constant-time)
arc lookups of the quasi-static online scheduler.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, Set

from repro.errors import RuntimeModelError
from repro.faults.injection import ExecutionScenario
from repro.model.application import Application
from repro.runtime.trace import ExecutionResult
from repro.scheduling.ftss import DEFAULT_CONFIG, FTSSConfig, ftss
from repro.utility.stale import stale_coefficients


@dataclass
class ReplanningResult:
    """Outcome of a fully-online cycle plus its scheduling overhead."""

    result: ExecutionResult
    scheduler_invocations: int
    scheduling_seconds: float


def run_replanning(
    app: Application,
    scenario: ExecutionScenario,
    config: FTSSConfig = DEFAULT_CONFIG,
) -> ReplanningResult:
    """Execute one cycle, re-running FTSS at every completion/fault."""
    clock = 0
    observed_faults = 0
    completed: Dict[str, int] = {}
    dropped: Set[str] = set()
    invocations = 0
    spent = 0.0

    while True:
        t0 = _time.perf_counter()
        plan = ftss(
            app,
            fault_budget=max(0, app.k - observed_faults),
            start_time=clock,
            prior_completed=frozenset(completed),
            prior_dropped=frozenset(dropped),
            config=config,
        )
        spent += _time.perf_counter() - t0
        invocations += 1
        if plan is None:
            raise RuntimeModelError(
                "online re-planning failed mid-cycle; the initial "
                "schedulability guarantee was violated"
            )
        if not plan.entries:
            # Everything remaining was dropped by the plan.
            dropped |= set(plan.dropped)
            break

        name = plan.entries[0].name
        attempts_allowed = plan.entries[0].reexecutions
        attempt = 0
        while True:
            if attempt > 0:
                clock += app.recovery_overhead(name)
            clock += scenario.duration_of(name, attempt)
            if scenario.fails(name, attempt):
                observed_faults += 1
                if app.process(name).is_hard or attempt < attempts_allowed:
                    attempt += 1
                    continue
                dropped.add(name)
                break
            completed[name] = clock
            break

    for proc in app.soft:
        if proc.name not in completed:
            dropped.add(proc.name)
    alphas = stale_coefficients(app.graph, dropped)
    utility = 0.0
    for pname, ptime in completed.items():
        proc = app.graph[pname]
        if proc.is_soft and ptime <= app.period:
            utility += alphas[pname] * proc.utility_at(ptime)
    hard_misses = tuple(
        sorted(
            p.name
            for p in app.hard
            if p.name not in completed or completed[p.name] > p.deadline
        )
    )
    result = ExecutionResult(
        completion_times=completed,
        dropped=frozenset(dropped),
        utility=utility,
        hard_misses=hard_misses,
        faults_observed=observed_faults,
        switches=(),
        makespan=clock,
        events=[],
    )
    return ReplanningResult(
        result=result,
        scheduler_invocations=invocations,
        scheduling_seconds=spent,
    )
