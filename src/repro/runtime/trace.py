"""Execution traces and results of simulated operation cycles.

The online scheduler emits one :class:`TraceEvent` per interesting
occurrence (start, fault, recovery, completion, drop, schedule switch),
so tests can assert fine-grained behaviour (e.g. "the scheduler
switched to S_2^1 because P_1 completed at 30") and the analysis tools
can render Gantt charts of particular runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import RuntimeModelError


class EventKind(Enum):
    """What happened at a trace point."""

    START = "start"
    FAULT = "fault"
    RECOVERY = "recovery"
    COMPLETE = "complete"
    DROP = "drop"
    SWITCH = "switch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence during a simulated cycle.

    ``detail`` carries kind-specific context: the attempt number for
    executions and faults, the target node id for switches.
    """

    time: int
    kind: EventKind
    process: Optional[str] = None
    detail: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        subject = self.process if self.process is not None else ""
        return f"[{self.time:>6}] {self.kind.value:<8} {subject} ({self.detail})"


@dataclass
class ExecutionResult:
    """Outcome of one simulated operation cycle.

    Attributes
    ----------
    completion_times:
        Final completion time of every successfully completed process.
    dropped:
        Soft processes that did not run (statically excluded or dropped
        online after a fault).
    utility:
        Overall utility U = Σ α_i · U_i(c_i) of the cycle, with stale
        degradation and the period cutoff applied.
    hard_misses:
        Hard processes that completed after their deadline (must be
        empty whenever the schedule synthesis declared the application
        schedulable — asserted by the property tests).
    faults_observed:
        Number of faults that actually struck during the cycle.
    switches:
        Node ids of the schedules activated by quasi-static switches,
        in order (empty for purely static execution).
    makespan:
        Completion time of the last executed process.
    events:
        Full event trace.
    """

    completion_times: Dict[str, int] = field(default_factory=dict)
    dropped: FrozenSet[str] = frozenset()
    utility: float = 0.0
    hard_misses: Tuple[str, ...] = ()
    faults_observed: int = 0
    switches: Tuple[int, ...] = ()
    makespan: int = 0
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def met_all_hard_deadlines(self) -> bool:
        return not self.hard_misses

    def completed(self, name: str) -> bool:
        return name in self.completion_times

    def completion_of(self, name: str) -> int:
        try:
            return self.completion_times[name]
        except KeyError:
            raise RuntimeModelError(
                f"process {name!r} did not complete in this cycle"
            ) from None

    def events_of_kind(self, kind: EventKind) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is kind]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.met_all_hard_deadlines else "DEADLINE MISS"
        return (
            f"ExecutionResult(utility={self.utility:.1f}, "
            f"faults={self.faults_observed}, switches={len(self.switches)}, "
            f"makespan={self.makespan}, {status})"
        )
