"""Compilation of applications and plans into array-friendly tables.

The batched simulator never touches process names or dataclasses in
its inner loops: :func:`compile_application` assigns every process an
integer id and precomputes per-id arrays (recovery overheads, hard
deadlines, vectorized utility evaluators), and :func:`compile_tree`
lowers a :class:`~repro.quasistatic.tree.QSTree` (or a single
:class:`~repro.scheduling.fschedule.FSchedule`, treated as a one-node
tree exactly like the online scheduler does) into per-node entry-id
arrays and per-position arc tables.

Arc tables preserve the online scheduler's selection rule: arcs
evaluated at one completion are stored sorted by
``(-required_faults, target)``, so taking the *first* match equals
``OnlineScheduler._matching_arc``'s ``min`` over all matches.

Vectorized utility evaluators reproduce the scalar
:meth:`UtilityFunction.value_at` bit for bit: piecewise-constant
functions become ``searchsorted`` lookups into the stored values,
linear decay applies the same float64 arithmetic elementwise, and any
unknown subclass falls back to a scalar loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple, Union

import numpy as np

from repro.errors import RuntimeModelError
from repro.model.application import Application
from repro.quasistatic.tree import QSTree
from repro.scheduling.fschedule import FSchedule
from repro.utility.functions import (
    ConstantUtility,
    LinearUtility,
    StepUtility,
    TabulatedUtility,
    UtilityFunction,
)

#: ``evaluator(times) -> utilities`` over an int64 completion array.
UtilityEvaluator = Callable[[np.ndarray], np.ndarray]

#: One compiled switch arc: (lo, hi, required_faults, target node id).
CompiledArc = Tuple[int, int, int, int]


def _table_evaluator(
    thresholds: List[int], values: List[float], side: str
) -> UtilityEvaluator:
    """Lookup ``values[searchsorted(thresholds, t, side)]``.

    With ``side='left'`` the index counts thresholds strictly below
    ``t`` (the ``t > step`` rule of :class:`StepUtility`); with
    ``side='right'`` it counts thresholds at or below ``t`` (the
    ``t >= sample`` rule of :class:`TabulatedUtility`).
    """
    bounds = np.asarray(thresholds, dtype=np.int64)
    table = np.asarray(values, dtype=np.float64)

    def evaluate(times: np.ndarray) -> np.ndarray:
        return table[np.searchsorted(bounds, times, side=side)]

    return evaluate


def utility_evaluator(utility: UtilityFunction) -> UtilityEvaluator:
    """A vectorized, bit-identical form of ``utility.value_at``."""
    if utility is None:
        return lambda times: np.zeros(len(times), dtype=np.float64)
    if isinstance(utility, StepUtility):
        steps = utility.steps
        return _table_evaluator(
            [t for t, _ in steps],
            [utility.initial] + [v for _, v in steps],
            side="left",
        )
    if isinstance(utility, ConstantUtility):
        if utility.cutoff is None:
            value = float(utility.value)
            return lambda times: np.full(len(times), value, dtype=np.float64)
        return _table_evaluator(
            [utility.cutoff], [utility.value, 0.0], side="left"
        )
    if isinstance(utility, TabulatedUtility):
        samples = utility.samples
        return _table_evaluator(
            [t for t, _ in samples],
            [samples[0][1]] + [v for _, v in samples],
            side="right",
        )
    if isinstance(utility, LinearUtility):
        u0, slope = utility.u0, utility.slope

        def linear(times: np.ndarray) -> np.ndarray:
            return np.maximum(0.0, u0 - slope * times.astype(np.float64))

        return linear

    def generic(times: np.ndarray) -> np.ndarray:  # unknown subclass
        return np.array(
            [utility.value_at(int(t)) for t in times], dtype=np.float64
        )

    return generic


@dataclass(frozen=True)
class CompiledApplication:
    """Integer-indexed view of an :class:`Application`."""

    app: Application
    names: Tuple[str, ...]
    index: Dict[str, int]
    mu: np.ndarray            # (n,) recovery overhead per process
    is_hard: np.ndarray       # (n,) bool
    deadline: np.ndarray      # (n,) hard deadlines (period for soft)
    hard_ids: np.ndarray      # ids of hard processes
    soft_ids: np.ndarray      # ids of soft processes
    utilities: Tuple[UtilityEvaluator, ...]

    @property
    def n_processes(self) -> int:
        return len(self.names)

    @property
    def period(self) -> int:
        return self.app.period


def compile_application(app: Application) -> CompiledApplication:
    """Precompute the per-process arrays the simulator indexes by id."""
    names = tuple(p.name for p in app.processes)
    index = {name: i for i, name in enumerate(names)}
    processes = app.processes
    mu = np.array(
        [app.recovery_overhead(p.name) for p in processes], dtype=np.int64
    )
    is_hard = np.array([p.is_hard for p in processes], dtype=bool)
    deadline = np.array(
        [p.deadline if p.is_hard else app.period for p in processes],
        dtype=np.int64,
    )
    return CompiledApplication(
        app=app,
        names=names,
        index=index,
        mu=mu,
        is_hard=is_hard,
        deadline=deadline,
        hard_ids=np.flatnonzero(is_hard),
        soft_ids=np.flatnonzero(~is_hard),
        utilities=tuple(utility_evaluator(p.utility) for p in processes),
    )


@dataclass(frozen=True)
class CompiledNode:
    """One tree node: ordered entry ids plus per-position arc tables.

    Besides the per-position constants, two per-segment tables feed
    the segment-stepped simulator core: ``entry_mu`` hoists the
    recovery-overhead gather (closed-form segment advancement adds
    ``faults * entry_mu`` per position, so the per-id lookup happens
    once at compile time), and ``arc_positions`` is a sorted index of
    arc-bearing positions so a whole segment's arc evaluation is one
    ``searchsorted`` range instead of a scan over every position.
    """

    node_id: int
    entry_ids: np.ndarray            # (L,) process ids in schedule order
    entry_set: frozenset             # same ids, for overlap checks
    arcs_at: Tuple[Tuple[CompiledArc, ...], ...]  # arcs per position
    entry_caps: np.ndarray           # (L,) re-execution allotments
    entry_mu: np.ndarray             # (L,) recovery overhead per position
    arc_positions: np.ndarray        # sorted positions with arcs
    schedule: FSchedule = field(repr=False, compare=False)

    @property
    def n_entries(self) -> int:
        return len(self.entry_ids)

    @property
    def has_arcs(self) -> bool:
        return any(self.arcs_at)


@dataclass(frozen=True)
class CompiledTree:
    """A lowered quasi-static tree (or single static schedule)."""

    root_id: int
    nodes: Dict[int, CompiledNode]
    scheduled_ids: frozenset         # ids appearing in any node

    def __len__(self) -> int:
        return len(self.nodes)


def compile_tree(
    capp: CompiledApplication, plan: Union[QSTree, FSchedule]
) -> CompiledTree:
    """Lower ``plan`` into integer tables over ``capp``'s ids."""
    if isinstance(plan, FSchedule):
        tree = QSTree(plan)
    elif isinstance(plan, QSTree):
        tree = plan
    else:
        raise RuntimeModelError(
            f"plan must be a QSTree or FSchedule, got {type(plan)!r}"
        )
    nodes: Dict[int, CompiledNode] = {}
    scheduled: set = set()
    for node in tree:
        entry_ids = np.array(
            [capp.index[e.name] for e in node.schedule.entries],
            dtype=np.int64,
        )
        scheduled.update(int(i) for i in entry_ids)
        arcs_at: List[Tuple[CompiledArc, ...]] = []
        for position, entry in enumerate(node.schedule.entries):
            matching = sorted(
                (a for a in node.arcs if a.process == entry.name),
                key=lambda a: (-a.required_faults, a.target),
            )
            arcs_at.append(
                tuple(
                    (a.lo, a.hi, a.required_faults, a.target)
                    for a in matching
                )
            )
        nodes[node.node_id] = CompiledNode(
            node_id=node.node_id,
            entry_ids=entry_ids,
            entry_set=frozenset(int(i) for i in entry_ids),
            arcs_at=tuple(arcs_at),
            entry_caps=np.array(
                [e.reexecutions for e in node.schedule.entries],
                dtype=np.int64,
            ),
            entry_mu=capp.mu[entry_ids],
            arc_positions=np.flatnonzero(
                np.array([bool(a) for a in arcs_at], dtype=bool)
            ).astype(np.int64),
            schedule=node.schedule,
        )
    return CompiledTree(
        root_id=tree.root_id,
        nodes=nodes,
        scheduled_ids=frozenset(scheduled),
    )
