"""The batched simulator: whole scenario sets per array operation.

:class:`BatchSimulator` executes a compiled plan over a
:class:`~repro.runtime.engine.batch.ScenarioBatch` by propagating
*cohorts*: groups of scenarios that currently sit at the same tree
node having executed the same process prefix.  Within a cohort,
completion times are prefix sums over the duration arrays (faults on
hard processes add their re-execution and recovery terms in closed
form), arc conditions are evaluated as boolean masks, and matched
scenarios split off into child cohorts.  Scenarios that finish in a
cohort are finalized together: stale-value coefficients depend only on
the cohort's executed set, and the utility sum is accumulated process
by process in the oracle's completion order — the same IEEE-754
operations in the same order, so results are bit-identical to
:class:`~repro.runtime.online.OnlineScheduler`.

The one thing the closed form cannot express is the online re-execute/
drop decision for a *faulted soft process* (paper §2.2): it probes
schedulability and compares expected utilities.  Scenarios whose fault
pattern touches a soft process that any node schedules are therefore
routed through the oracle itself — the fallback is the reference
implementation, not an approximation of it.  Under the paper's fault
model most fault scenarios hit hard processes or processes the plan
never runs, so the vectorized share stays high (and is exposed as
:attr:`BatchResult.fast_path` for the benches to report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

import numpy as np

from repro.errors import RuntimeModelError
from repro.model.application import Application
from repro.quasistatic.tree import QSTree
from repro.runtime.engine.batch import ScenarioBatch
from repro.runtime.engine.compile import (
    CompiledNode,
    compile_application,
    compile_tree,
)
from repro.runtime.online import OnlineScheduler
from repro.scheduling.fschedule import FSchedule
from repro.utility.stale import stale_coefficients


@dataclass
class BatchResult:
    """Per-scenario outcomes of one batch run.

    The four quantities the evaluation layer aggregates (and the
    differential harness compares against the oracle), plus the switch
    chains and a mask of which scenarios took the vectorized path.
    """

    utilities: np.ndarray        # (S,) float64
    deadline_miss: np.ndarray    # (S,) bool
    switch_counts: np.ndarray    # (S,) int64
    faults_observed: np.ndarray  # (S,) int64
    switch_chains: List[Tuple[int, ...]] = field(repr=False)
    fast_path: np.ndarray = field(repr=False)

    @property
    def n_scenarios(self) -> int:
        return len(self.utilities)

    @property
    def n_fast(self) -> int:
        return int(self.fast_path.sum())

    @property
    def n_fallback(self) -> int:
        return self.n_scenarios - self.n_fast


@dataclass
class _Cohort:
    """Scenarios at the same node with the same executed prefix."""

    node_id: int
    members: np.ndarray            # (M,) indices into the batch
    clock: np.ndarray              # (M,) current time per member
    observed: np.ndarray           # (M,) faults observed so far
    prefix_ids: Tuple[int, ...]    # process ids executed before this node
    prefix_completions: np.ndarray  # (M, len(prefix_ids))
    chain: Tuple[int, ...]         # node ids switched through, in order


class BatchSimulator:
    """Vectorized executor of one plan with an oracle fallback.

    Parameters
    ----------
    app:
        The application being executed.
    plan:
        A :class:`QSTree` or a single :class:`FSchedule` (treated as a
        one-node tree, exactly like :class:`OnlineScheduler`).
    """

    def __init__(self, app: Application, plan: Union[QSTree, FSchedule]):
        self.app = app
        self.capp = compile_application(app)
        self.ctree = compile_tree(self.capp, plan)
        self._oracle = OnlineScheduler(app, plan, record_events=False)
        self._alphas_cache: Dict[FrozenSet[int], Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run_batch(self, batch: ScenarioBatch) -> BatchResult:
        """Execute every scenario of ``batch``; see :class:`BatchResult`."""
        if batch.names != self.capp.names:
            raise RuntimeModelError(
                "batch process columns do not match the application "
                f"({batch.names!r} vs {self.capp.names!r})"
            )
        n = batch.n_scenarios
        result = BatchResult(
            utilities=np.zeros(n, dtype=np.float64),
            deadline_miss=np.zeros(n, dtype=bool),
            switch_counts=np.zeros(n, dtype=np.int64),
            faults_observed=np.zeros(n, dtype=np.int64),
            switch_chains=[()] * n,
            fast_path=np.zeros(n, dtype=bool),
        )
        faults = batch.fault_counts
        soft_scheduled = self.ctree.soft_scheduled_ids
        if soft_scheduled.size:
            needs_oracle = (faults[:, soft_scheduled] > 0).any(axis=1)
        else:
            needs_oracle = np.zeros(n, dtype=bool)
        eligible = np.flatnonzero(~needs_oracle)
        result.fast_path[eligible] = True
        if eligible.size:
            self._run_cohorts(batch, eligible, result)
        for i in np.flatnonzero(~result.fast_path):
            self._run_oracle(batch, int(i), result)
        return result

    # ------------------------------------------------------------------
    # Fallback
    # ------------------------------------------------------------------
    def _run_oracle(
        self, batch: ScenarioBatch, i: int, result: BatchResult
    ) -> None:
        outcome = self._oracle.run(batch.scenario(i))
        result.utilities[i] = outcome.utility
        result.deadline_miss[i] = not outcome.met_all_hard_deadlines
        result.switch_counts[i] = len(outcome.switches)
        result.faults_observed[i] = outcome.faults_observed
        result.switch_chains[i] = outcome.switches

    # ------------------------------------------------------------------
    # Vectorized cohort propagation
    # ------------------------------------------------------------------
    def _run_cohorts(
        self,
        batch: ScenarioBatch,
        eligible: np.ndarray,
        result: BatchResult,
    ) -> None:
        width = batch.max_attempts
        # cum_dur[s, p, a] = total time of attempts 0..a of process p;
        # the closed form below adds recovery overheads separately.
        cum_dur = batch.attempt_cumsum()
        last_dur = batch.durations[:, :, width - 1]
        faults = batch.fault_counts
        mu = self.capp.mu
        stack: List[_Cohort] = [
            _Cohort(
                node_id=self.ctree.root_id,
                members=eligible,
                clock=np.zeros(eligible.size, dtype=np.int64),
                observed=np.zeros(eligible.size, dtype=np.int64),
                prefix_ids=(),
                prefix_completions=np.empty(
                    (eligible.size, 0), dtype=np.int64
                ),
                chain=(),
            )
        ]
        while stack:
            cohort = stack.pop()
            node = self.ctree.nodes[cohort.node_id]
            # Defensive bail-outs: a malformed tree whose arcs revisit
            # ancestors, or a child re-executing a completed process,
            # is outside the fast path's state model — the oracle
            # handles those scenarios with full generality.
            if len(cohort.chain) > len(self.ctree.nodes) or (
                node.entry_set & set(cohort.prefix_ids)
            ):
                result.fast_path[cohort.members] = False
                continue
            n_members = cohort.members.size
            length = node.n_entries
            if length == 0:
                self._finalize(
                    cohort,
                    node,
                    np.arange(n_members),
                    np.empty((n_members, 0), dtype=np.int64),
                    cohort.observed,
                    result,
                )
                continue
            ids = node.entry_ids
            entry_faults = faults[np.ix_(cohort.members, ids)]
            # Execution time of one entry including its re-executions:
            # attempts 0..F plus F recovery overheads (hard processes
            # always re-execute until the fault pattern is exhausted).
            clamped = np.minimum(entry_faults, width - 1)
            spent = np.take_along_axis(
                cum_dur[np.ix_(cohort.members, ids)],
                clamped[:, :, None],
                axis=2,
            )[:, :, 0]
            spent += (entry_faults - clamped) * last_dur[
                np.ix_(cohort.members, ids)
            ]
            spent += entry_faults * mu[ids][None, :]
            completions = cohort.clock[:, None] + np.cumsum(spent, axis=1)
            observed = cohort.observed[:, None] + np.cumsum(
                entry_faults, axis=1
            )

            switched = np.zeros(n_members, dtype=bool)
            switch_pos = np.full(n_members, -1, dtype=np.int64)
            switch_target = np.full(n_members, -1, dtype=np.int64)
            for position, arcs in enumerate(node.arcs_at):
                if not arcs:
                    continue
                undecided = ~switched
                if not undecided.any():
                    break
                at_completion = completions[:, position]
                at_observed = observed[:, position]
                # Arcs are pre-sorted by (-required_faults, target):
                # the first hit per scenario reproduces the oracle's
                # most-fault-specific tie-break.
                for lo, hi, required, target in arcs:
                    hit = (
                        undecided
                        & (at_completion >= lo)
                        & (at_completion <= hi)
                        & (at_observed >= required)
                    )
                    if hit.any():
                        switch_pos[hit] = position
                        switch_target[hit] = target
                        switched |= hit
                        undecided &= ~hit

            finishers = np.flatnonzero(~switched)
            if finishers.size:
                self._finalize(
                    cohort,
                    node,
                    finishers,
                    completions[finishers],
                    observed[finishers, -1],
                    result,
                )
            if not switched.any():
                continue
            for position, target in {
                (int(p), int(t))
                for p, t in zip(switch_pos[switched], switch_target[switched])
            }:
                selected = np.flatnonzero(
                    switched
                    & (switch_pos == position)
                    & (switch_target == target)
                )
                stack.append(
                    _Cohort(
                        node_id=target,
                        members=cohort.members[selected],
                        clock=completions[selected, position],
                        observed=observed[selected, position],
                        prefix_ids=cohort.prefix_ids
                        + tuple(int(i) for i in ids[: position + 1]),
                        prefix_completions=np.hstack(
                            [
                                cohort.prefix_completions[selected],
                                completions[selected, : position + 1],
                            ]
                        ),
                        chain=cohort.chain + (target,),
                    )
                )

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _alphas(self, executed: FrozenSet[int]) -> Dict[str, float]:
        """Stale coefficients for a cohort's executed set (cached)."""
        cached = self._alphas_cache.get(executed)
        if cached is None:
            dropped = [
                self.capp.names[i]
                for i in self.capp.soft_ids
                if int(i) not in executed
            ]
            cached = stale_coefficients(self.app.graph, dropped)
            self._alphas_cache[executed] = cached
        return cached

    def _finalize(
        self,
        cohort: _Cohort,
        node: CompiledNode,
        local: np.ndarray,
        node_completions: np.ndarray,
        observed_final: np.ndarray,
        result: BatchResult,
    ) -> None:
        """Finalize the cohort members at ``local`` (cohort-relative)."""
        capp = self.capp
        members = cohort.members[local]
        executed_ids = cohort.prefix_ids + tuple(
            int(i) for i in node.entry_ids
        )
        all_completions = np.hstack(
            [cohort.prefix_completions[local], node_completions]
        )
        executed_set = frozenset(executed_ids)
        alphas = self._alphas(executed_set)

        utilities = np.zeros(members.size, dtype=np.float64)
        misses = np.zeros(members.size, dtype=bool)
        for pid in capp.hard_ids:
            if int(pid) not in executed_set:
                misses[:] = True
                break
        # Accumulate utility in completion order — the same order (and
        # therefore the same float rounding) as the oracle's finalize.
        period = capp.period
        for column, pid in enumerate(executed_ids):
            times = all_completions[:, column]
            if capp.is_hard[pid]:
                misses |= times > capp.deadline[pid]
                continue
            in_time = times <= period
            if in_time.any():
                values = capp.utilities[pid](times[in_time])
                utilities[in_time] = (
                    utilities[in_time] + alphas[capp.names[pid]] * values
                )

        result.utilities[members] = utilities
        result.deadline_miss[members] = misses
        result.switch_counts[members] = len(cohort.chain)
        result.faults_observed[members] = observed_final
        for i in members:
            result.switch_chains[int(i)] = cohort.chain


def simulate_batch(
    app: Application,
    plan: Union[QSTree, FSchedule],
    batch: ScenarioBatch,
) -> BatchResult:
    """One-shot convenience wrapper around :class:`BatchSimulator`."""
    return BatchSimulator(app, plan).run_batch(batch)
