"""The batched simulator: whole scenario sets per array operation.

:class:`BatchSimulator` executes a compiled plan over a
:class:`~repro.runtime.engine.batch.ScenarioBatch` by propagating
*cohorts*: groups of scenarios that currently sit at the same tree
node having executed (and dropped) the same process prefix.  A cohort
advances through its schedule **segment by segment**: between decision
points — the positions where a scheduled *soft* process is faulted for
some member (paper §2.2) — a whole run of positions is executed in one
closed-form vectorized step (completion times are prefix sums over the
duration arrays; faults on hard processes add their re-execution and
recovery terms in closed form; arc conditions are evaluated as boolean
masks per position, first match winning exactly like the oracle's
most-fault-specific tie-break).  At a decision point the cohort steps
through the single faulted entry, resolving the drop/re-execute
decision against tables compiled per plan
(:class:`~repro.runtime.engine.decisions.DecisionTables`): the S_iH
schedulability probe collapses to one integer clock threshold per
(node, position, attempt, remaining budget), and the keep-vs-drop
utility comparison to a piecewise-constant boolean function of the
clock — both exact, because the tables are evaluated with the same
integer arithmetic and the same oracle float code the online scheduler
runs.  The decision splits the cohort into re-executed completers and
droppers, and segment stepping resumes.

No-soft-fault scenarios are simply the zero-decision-point special
case: every node is one segment, so they run entirely in closed form.
Scenarios that finish in a cohort are finalized together: stale-value
coefficients depend only on the cohort's executed set, and the utility
sum is accumulated process by process in the oracle's completion order
— the same IEEE-754 operations in the same order, so results are
bit-identical to :class:`~repro.runtime.online.OnlineScheduler`.

The oracle fallback remains only for plans outside the state model —
trees whose arcs revisit executed or dropped processes, or whose §2.2
probe the oracle itself would reject — so it is the reference
implementation, never an approximation of it.  The vectorized share is
exposed as :attr:`BatchResult.fast_path` and the residual oracle share
as :attr:`BatchResult.n_fallback`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple, Union

import numpy as np

from repro.errors import RuntimeModelError
from repro.model.application import Application
from repro.quasistatic.tree import QSTree
from repro.runtime.engine.batch import ScenarioBatch
from repro.runtime.engine.compile import (
    CompiledNode,
    compile_application,
    compile_tree,
)
from repro.runtime.engine.decisions import DecisionTables
from repro.runtime.online import OnlineScheduler
from repro.scheduling.fschedule import FSchedule
from repro.utility.stale import stale_coefficients


@dataclass
class BatchResult:
    """Per-scenario outcomes of one batch run.

    The four quantities the evaluation layer aggregates (and the
    differential harness compares against the oracle), plus the switch
    chains and a mask of which scenarios took the vectorized path.
    """

    utilities: np.ndarray        # (S,) float64
    deadline_miss: np.ndarray    # (S,) bool
    switch_counts: np.ndarray    # (S,) int64
    faults_observed: np.ndarray  # (S,) int64
    switch_chains: List[Tuple[int, ...]] = field(repr=False)
    fast_path: np.ndarray = field(repr=False)

    @property
    def n_scenarios(self) -> int:
        return len(self.utilities)

    @property
    def n_fast(self) -> int:
        return int(self.fast_path.sum())

    @property
    def n_fallback(self) -> int:
        return self.n_scenarios - self.n_fast


@dataclass
class _Cohort:
    """Scenarios at the same node with the same executed/dropped prefix.

    Every member has completed exactly ``completed_ids`` in that order
    and dropped exactly ``dropped_ids``; per-member state (clock,
    observed faults, completion times) lives in parallel arrays.
    ``position`` is the next schedule position to execute — nonzero
    only for cohorts respawned mid-node by a §2.2 drop split.
    """

    node_id: int
    position: int                  # next schedule position to execute
    members: np.ndarray            # (M,) indices into the batch
    clock: np.ndarray              # (M,) current time per member
    observed: np.ndarray           # (M,) faults observed so far
    completed_ids: Tuple[int, ...]  # completed process ids, in order
    completed_times: np.ndarray    # (M, len(completed_ids))
    dropped_ids: FrozenSet[int]    # soft ids dropped after faults
    chain: Tuple[int, ...]         # node ids switched through, in order


class BatchSimulator:
    """Vectorized executor of one plan with an oracle fallback.

    Parameters
    ----------
    app:
        The application being executed.
    plan:
        A :class:`QSTree` or a single :class:`FSchedule` (treated as a
        one-node tree, exactly like :class:`OnlineScheduler`).
    """

    def __init__(self, app: Application, plan: Union[QSTree, FSchedule]):
        self.app = app
        self.capp = compile_application(app)
        self.ctree = compile_tree(self.capp, plan)
        self._oracle = OnlineScheduler(app, plan, record_events=False)
        self._tables = DecisionTables(self.capp, self.ctree, self._oracle)
        self._alphas_cache: Dict[FrozenSet[int], Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run_batch(self, batch: ScenarioBatch) -> BatchResult:
        """Execute every scenario of ``batch``; see :class:`BatchResult`."""
        if batch.names != self.capp.names:
            raise RuntimeModelError(
                "batch process columns do not match the application "
                f"({batch.names!r} vs {self.capp.names!r})"
            )
        n = batch.n_scenarios
        result = BatchResult(
            utilities=np.zeros(n, dtype=np.float64),
            deadline_miss=np.zeros(n, dtype=bool),
            switch_counts=np.zeros(n, dtype=np.int64),
            faults_observed=np.zeros(n, dtype=np.int64),
            switch_chains=[()] * n,
            fast_path=np.zeros(n, dtype=bool),
        )
        result.fast_path[:] = True
        self._run_cohorts(batch, np.arange(n, dtype=np.int64), result)
        for i in np.flatnonzero(~result.fast_path):
            self._run_oracle(batch, int(i), result)
        return result

    # ------------------------------------------------------------------
    # Fallback
    # ------------------------------------------------------------------
    def _run_oracle(
        self, batch: ScenarioBatch, i: int, result: BatchResult
    ) -> None:
        outcome = self._oracle.run(batch.scenario(i))
        result.utilities[i] = outcome.utility
        result.deadline_miss[i] = not outcome.met_all_hard_deadlines
        result.switch_counts[i] = len(outcome.switches)
        result.faults_observed[i] = outcome.faults_observed
        result.switch_chains[i] = outcome.switches

    # ------------------------------------------------------------------
    # Segment-stepped cohort propagation
    # ------------------------------------------------------------------
    def _decision_schedule(
        self,
        node: CompiledNode,
        position: int,
        members: np.ndarray,
        faults: np.ndarray,
    ) -> List[int]:
        """Positions at or after ``position`` needing a §2.2 step.

        A decision point is a scheduled soft entry on which *some*
        cohort member observes a fault; candidates come from the
        compiled decision-point index, so hard entries (always
        re-executed in closed form) never break a segment.  Computed
        once per cohort visit from the arriving member set — a later
        drop/switch split only shrinks the set, so the schedule stays
        a (conservative) superset and a position whose faulty members
        all left degenerates to a cheap fault-free step.
        """
        points = self._tables.decision_points(node.node_id)
        tail = points[np.searchsorted(points, position):]
        if not tail.size:
            return []
        faulted = (
            faults[np.ix_(members, node.entry_ids[tail])] > 0
        ).any(axis=0)
        return [int(p) for p in tail[faulted]]

    @staticmethod
    def _match_arcs(
        arcs: Tuple,
        at_completion: np.ndarray,
        at_observed: np.ndarray,
        switched: np.ndarray,
        switch_target: np.ndarray,
    ) -> np.ndarray:
        """First matching arc per still-unswitched member at one position.

        Arcs are pre-sorted by ``(-required_faults, target)``, so the
        first hit per member reproduces the oracle's most-fault-
        specific tie-break.  Mutates ``switched``/``switch_target`` in
        place and returns the mask of members newly switched here.
        """
        undecided = ~switched
        newly = np.zeros(switched.size, dtype=bool)
        for lo, hi, required, target in arcs:
            hit = (
                undecided
                & (at_completion >= lo)
                & (at_completion <= hi)
                & (at_observed >= required)
            )
            if hit.any():
                switch_target[hit] = target
                switched |= hit
                newly |= hit
                undecided &= ~hit
        return newly

    def _run_cohorts(
        self,
        batch: ScenarioBatch,
        indices: np.ndarray,
        result: BatchResult,
    ) -> None:
        """Segment-stepped cohort propagation with §2.2 decisions.

        Each cohort advances through maximal decision-free position
        runs in one closed-form step (prefix-sum completions, masked
        arc matching per position) and stops only at decision points,
        where the faulted soft entry is stepped attempt by attempt
        against the compiled :class:`DecisionTables`, splitting the
        cohort into re-executed completers and droppers.  The oracle
        keeps only the cases its own §2.2 probe would reject (see
        :meth:`DecisionTables.probe_would_raise`) and malformed trees
        whose arcs revisit executed or dropped processes.
        """
        width = batch.max_attempts
        cum_dur = batch.attempt_cumsum()
        last_dur = batch.durations[:, :, width - 1]
        faults = batch.fault_counts
        capp = self.capp
        k = capp.app.k
        tables = self._tables
        n_nodes = len(self.ctree.nodes)
        stack: List[_Cohort] = [
            _Cohort(
                node_id=self.ctree.root_id,
                position=0,
                members=indices,
                clock=np.zeros(indices.size, dtype=np.int64),
                observed=np.zeros(indices.size, dtype=np.int64),
                completed_ids=(),
                completed_times=np.empty((indices.size, 0), dtype=np.int64),
                dropped_ids=frozenset(),
                chain=(),
            )
        ]
        while stack:
            cohort = stack.pop()
            node = self.ctree.nodes[cohort.node_id]
            # Defensive bail-outs: a malformed tree whose arcs revisit
            # ancestors, a child re-executing a completed process, or a
            # child re-scheduling a *dropped* process (the oracle would
            # run it again, and its §2.2 probe would reject it on the
            # next fault) is outside the fast path's state model — the
            # oracle handles those scenarios with full generality.
            if cohort.position == 0 and (
                len(cohort.chain) > n_nodes
                or (node.entry_set & set(cohort.completed_ids))
                or (node.entry_set & cohort.dropped_ids)
            ):
                result.fast_path[cohort.members] = False
                continue
            members = cohort.members
            clock = cohort.clock
            observed = cohort.observed
            completed_ids = cohort.completed_ids
            completed_times = cohort.completed_times
            dropped_ids = cohort.dropped_ids
            chain = cohort.chain
            position = cohort.position
            node_id = cohort.node_id
            ids = node.entry_ids
            length = node.n_entries
            decisions = self._decision_schedule(
                node, position, members, faults
            )
            next_decision = 0  # index into ``decisions``
            while position < length and members.size:
                if next_decision < len(decisions):
                    decision = decisions[next_decision]
                    next_decision += 1
                else:
                    decision = length
                if decision > position:
                    # ---- Closed-form segment [position, decision) ----
                    seg_ids = ids[position:decision]
                    entry_faults = faults[np.ix_(members, seg_ids)]
                    # Execution time of one entry including its
                    # re-executions: attempts 0..F plus F recovery
                    # overheads (hard processes always re-execute until
                    # the fault pattern is exhausted; soft entries of a
                    # segment are fault-free by construction).
                    clamped = np.minimum(entry_faults, width - 1)
                    spent = np.take_along_axis(
                        cum_dur[np.ix_(members, seg_ids)],
                        clamped[:, :, None],
                        axis=2,
                    )[:, :, 0]
                    spent += (entry_faults - clamped) * last_dur[
                        np.ix_(members, seg_ids)
                    ]
                    spent += (
                        entry_faults * node.entry_mu[position:decision][None, :]
                    )
                    completions = clock[:, None] + np.cumsum(spent, axis=1)
                    seg_observed = observed[:, None] + np.cumsum(
                        entry_faults, axis=1
                    )

                    n_members = members.size
                    switched = np.zeros(n_members, dtype=bool)
                    switch_pos = np.full(n_members, -1, dtype=np.int64)
                    switch_target = np.full(n_members, -1, dtype=np.int64)
                    lo_a, hi_a = np.searchsorted(
                        node.arc_positions, [position, decision]
                    )
                    for p in node.arc_positions[lo_a:hi_a]:
                        if switched.all():
                            break
                        offset = int(p) - position
                        newly = self._match_arcs(
                            node.arcs_at[p],
                            completions[:, offset],
                            seg_observed[:, offset],
                            switched,
                            switch_target,
                        )
                        switch_pos[newly] = p
                    if switched.any():
                        for p, target in {
                            (int(a), int(b))
                            for a, b in zip(
                                switch_pos[switched], switch_target[switched]
                            )
                        }:
                            selected = np.flatnonzero(
                                switched
                                & (switch_pos == p)
                                & (switch_target == target)
                            )
                            offset = p - position
                            stack.append(
                                _Cohort(
                                    node_id=target,
                                    position=0,
                                    members=members[selected],
                                    clock=completions[selected, offset],
                                    observed=seg_observed[selected, offset],
                                    completed_ids=completed_ids
                                    + tuple(
                                        int(i) for i in seg_ids[: offset + 1]
                                    ),
                                    completed_times=np.hstack(
                                        [
                                            completed_times[selected],
                                            completions[
                                                selected, : offset + 1
                                            ],
                                        ]
                                    ),
                                    dropped_ids=dropped_ids,
                                    chain=chain + (target,),
                                )
                            )
                        stay = np.flatnonzero(~switched)
                        members = members[stay]
                        clock = completions[stay, -1]
                        observed = seg_observed[stay, -1]
                        completed_times = np.hstack(
                            [completed_times[stay], completions[stay]]
                        )
                    else:
                        clock = completions[:, -1]
                        observed = seg_observed[:, -1]
                        completed_times = np.hstack(
                            [completed_times, completions]
                        )
                    completed_ids = completed_ids + tuple(
                        int(i) for i in seg_ids
                    )
                    position = decision
                    if position >= length or not members.size:
                        break

                # ---- §2.2 decision step at ``position`` ----
                pid = int(ids[position])
                f = faults[members, pid]
                pid_cum = cum_dur[members, pid, :]
                pid_last = last_dur[members, pid]
                entry_mu = int(node.entry_mu[position])
                n_members = members.size
                rows = np.arange(n_members)
                # Time of a full run: attempts 0..F plus F recoveries
                # (identical to the segment closed form above).
                clamped = np.minimum(f, width - 1)
                spent = (
                    pid_cum[rows, clamped]
                    + (f - clamped) * pid_last
                    + f * entry_mu
                )
                reexec_cap = int(node.entry_caps[position])
                retrying = f > 0
                will_complete = ~retrying
                dropped_mask = np.zeros(n_members, dtype=bool)
                drop_at_clock = np.zeros(n_members, dtype=np.int64)
                drop_at_obs = np.zeros(n_members, dtype=np.int64)
                completed_set = frozenset(completed_ids)
                if reexec_cap > 0 and tables.probe_would_raise(
                    node_id, position, completed_set
                ):
                    routed = np.flatnonzero(retrying)
                    result.fast_path[members[routed]] = False
                    retrying[:] = False
                hard_missing = reexec_cap > 0 and tables.missing_hard(
                    node_id, position, completed_set
                )
                benefit = None
                for a in range(int(f.max())):
                    finished = retrying & (f == a)
                    if finished.any():
                        will_complete |= finished
                        retrying &= ~finished
                    deciders = np.flatnonzero(retrying)
                    if deciders.size == 0:
                        break
                    # Fault of attempt ``a`` lands after attempts
                    # 0..a and ``a`` recovery overheads.
                    ca = min(a, width - 1)
                    clock_a = (
                        clock[deciders]
                        + pid_cum[deciders, ca]
                        + (a - ca) * pid_last[deciders]
                        + a * entry_mu
                    )
                    obs_a = observed[deciders] + (a + 1)
                    if a >= reexec_cap or hard_missing:
                        keep = np.zeros(deciders.size, dtype=bool)
                    else:
                        budget = np.maximum(k - obs_a, 0)
                        thresholds = tables.sched_thresholds(
                            node_id, position, a
                        )
                        keep = clock_a <= thresholds[budget]
                        kept = np.flatnonzero(keep)
                        if kept.size:
                            if benefit is None:
                                benefit = tables.benefit(
                                    node_id, position, dropped_ids
                                )
                            keep[kept] = benefit.lookup(clock_a[kept])
                    dropping = deciders[~keep]
                    if dropping.size:
                        dropped_mask[dropping] = True
                        drop_at_clock[dropping] = clock_a[~keep]
                        drop_at_obs[dropping] = obs_a[~keep]
                        retrying[dropping] = False
                will_complete |= retrying
                completer = np.flatnonzero(will_complete)
                comp_completion = clock[completer] + spent[completer]
                comp_observed = observed[completer] + f[completer]
                dropper = np.flatnonzero(dropped_mask)

                switched = np.zeros(completer.size, dtype=bool)
                switch_target = np.full(completer.size, -1, dtype=np.int64)
                arcs = node.arcs_at[position]
                if arcs and completer.size:
                    self._match_arcs(
                        arcs,
                        comp_completion,
                        comp_observed,
                        switched,
                        switch_target,
                    )

                new_completed_ids = completed_ids + (pid,)
                for target in {int(t) for t in switch_target[switched]}:
                    sel = np.flatnonzero(switched & (switch_target == target))
                    local = completer[sel]
                    stack.append(
                        _Cohort(
                            node_id=target,
                            position=0,
                            members=members[local],
                            clock=comp_completion[sel],
                            observed=comp_observed[sel],
                            completed_ids=new_completed_ids,
                            completed_times=np.hstack(
                                [
                                    completed_times[local],
                                    comp_completion[sel, None],
                                ]
                            ),
                            dropped_ids=dropped_ids,
                            chain=chain + (target,),
                        )
                    )
                if dropper.size:
                    stack.append(
                        _Cohort(
                            node_id=node_id,
                            position=position + 1,
                            members=members[dropper],
                            clock=drop_at_clock[dropper],
                            observed=drop_at_obs[dropper],
                            completed_ids=completed_ids,
                            completed_times=completed_times[dropper],
                            dropped_ids=dropped_ids | {pid},
                            chain=chain,
                        )
                    )
                cont = np.flatnonzero(~switched)
                local = completer[cont]
                members = members[local]
                clock = comp_completion[cont]
                observed = comp_observed[cont]
                completed_times = np.hstack(
                    [completed_times[local], comp_completion[cont, None]]
                )
                completed_ids = new_completed_ids
                position += 1
            if members.size:
                self._finalize_members(
                    members,
                    completed_ids,
                    completed_times,
                    observed,
                    chain,
                    result,
                )

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _alphas(self, executed: FrozenSet[int]) -> Dict[str, float]:
        """Stale coefficients for a cohort's executed set (cached)."""
        cached = self._alphas_cache.get(executed)
        if cached is None:
            dropped = [
                self.capp.names[i]
                for i in self.capp.soft_ids
                if int(i) not in executed
            ]
            cached = stale_coefficients(self.app.graph, dropped)
            self._alphas_cache[executed] = cached
        return cached

    def _finalize_members(
        self,
        members: np.ndarray,
        completed_ids: Tuple[int, ...],
        completed_times: np.ndarray,
        observed_final: np.ndarray,
        chain: Tuple[int, ...],
        result: BatchResult,
    ) -> None:
        """Write final outcomes for members sharing one completed set.

        Processes absent from ``completed_ids`` were dropped (soft) or
        never ran (hard → deadline miss); both paths feed the same
        stale-coefficient key, because the oracle's final dropped set
        is exactly "every soft process that did not complete".
        """
        capp = self.capp
        executed_set = frozenset(completed_ids)
        alphas = self._alphas(executed_set)

        utilities = np.zeros(members.size, dtype=np.float64)
        misses = np.zeros(members.size, dtype=bool)
        for pid in capp.hard_ids:
            if int(pid) not in executed_set:
                misses[:] = True
                break
        # Accumulate utility in completion order — the same order (and
        # therefore the same float rounding) as the oracle's finalize.
        period = capp.period
        for column, pid in enumerate(completed_ids):
            times = completed_times[:, column]
            if capp.is_hard[pid]:
                misses |= times > capp.deadline[pid]
                continue
            in_time = times <= period
            if in_time.any():
                values = capp.utilities[pid](times[in_time])
                utilities[in_time] = (
                    utilities[in_time] + alphas[capp.names[pid]] * values
                )

        result.utilities[members] = utilities
        result.deadline_miss[members] = misses
        result.switch_counts[members] = len(chain)
        result.faults_observed[members] = observed_final
        for i in members:
            result.switch_chains[int(i)] = chain


def simulate_batch(
    app: Application,
    plan: Union[QSTree, FSchedule],
    batch: ScenarioBatch,
) -> BatchResult:
    """One-shot convenience wrapper around :class:`BatchSimulator`."""
    return BatchSimulator(app, plan).run_batch(batch)
