"""The batched simulator: whole scenario sets per array operation.

:class:`BatchSimulator` executes a compiled plan over a
:class:`~repro.runtime.engine.batch.ScenarioBatch` by propagating
*cohorts*: groups of scenarios that currently sit at the same tree
node having executed the same process prefix.  Within a cohort,
completion times are prefix sums over the duration arrays (faults on
hard processes add their re-execution and recovery terms in closed
form), arc conditions are evaluated as boolean masks, and matched
scenarios split off into child cohorts.  Scenarios that finish in a
cohort are finalized together: stale-value coefficients depend only on
the cohort's executed set, and the utility sum is accumulated process
by process in the oracle's completion order — the same IEEE-754
operations in the same order, so results are bit-identical to
:class:`~repro.runtime.online.OnlineScheduler`.

Scenarios whose fault pattern touches a scheduled *soft* process need
the online re-execute/drop decision (paper §2.2).  That decision is
resolved against tables compiled per plan
(:class:`~repro.runtime.engine.decisions.DecisionTables`): the S_iH
schedulability probe collapses to one integer clock threshold per
(node, position, attempt, remaining budget), and the keep-vs-drop
utility comparison to a piecewise-constant boolean function of the
clock — both exact, because the tables are evaluated with the same
integer arithmetic and the same oracle float code the online scheduler
runs.  Such scenarios take a position-stepped cohort path
(:meth:`BatchSimulator._run_soft_cohorts`) that splits cohorts on the
decision outcome (re-executed completers vs droppers) and on switch
arcs.  The oracle fallback remains only for plans outside the state
model — trees whose arcs revisit executed or dropped processes, or
whose §2.2 probe the oracle itself would reject — so it is the
reference implementation, never an approximation of it.  The
vectorized share is exposed as :attr:`BatchResult.fast_path` and the
residual oracle share as :attr:`BatchResult.n_fallback`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

import numpy as np

from repro.errors import RuntimeModelError
from repro.model.application import Application
from repro.quasistatic.tree import QSTree
from repro.runtime.engine.batch import ScenarioBatch
from repro.runtime.engine.compile import (
    CompiledNode,
    compile_application,
    compile_tree,
)
from repro.runtime.engine.decisions import DecisionTables
from repro.runtime.online import OnlineScheduler
from repro.scheduling.fschedule import FSchedule
from repro.utility.stale import stale_coefficients


@dataclass
class BatchResult:
    """Per-scenario outcomes of one batch run.

    The four quantities the evaluation layer aggregates (and the
    differential harness compares against the oracle), plus the switch
    chains and a mask of which scenarios took the vectorized path.
    """

    utilities: np.ndarray        # (S,) float64
    deadline_miss: np.ndarray    # (S,) bool
    switch_counts: np.ndarray    # (S,) int64
    faults_observed: np.ndarray  # (S,) int64
    switch_chains: List[Tuple[int, ...]] = field(repr=False)
    fast_path: np.ndarray = field(repr=False)

    @property
    def n_scenarios(self) -> int:
        return len(self.utilities)

    @property
    def n_fast(self) -> int:
        return int(self.fast_path.sum())

    @property
    def n_fallback(self) -> int:
        return self.n_scenarios - self.n_fast


@dataclass
class _Cohort:
    """Scenarios at the same node with the same executed prefix."""

    node_id: int
    members: np.ndarray            # (M,) indices into the batch
    clock: np.ndarray              # (M,) current time per member
    observed: np.ndarray           # (M,) faults observed so far
    prefix_ids: Tuple[int, ...]    # process ids executed before this node
    prefix_completions: np.ndarray  # (M, len(prefix_ids))
    chain: Tuple[int, ...]         # node ids switched through, in order


@dataclass
class _TableCohort:
    """Cohort state of the table-driven (soft-fault) path.

    Same invariant as :class:`_Cohort` — every member has executed and
    dropped exactly the same processes in the same order — but tracked
    position-by-position because §2.2 decisions can split the cohort
    mid-node into completers and droppers.
    """

    node_id: int
    position: int                  # next schedule position to execute
    members: np.ndarray            # (M,) indices into the batch
    clock: np.ndarray              # (M,) current time per member
    observed: np.ndarray           # (M,) faults observed so far
    completed_ids: Tuple[int, ...]  # completed process ids, in order
    completed_times: np.ndarray    # (M, len(completed_ids))
    dropped_ids: FrozenSet[int]    # soft ids dropped after faults
    chain: Tuple[int, ...]         # node ids switched through, in order


class BatchSimulator:
    """Vectorized executor of one plan with an oracle fallback.

    Parameters
    ----------
    app:
        The application being executed.
    plan:
        A :class:`QSTree` or a single :class:`FSchedule` (treated as a
        one-node tree, exactly like :class:`OnlineScheduler`).
    """

    def __init__(self, app: Application, plan: Union[QSTree, FSchedule]):
        self.app = app
        self.capp = compile_application(app)
        self.ctree = compile_tree(self.capp, plan)
        self._oracle = OnlineScheduler(app, plan, record_events=False)
        self._tables = DecisionTables(self.capp, self.ctree, self._oracle)
        self._alphas_cache: Dict[FrozenSet[int], Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run_batch(self, batch: ScenarioBatch) -> BatchResult:
        """Execute every scenario of ``batch``; see :class:`BatchResult`."""
        if batch.names != self.capp.names:
            raise RuntimeModelError(
                "batch process columns do not match the application "
                f"({batch.names!r} vs {self.capp.names!r})"
            )
        n = batch.n_scenarios
        result = BatchResult(
            utilities=np.zeros(n, dtype=np.float64),
            deadline_miss=np.zeros(n, dtype=bool),
            switch_counts=np.zeros(n, dtype=np.int64),
            faults_observed=np.zeros(n, dtype=np.int64),
            switch_chains=[()] * n,
            fast_path=np.zeros(n, dtype=bool),
        )
        faults = batch.fault_counts
        soft_scheduled = self.ctree.soft_scheduled_ids
        if soft_scheduled.size:
            needs_tables = (faults[:, soft_scheduled] > 0).any(axis=1)
        else:
            needs_tables = np.zeros(n, dtype=bool)
        result.fast_path[:] = True
        eligible = np.flatnonzero(~needs_tables)
        if eligible.size:
            self._run_cohorts(batch, eligible, result)
        tabled = np.flatnonzero(needs_tables)
        if tabled.size:
            self._run_soft_cohorts(batch, tabled, result)
        for i in np.flatnonzero(~result.fast_path):
            self._run_oracle(batch, int(i), result)
        return result

    # ------------------------------------------------------------------
    # Fallback
    # ------------------------------------------------------------------
    def _run_oracle(
        self, batch: ScenarioBatch, i: int, result: BatchResult
    ) -> None:
        outcome = self._oracle.run(batch.scenario(i))
        result.utilities[i] = outcome.utility
        result.deadline_miss[i] = not outcome.met_all_hard_deadlines
        result.switch_counts[i] = len(outcome.switches)
        result.faults_observed[i] = outcome.faults_observed
        result.switch_chains[i] = outcome.switches

    # ------------------------------------------------------------------
    # Vectorized cohort propagation
    # ------------------------------------------------------------------
    def _run_cohorts(
        self,
        batch: ScenarioBatch,
        eligible: np.ndarray,
        result: BatchResult,
    ) -> None:
        width = batch.max_attempts
        # cum_dur[s, p, a] = total time of attempts 0..a of process p;
        # the closed form below adds recovery overheads separately.
        cum_dur = batch.attempt_cumsum()
        last_dur = batch.durations[:, :, width - 1]
        faults = batch.fault_counts
        mu = self.capp.mu
        stack: List[_Cohort] = [
            _Cohort(
                node_id=self.ctree.root_id,
                members=eligible,
                clock=np.zeros(eligible.size, dtype=np.int64),
                observed=np.zeros(eligible.size, dtype=np.int64),
                prefix_ids=(),
                prefix_completions=np.empty(
                    (eligible.size, 0), dtype=np.int64
                ),
                chain=(),
            )
        ]
        while stack:
            cohort = stack.pop()
            node = self.ctree.nodes[cohort.node_id]
            # Defensive bail-outs: a malformed tree whose arcs revisit
            # ancestors, or a child re-executing a completed process,
            # is outside the fast path's state model — the oracle
            # handles those scenarios with full generality.
            if len(cohort.chain) > len(self.ctree.nodes) or (
                node.entry_set & set(cohort.prefix_ids)
            ):
                result.fast_path[cohort.members] = False
                continue
            n_members = cohort.members.size
            length = node.n_entries
            if length == 0:
                self._finalize(
                    cohort,
                    node,
                    np.arange(n_members),
                    np.empty((n_members, 0), dtype=np.int64),
                    cohort.observed,
                    result,
                )
                continue
            ids = node.entry_ids
            entry_faults = faults[np.ix_(cohort.members, ids)]
            # Execution time of one entry including its re-executions:
            # attempts 0..F plus F recovery overheads (hard processes
            # always re-execute until the fault pattern is exhausted).
            clamped = np.minimum(entry_faults, width - 1)
            spent = np.take_along_axis(
                cum_dur[np.ix_(cohort.members, ids)],
                clamped[:, :, None],
                axis=2,
            )[:, :, 0]
            spent += (entry_faults - clamped) * last_dur[
                np.ix_(cohort.members, ids)
            ]
            spent += entry_faults * mu[ids][None, :]
            completions = cohort.clock[:, None] + np.cumsum(spent, axis=1)
            observed = cohort.observed[:, None] + np.cumsum(
                entry_faults, axis=1
            )

            switched = np.zeros(n_members, dtype=bool)
            switch_pos = np.full(n_members, -1, dtype=np.int64)
            switch_target = np.full(n_members, -1, dtype=np.int64)
            for position, arcs in enumerate(node.arcs_at):
                if not arcs:
                    continue
                undecided = ~switched
                if not undecided.any():
                    break
                at_completion = completions[:, position]
                at_observed = observed[:, position]
                # Arcs are pre-sorted by (-required_faults, target):
                # the first hit per scenario reproduces the oracle's
                # most-fault-specific tie-break.
                for lo, hi, required, target in arcs:
                    hit = (
                        undecided
                        & (at_completion >= lo)
                        & (at_completion <= hi)
                        & (at_observed >= required)
                    )
                    if hit.any():
                        switch_pos[hit] = position
                        switch_target[hit] = target
                        switched |= hit
                        undecided &= ~hit

            finishers = np.flatnonzero(~switched)
            if finishers.size:
                self._finalize(
                    cohort,
                    node,
                    finishers,
                    completions[finishers],
                    observed[finishers, -1],
                    result,
                )
            if not switched.any():
                continue
            for position, target in {
                (int(p), int(t))
                for p, t in zip(switch_pos[switched], switch_target[switched])
            }:
                selected = np.flatnonzero(
                    switched
                    & (switch_pos == position)
                    & (switch_target == target)
                )
                stack.append(
                    _Cohort(
                        node_id=target,
                        members=cohort.members[selected],
                        clock=completions[selected, position],
                        observed=observed[selected, position],
                        prefix_ids=cohort.prefix_ids
                        + tuple(int(i) for i in ids[: position + 1]),
                        prefix_completions=np.hstack(
                            [
                                cohort.prefix_completions[selected],
                                completions[selected, : position + 1],
                            ]
                        ),
                        chain=cohort.chain + (target,),
                    )
                )

    # ------------------------------------------------------------------
    # Table-driven propagation for soft-faulted scenarios
    # ------------------------------------------------------------------
    def _run_soft_cohorts(
        self,
        batch: ScenarioBatch,
        indices: np.ndarray,
        result: BatchResult,
    ) -> None:
        """Position-stepped cohort propagation with §2.2 decisions.

        Like :meth:`_run_cohorts`, but entries are advanced one
        position at a time so that a faulted soft entry can split the
        cohort into re-executed completers and droppers, resolved
        against the compiled :class:`DecisionTables` instead of the
        oracle.  The oracle keeps only the cases its own §2.2 probe
        would reject (see :meth:`DecisionTables.probe_would_raise`) and
        the malformed-tree bail-outs of the closed-form path.
        """
        width = batch.max_attempts
        cum_dur = batch.attempt_cumsum()
        last_dur = batch.durations[:, :, width - 1]
        faults = batch.fault_counts
        capp = self.capp
        mu = capp.mu
        k = capp.app.k
        tables = self._tables
        n_nodes = len(self.ctree.nodes)
        stack: List[_TableCohort] = [
            _TableCohort(
                node_id=self.ctree.root_id,
                position=0,
                members=indices,
                clock=np.zeros(indices.size, dtype=np.int64),
                observed=np.zeros(indices.size, dtype=np.int64),
                completed_ids=(),
                completed_times=np.empty((indices.size, 0), dtype=np.int64),
                dropped_ids=frozenset(),
                chain=(),
            )
        ]
        while stack:
            cohort = stack.pop()
            node = self.ctree.nodes[cohort.node_id]
            # Same defensive bail-outs as the closed-form path, plus
            # re-scheduling of a *dropped* process: the oracle would
            # run it again (and its §2.2 probe would reject it on the
            # next fault), so such trees stay on the reference path.
            if cohort.position == 0 and (
                len(cohort.chain) > n_nodes
                or (node.entry_set & set(cohort.completed_ids))
                or (node.entry_set & cohort.dropped_ids)
            ):
                result.fast_path[cohort.members] = False
                continue
            members = cohort.members
            clock = cohort.clock
            observed = cohort.observed
            completed_ids = cohort.completed_ids
            completed_times = cohort.completed_times
            dropped_ids = cohort.dropped_ids
            chain = cohort.chain
            position = cohort.position
            node_id = cohort.node_id
            while position < node.n_entries and members.size:
                pid = int(node.entry_ids[position])
                f = faults[members, pid]
                pid_cum = cum_dur[members, pid, :]
                pid_last = last_dur[members, pid]
                entry_mu = int(mu[pid])
                n_members = members.size
                rows = np.arange(n_members)
                # Time of a full run: attempts 0..F plus F recoveries
                # (identical to the closed form of ``_run_cohorts``).
                clamped = np.minimum(f, width - 1)
                spent = (
                    pid_cum[rows, clamped]
                    + (f - clamped) * pid_last
                    + f * entry_mu
                )
                if capp.is_hard[pid] or not (f > 0).any():
                    completer = rows
                    comp_completion = clock + spent
                    comp_observed = observed + f
                    dropper = np.empty(0, dtype=np.int64)
                    drop_clock = np.empty(0, dtype=np.int64)
                    drop_obs = np.empty(0, dtype=np.int64)
                else:
                    reexec_cap = int(node.entry_caps[position])
                    retrying = f > 0
                    will_complete = ~retrying
                    dropped_mask = np.zeros(n_members, dtype=bool)
                    drop_at_clock = np.zeros(n_members, dtype=np.int64)
                    drop_at_obs = np.zeros(n_members, dtype=np.int64)
                    completed_set = frozenset(completed_ids)
                    if reexec_cap > 0 and tables.probe_would_raise(
                        node_id, position, completed_set
                    ):
                        routed = np.flatnonzero(retrying)
                        result.fast_path[members[routed]] = False
                        retrying[:] = False
                    hard_missing = reexec_cap > 0 and tables.missing_hard(
                        node_id, position, completed_set
                    )
                    benefit = None
                    for a in range(int(f.max())):
                        finished = retrying & (f == a)
                        if finished.any():
                            will_complete |= finished
                            retrying &= ~finished
                        deciders = np.flatnonzero(retrying)
                        if deciders.size == 0:
                            break
                        # Fault of attempt ``a`` lands after attempts
                        # 0..a and ``a`` recovery overheads.
                        ca = min(a, width - 1)
                        clock_a = (
                            clock[deciders]
                            + pid_cum[deciders, ca]
                            + (a - ca) * pid_last[deciders]
                            + a * entry_mu
                        )
                        obs_a = observed[deciders] + (a + 1)
                        if a >= reexec_cap or hard_missing:
                            keep = np.zeros(deciders.size, dtype=bool)
                        else:
                            budget = np.maximum(k - obs_a, 0)
                            thresholds = tables.sched_thresholds(
                                node_id, position, a
                            )
                            keep = clock_a <= thresholds[budget]
                            kept = np.flatnonzero(keep)
                            if kept.size:
                                if benefit is None:
                                    benefit = tables.benefit(
                                        node_id, position, dropped_ids
                                    )
                                keep[kept] = benefit.lookup(clock_a[kept])
                        dropping = deciders[~keep]
                        if dropping.size:
                            dropped_mask[dropping] = True
                            drop_at_clock[dropping] = clock_a[~keep]
                            drop_at_obs[dropping] = obs_a[~keep]
                            retrying[dropping] = False
                    will_complete |= retrying
                    completer = np.flatnonzero(will_complete)
                    comp_completion = clock[completer] + spent[completer]
                    comp_observed = observed[completer] + f[completer]
                    dropper = np.flatnonzero(dropped_mask)
                    drop_clock = drop_at_clock[dropper]
                    drop_obs = drop_at_obs[dropper]

                arcs = node.arcs_at[position]
                switched = np.zeros(completer.size, dtype=bool)
                switch_target = np.full(completer.size, -1, dtype=np.int64)
                if arcs and completer.size:
                    undecided = ~switched
                    for lo, hi, required, target in arcs:
                        hit = (
                            undecided
                            & (comp_completion >= lo)
                            & (comp_completion <= hi)
                            & (comp_observed >= required)
                        )
                        if hit.any():
                            switch_target[hit] = target
                            switched |= hit
                            undecided &= ~hit

                new_completed_ids = completed_ids + (pid,)
                for target in {int(t) for t in switch_target[switched]}:
                    sel = np.flatnonzero(switched & (switch_target == target))
                    local = completer[sel]
                    stack.append(
                        _TableCohort(
                            node_id=target,
                            position=0,
                            members=members[local],
                            clock=comp_completion[sel],
                            observed=comp_observed[sel],
                            completed_ids=new_completed_ids,
                            completed_times=np.hstack(
                                [
                                    completed_times[local],
                                    comp_completion[sel, None],
                                ]
                            ),
                            dropped_ids=dropped_ids,
                            chain=chain + (target,),
                        )
                    )
                if dropper.size:
                    stack.append(
                        _TableCohort(
                            node_id=node_id,
                            position=position + 1,
                            members=members[dropper],
                            clock=drop_clock,
                            observed=drop_obs,
                            completed_ids=completed_ids,
                            completed_times=completed_times[dropper],
                            dropped_ids=dropped_ids | {pid},
                            chain=chain,
                        )
                    )
                cont = np.flatnonzero(~switched)
                local = completer[cont]
                members = members[local]
                clock = comp_completion[cont]
                observed = comp_observed[cont]
                completed_times = np.hstack(
                    [completed_times[local], comp_completion[cont, None]]
                )
                completed_ids = new_completed_ids
                position += 1
            if members.size:
                self._finalize_members(
                    members,
                    completed_ids,
                    completed_times,
                    observed,
                    chain,
                    result,
                )

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _alphas(self, executed: FrozenSet[int]) -> Dict[str, float]:
        """Stale coefficients for a cohort's executed set (cached)."""
        cached = self._alphas_cache.get(executed)
        if cached is None:
            dropped = [
                self.capp.names[i]
                for i in self.capp.soft_ids
                if int(i) not in executed
            ]
            cached = stale_coefficients(self.app.graph, dropped)
            self._alphas_cache[executed] = cached
        return cached

    def _finalize(
        self,
        cohort: _Cohort,
        node: CompiledNode,
        local: np.ndarray,
        node_completions: np.ndarray,
        observed_final: np.ndarray,
        result: BatchResult,
    ) -> None:
        """Finalize the cohort members at ``local`` (cohort-relative)."""
        self._finalize_members(
            cohort.members[local],
            cohort.prefix_ids + tuple(int(i) for i in node.entry_ids),
            np.hstack([cohort.prefix_completions[local], node_completions]),
            observed_final,
            cohort.chain,
            result,
        )

    def _finalize_members(
        self,
        members: np.ndarray,
        completed_ids: Tuple[int, ...],
        completed_times: np.ndarray,
        observed_final: np.ndarray,
        chain: Tuple[int, ...],
        result: BatchResult,
    ) -> None:
        """Write final outcomes for members sharing one completed set.

        Processes absent from ``completed_ids`` were dropped (soft) or
        never ran (hard → deadline miss); both paths feed the same
        stale-coefficient key, because the oracle's final dropped set
        is exactly "every soft process that did not complete".
        """
        capp = self.capp
        executed_set = frozenset(completed_ids)
        alphas = self._alphas(executed_set)

        utilities = np.zeros(members.size, dtype=np.float64)
        misses = np.zeros(members.size, dtype=bool)
        for pid in capp.hard_ids:
            if int(pid) not in executed_set:
                misses[:] = True
                break
        # Accumulate utility in completion order — the same order (and
        # therefore the same float rounding) as the oracle's finalize.
        period = capp.period
        for column, pid in enumerate(completed_ids):
            times = completed_times[:, column]
            if capp.is_hard[pid]:
                misses |= times > capp.deadline[pid]
                continue
            in_time = times <= period
            if in_time.any():
                values = capp.utilities[pid](times[in_time])
                utilities[in_time] = (
                    utilities[in_time] + alphas[capp.names[pid]] * values
                )

        result.utilities[members] = utilities
        result.deadline_miss[members] = misses
        result.switch_counts[members] = len(chain)
        result.faults_observed[members] = observed_final
        for i in members:
            result.switch_chains[int(i)] = chain


def simulate_batch(
    app: Application,
    plan: Union[QSTree, FSchedule],
    batch: ScenarioBatch,
) -> BatchResult:
    """One-shot convenience wrapper around :class:`BatchSimulator`."""
    return BatchSimulator(app, plan).run_batch(batch)
