"""Sharded Monte-Carlo evaluation across ``multiprocessing`` workers.

:class:`ParallelEvaluator` splits the scenario index range of a
Monte-Carlo evaluation into contiguous shards, one per job.  The
scenario sets are packed once into :class:`ScenarioBatch` arrays and
published to the workers through ``multiprocessing.shared_memory`` —
workers attach to the segments in their initializer and never copy or
re-derive the scenario data.  Shard boundaries select which slice a
worker simulates; per-scenario results are independent of the slicing,
so the merged :class:`~repro.evaluation.montecarlo.EvaluationOutcome`
per fault count is identical to a single-process run, for any job
count.

The pool is *persistent*: it is created lazily on the first
``evaluate()`` and reused across ``evaluate()``/``compare()`` calls
for the evaluator's lifetime (also reachable via ``with``), so
comparing many plans pays the fork/attach cost once.  Each worker
compiles a plan once per ``evaluate()`` call — the segment-stepped
``BatchSimulator`` core with its §2.2 decision tables and per-node
segment indexes — and reuses it across that plan's fault counts
(``tests/test_parallel_pool.py`` pins both the pool reuse and the
per-plan compile count).  Workers default to the batched engine but
honour ``engine="reference"`` for differential measurements and
``engine="kernel"`` for the generated-C core (the parent warms the
shared artifact cache before fanning out, so workers load the prebuilt
object instead of racing to compile it).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import signal
import sys
import time
import warnings
import weakref
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing import connection, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RuntimeModelError

#: Parent-side unique tokens for worker-context switching (see
#: :func:`_simulate_slice_ctx` and the synthesis counterpart).  A token
#: names one published evaluation context; workers re-initialize
#: themselves when they see a token they do not hold yet, which is what
#: makes a generic pool reusable across applications.
_CONTEXT_TOKENS = itertools.count(1)


def next_context_token() -> int:
    """A fresh parent-process-unique worker-context token."""
    return next(_CONTEXT_TOKENS)


def shard_bounds(n_scenarios: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal scenario ranges, one per shard.

    Deterministic in (``n_scenarios``, ``workers``) — the foundation of
    outcome-preserving sharding for both the process and the thread
    executors.
    """
    shards = min(workers, n_scenarios)
    size, extra = divmod(n_scenarios, shards)
    bounds = []
    lo = 0
    for shard in range(shards):
        hi = lo + size + (1 if shard < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def merge_shard_outcomes(
    fault_counts: Sequence[int], shards: Sequence[_ShardRaw]
) -> Dict[int, "EvaluationOutcome"]:
    """Merge per-shard raw results in shard (= scenario range) order.

    Per-scenario results are independent of the slicing, so merging the
    shards of :func:`shard_bounds` reproduces a single in-process run
    bit for bit, for any shard count.  Shared by the process and the
    thread executors.
    """
    from repro.evaluation.montecarlo import EvaluationOutcome

    outcomes: Dict[int, EvaluationOutcome] = {}
    for faults in fault_counts:
        utilities: List[float] = []
        misses = switches = observed = fallbacks = 0
        for shard in shards:
            (
                shard_utilities,
                shard_misses,
                shard_switches,
                shard_observed,
                shard_fallbacks,
            ) = shard[faults]
            utilities.extend(shard_utilities)
            misses += shard_misses
            switches += shard_switches
            observed += shard_observed
            fallbacks += shard_fallbacks
        outcomes[faults] = EvaluationOutcome.aggregate(
            utilities, misses, switches, observed, fallbacks
        )
    return outcomes

#: One shard's raw result per fault count: (utilities, misses, total
#: switches, total observed faults, oracle fallbacks).
_ShardRaw = Dict[int, Tuple[List[float], int, int, int, int]]

#: (shm name of durations, durations shape, shm name of fault counts)
_BatchSpec = Tuple[str, Tuple[int, int, int], str]

#: Worker-process state installed by :func:`_worker_init`.
_WORKER: Optional[Dict] = None


def _attach_batches(
    names: Tuple[str, ...], specs: Dict[int, _BatchSpec]
) -> Tuple[Dict[int, "ScenarioBatch"], List[shared_memory.SharedMemory]]:
    """Attach the published scenario arrays (no copies)."""
    from repro.runtime.engine.batch import ScenarioBatch

    batches: Dict[int, ScenarioBatch] = {}
    segments: List[shared_memory.SharedMemory] = []
    for faults, (durations_name, shape, fault_name) in specs.items():
        durations_shm = shared_memory.SharedMemory(name=durations_name)
        fault_shm = shared_memory.SharedMemory(name=fault_name)
        segments += [durations_shm, fault_shm]
        durations = np.ndarray(shape, dtype=np.int64, buffer=durations_shm.buf)
        fault_counts = np.ndarray(
            shape[:2], dtype=np.int64, buffer=fault_shm.buf
        )
        batches[faults] = ScenarioBatch(names, durations, fault_counts)
    return batches, segments


def _worker_init(app, names, specs, engine) -> None:
    """Pool initializer: attach shared batches, prime per-plan caches."""
    global _WORKER
    batches, segments = _attach_batches(tuple(names), specs)
    _WORKER = {
        "app": app,
        "engine": engine,
        "batches": batches,
        "segments": segments,  # keep attached for the worker's lifetime
        "plan_key": None,
        "simulator": None,
    }


def _simulate_slice(task) -> _ShardRaw:
    """Worker entry point: simulate scenarios ``[lo, hi)`` of each set.

    ``plan_key`` identifies the plan across a fan-out: the compiled
    ``BatchSimulator`` (decision tables included) is built on first
    sight and reused for every fault count of the same plan.
    """
    plan_key, plan, lo, hi = task
    state = _WORKER
    app = state["app"]
    out: _ShardRaw = {}
    if state["engine"] in ("batched", "kernel"):
        from repro.runtime.engine.batch import ScenarioBatch
        from repro.runtime.engine.simulator import BatchSimulator

        if state["plan_key"] != plan_key:
            if state["engine"] == "kernel":
                # The parent warmed the on-disk artifact cache before
                # fanning out, so this is normally a load, not a build.
                from repro.runtime.engine.kernel import KernelSimulator

                state["simulator"] = KernelSimulator(app, plan)
            else:
                state["simulator"] = BatchSimulator(app, plan)
            state["plan_key"] = plan_key
        simulator = state["simulator"]
        for faults, batch in state["batches"].items():
            piece = ScenarioBatch(
                batch.names,
                batch.durations[lo:hi],
                batch.fault_counts[lo:hi],
            )
            result = simulator.run_batch(piece)
            out[faults] = (
                [float(u) for u in result.utilities],
                int(result.deadline_miss.sum()),
                int(result.switch_counts.sum()),
                int(result.faults_observed.sum()),
                result.n_fallback,
            )
    else:
        from repro.evaluation.montecarlo import MonteCarloEvaluator
        from repro.runtime.online import OnlineScheduler

        scheduler = OnlineScheduler(app, plan, record_events=False)
        for faults, batch in state["batches"].items():
            out[faults] = MonteCarloEvaluator._reference_raw(
                scheduler, [batch.scenario(i) for i in range(lo, hi)]
            )
    return out


#: Worker-process state for *contextual* tasks (shared generic pools).
#: Holds only the most recent context: experiment sweeps move from one
#: application to the next, never back.
_CTX_WORKER: Optional[Dict] = None


def _simulate_slice_ctx(task):
    """Worker entry point for tasks carrying their own context.

    ``task`` is ``(context, inner)`` where ``context`` is
    ``(token, app, names, specs, engine)`` and ``inner`` is the
    ``(plan_key, plan, lo, hi)`` tuple of :func:`_simulate_slice`.  A
    worker of a *generic* pool (spawned once per experiment run, no
    initializer) installs the context on first sight of its token —
    attaching the published shared-memory batches, no copies — and
    reuses it for every later task with the same token.  A new token
    replaces the previous context, closing its segment attachments, so
    one pool serves any number of applications in sequence.
    """
    global _WORKER, _CTX_WORKER
    context, inner = task
    token, app, names, specs, engine = context
    state = _CTX_WORKER
    if state is None or state["token"] != token:
        if state is not None:
            for segment in state["segments"]:
                segment.close()
        batches, segments = _attach_batches(tuple(names), specs)
        state = {
            "token": token,
            "app": app,
            "engine": engine,
            "batches": batches,
            "segments": segments,
            "plan_key": None,
            "simulator": None,
        }
        _CTX_WORKER = state
    # _simulate_slice reads the module global; point it at the current
    # context so both task forms share one execution path.
    _WORKER = state
    return _simulate_slice(inner)


def _release(pool, segments) -> None:
    """Tear down a pool and its shared segments (idempotent-by-use)."""
    if pool is not None:
        pool.terminate()
        pool.join()
    for segment in segments:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


@dataclass
class PoolRecovery:
    """Counters of one pool's (or the process's) fault handling.

    ``worker_deaths`` counts workers that died unexpectedly mid-run
    (a crash or SIGKILL), ``timeouts`` workers killed for exceeding the
    per-task deadline, ``respawns`` replacement workers forked,
    ``task_retries`` tasks re-dispatched after losing their worker,
    ``degraded_tasks`` tasks that exhausted their retry budget and ran
    in-process instead, and ``pool_degradations`` pools that spent
    their whole respawn budget and finished the run in-process
    (``jobs=N`` → ``jobs=1`` with a warning, never an abort).
    """

    worker_deaths: int = 0
    timeouts: int = 0
    respawns: int = 0
    task_retries: int = 0
    degraded_tasks: int = 0
    pool_degradations: int = 0

    def any(self) -> bool:
        return bool(
            self.worker_deaths
            or self.timeouts
            or self.respawns
            or self.task_retries
            or self.degraded_tasks
            or self.pool_degradations
        )

    def snapshot(self) -> "PoolRecovery":
        return replace(self)

    def merge(self, other: "PoolRecovery") -> None:
        self.worker_deaths += other.worker_deaths
        self.timeouts += other.timeouts
        self.respawns += other.respawns
        self.task_retries += other.task_retries
        self.degraded_tasks += other.degraded_tasks
        self.pool_degradations += other.pool_degradations

    def summary(self) -> str:
        parts = [
            f"{self.worker_deaths} worker death(s)",
            f"{self.respawns} respawn(s)",
            f"{self.task_retries} retried task(s)",
        ]
        if self.timeouts:
            parts.append(f"{self.timeouts} timeout(s)")
        if self.degraded_tasks:
            parts.append(
                f"{self.degraded_tasks} in-process fallback task(s)"
            )
        if self.pool_degradations:
            parts.append(
                f"{self.pool_degradations} pool(s) degraded to "
                f"in-process"
            )
        return " / ".join(parts)


#: Process-wide aggregate over every pool (the CLI summary line reads
#: this; :func:`reset_pool_recovery` scopes it to one invocation).
_GLOBAL_RECOVERY = PoolRecovery()


def pool_recovery() -> PoolRecovery:
    """The process-wide recovery counters (live object)."""
    return _GLOBAL_RECOVERY


def reset_pool_recovery() -> None:
    """Zero the process-wide counters (start of a CLI invocation)."""
    _GLOBAL_RECOVERY.worker_deaths = 0
    _GLOBAL_RECOVERY.timeouts = 0
    _GLOBAL_RECOVERY.respawns = 0
    _GLOBAL_RECOVERY.task_retries = 0
    _GLOBAL_RECOVERY.degraded_tasks = 0
    _GLOBAL_RECOVERY.pool_degradations = 0


def _chaos_plan():
    """The active chaos plan, without importing the chaos module.

    Consulting ``sys.modules`` keeps this layer free of a pipeline
    import (no cycle) and free even of the import cost: a plan can
    only be active if something already imported and activated it.
    """
    module = sys.modules.get("repro.pipeline.chaos")
    return module.current() if module is not None else None


def _apply_chaos_action(action: str) -> None:  # pragma: no cover - dies
    """Worker-side execution of an injected fault."""
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "hang":
        while True:
            time.sleep(3600.0)


def _portable_exception(exc: BaseException) -> BaseException:
    """``exc`` if it survives pickling, else a picklable stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeModelError(f"worker task failed: {exc!r}")


def _pool_worker_main(task_r, result_w, initializer, initargs) -> None:
    """Worker process body: init once, then a recv→run→send loop.

    Messages are ``(gen, seq, fn, task, chaos_action)``; replies are
    ``(gen, seq, ok, result_or_exception)``.  ``gen`` identifies the
    :meth:`TaskPool.map` call, so the parent can discard results of an
    aborted map instead of mistaking them for the current one's.
    """
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            item = task_r.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        gen, seq, fn, task, action = item
        if action is not None:
            _apply_chaos_action(action)
        try:
            payload = (gen, seq, True, fn(task))
        except BaseException as exc:
            payload = (gen, seq, False, _portable_exception(exc))
        try:
            result_w.send(payload)
        except (BrokenPipeError, OSError):
            return
        except Exception as exc:  # unpicklable result
            result_w.send(
                (
                    gen,
                    seq,
                    False,
                    RuntimeModelError(
                        f"worker result not picklable: {exc!r}"
                    ),
                )
            )


class _Worker:
    """One worker process plus its private task/result pipes.

    Per-worker pipes (instead of shared queues) are the crash-safety
    foundation: a worker SIGKILLed mid-``send`` can only tear its own
    channel, never wedge a lock other workers and the parent share —
    the classic way ``multiprocessing.Pool.map`` deadlocks on a dead
    worker.
    """

    __slots__ = ("process", "task_w", "result_r", "current")

    def __init__(self, process, task_w, result_r):
        self.process = process
        self.task_w = task_w
        self.result_r = result_r
        #: (gen, seq, dispatched_at) of the in-flight task, or None.
        self.current: Optional[Tuple[int, int, float]] = None


#: Parent poll interval while waiting on results/sentinels.
_POLL_SECONDS = 0.05


class TaskPool:
    """Small task-sharding facade over a persistent worker pool.

    Generalizes the scenario-sharding pool of :class:`ParallelEvaluator`
    to arbitrary picklable tasks: workers are spawned once (running
    ``initializer(*initargs)`` to install whatever per-process context
    the task function needs) and reused for every :meth:`map` call.
    ``map`` preserves task order, so a caller that merges results
    positionally is deterministic for any worker count.  Users:

    * :class:`ParallelEvaluator` — scenario-slice tasks over shared
      scenario batches;
    * :class:`repro.quasistatic.synthesis.SynthesisEngine` — FTQS
      candidate-evaluation tasks of one expansion layer.

    A pool spawned with *no* initializer is a **generic** pool: its
    workers carry no application state and are (re-)initialized by the
    tasks themselves (contextual tasks, see
    :func:`_simulate_slice_ctx`).  That is how
    :class:`repro.pipeline.resources.ResourceManager` shares one pool
    across every application of an experiment run instead of paying a
    spawn per application.

    **Fault tolerance.**  The pool runs its own workers over private
    pipes and supervises them through their process sentinels, so a
    worker that dies mid-task (a crash, an OOM kill, injected chaos)
    is *detected* — not hung on, which is what
    ``multiprocessing.Pool.map`` does — and its task is re-dispatched
    to a respawned worker.  Task results are pure functions of the
    task, so a retry is bit-identical to an undisturbed run.  Each
    task gets at most ``task_retries`` re-dispatches before it runs
    in-process (a counted, warned degradation, never an abort); a pool
    that burns its whole respawn budget degrades to in-process
    execution for the rest of the run the same way.  ``task_timeout``
    (seconds, ``None`` = wait forever) additionally treats an
    over-deadline task's worker as dead.  Per-pool counters live on
    :attr:`recovery`; process-wide aggregates on
    :func:`pool_recovery`.
    """

    def __init__(
        self,
        processes: int,
        initializer=None,
        initargs=(),
        task_timeout: Optional[float] = None,
        task_retries: int = 2,
    ):
        if processes < 1:
            raise RuntimeModelError(
                f"worker count must be positive, got {processes}"
            )
        if task_timeout is not None and task_timeout <= 0:
            raise RuntimeModelError(
                f"task_timeout must be positive, got {task_timeout}"
            )
        if task_retries < 0:
            raise RuntimeModelError(
                f"task_retries must be >= 0, got {task_retries}"
            )
        # Start the shared-memory resource tracker *before* forking
        # workers.  A generic pool is often spawned before the first
        # SharedMemory segment exists; workers forked without a running
        # tracker would each lazily start their own on attach, and those
        # private trackers double-unlink the parent's segments at
        # shutdown (spurious "leaked shared_memory" warnings).
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self.processes = processes
        self.task_timeout = task_timeout
        self.task_retries = task_retries
        self.recovery = PoolRecovery()
        self._ctx = multiprocessing.get_context()
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._inline_ready = initializer is None
        self._closed = False
        self._degraded = False
        self._respawn_budget = max(4, 2 * processes)
        self._gen = 0
        self._workers: List[_Worker] = [
            self._spawn_worker() for _ in range(processes)
        ]

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _Worker:
        task_r, task_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(task_r, result_w, self._initializer, self._initargs),
            daemon=True,
        )
        process.start()
        # Parent keeps the write end of tasks, read end of results.
        task_r.close()
        result_w.close()
        return _Worker(process, task_w, result_r)

    @staticmethod
    def _stop_worker(worker: _Worker) -> None:
        """Kill/join/close one worker; never raises (crash-safe)."""
        try:
            if worker.process.is_alive():
                worker.process.kill()
        except Exception:
            pass
        try:
            worker.process.join(timeout=5.0)
        except Exception:
            pass
        for pipe in (worker.task_w, worker.result_r):
            try:
                pipe.close()
            except Exception:
                pass

    def _note(self, counter: str, amount: int = 1) -> None:
        setattr(
            self.recovery, counter, getattr(self.recovery, counter) + amount
        )
        setattr(
            _GLOBAL_RECOVERY,
            counter,
            getattr(_GLOBAL_RECOVERY, counter) + amount,
        )

    def _run_inline(self, fn, task):
        """In-process degraded execution (bit-identical by purity)."""
        if not self._inline_ready:
            self._initializer(*self._initargs)
            self._inline_ready = True
        return fn(task)

    def _degrade(self, pending: deque) -> None:
        """Give up on worker processes for the rest of this pool's life."""
        self._note("pool_degradations")
        warnings.warn(
            "TaskPool spent its worker respawn budget; finishing the "
            "run in-process (results are unchanged, parallelism is "
            "lost)",
            RuntimeWarning,
            stacklevel=3,
        )
        for worker in self._workers:
            if worker.current is not None:
                pending.append(worker.current[1])
            self._stop_worker(worker)
        self._workers = []
        self._degraded = True

    # ------------------------------------------------------------------
    # map
    # ------------------------------------------------------------------
    def map(self, fn, tasks):
        """Run ``fn`` over ``tasks``; results in task order.

        Worker crashes, injected chaos kills and task timeouts are
        recovered internally (see the class docstring); the only
        exceptions that propagate are the task function's own.
        """
        if self._closed:
            raise RuntimeModelError("cannot map on a closed TaskPool")
        tasks = list(tasks)
        if not tasks:
            return []
        self._gen += 1
        gen = self._gen
        plan = _chaos_plan()
        n = len(tasks)
        results: List = [None] * n
        done = [False] * n
        attempts = [0] * n
        pending: deque = deque(range(n))
        inline: deque = deque()
        remaining = n

        while remaining:
            if self._degraded or not self._workers:
                if not self._degraded:
                    self._degrade(pending)
                inline.extend(pending)
                pending.clear()
            while inline:
                seq = inline.popleft()
                if done[seq]:
                    continue
                results[seq] = self._run_inline(fn, tasks[seq])
                done[seq] = True
                remaining -= 1
            if not remaining:
                break
            self._dispatch(fn, tasks, gen, pending, done, attempts, plan)
            remaining -= self._collect(gen, results, done)
            self._reap(gen, pending, inline, done, attempts)
        return results

    def _dispatch(self, fn, tasks, gen, pending, done, attempts, plan):
        """Hand pending tasks to idle live workers."""
        for worker in self._workers:
            if not pending:
                return
            if worker.current is not None or not worker.process.is_alive():
                continue
            seq = pending.popleft()
            while done[seq] and pending:
                seq = pending.popleft()
            if done[seq]:
                return
            action = (
                plan.pool_action(seq, attempts[seq])
                if plan is not None
                else None
            )
            try:
                worker.task_w.send((gen, seq, fn, tasks[seq], action))
            except (BrokenPipeError, OSError):
                # Died since the last reap; the next reap respawns it.
                pending.appendleft(seq)
                continue
            worker.current = (gen, seq, time.monotonic())

    def _collect(self, gen, results, done) -> int:
        """Wait briefly for results; returns how many tasks finished.

        Waits on the busy workers' result pipes *and* their process
        sentinels, so a SIGKILLed worker wakes the parent immediately
        instead of stalling the map until a timeout.
        """
        busy = [w for w in self._workers if w.current is not None]
        if not busy:
            return 0
        by_pipe = {w.result_r: w for w in busy}
        sentinels = [w.process.sentinel for w in busy]
        ready = connection.wait(
            list(by_pipe) + sentinels, timeout=_POLL_SECONDS
        )
        collected = 0
        for obj in ready:
            worker = by_pipe.get(obj)
            if worker is None:
                continue  # a sentinel: the reap pass handles the death
            try:
                rgen, seq, ok, payload = worker.result_r.recv()
            except (EOFError, OSError):
                continue  # torn mid-send: reaped as a crash
            # One in-flight task per worker, FIFO: any reply frees it.
            worker.current = None
            if rgen != gen or done[seq]:
                continue  # stale reply from an aborted or retried map
            if not ok:
                raise payload
            results[seq] = payload
            done[seq] = True
            collected += 1
        return collected

    def _reap(self, gen, pending, inline, done, attempts) -> None:
        """Detect dead/over-deadline workers; requeue, respawn."""
        now = time.monotonic()
        for worker in list(self._workers):
            crashed = not worker.process.is_alive()
            timed_out = (
                not crashed
                and worker.current is not None
                and self.task_timeout is not None
                and now - worker.current[2] > self.task_timeout
            )
            if not crashed and not timed_out:
                continue
            self._note("timeouts" if timed_out else "worker_deaths")
            current = worker.current
            self._stop_worker(worker)
            self._workers.remove(worker)
            if current is not None:
                cgen, seq, _ = current
                if cgen == gen and not done[seq]:
                    attempts[seq] += 1
                    if attempts[seq] > self.task_retries:
                        self._note("degraded_tasks")
                        warnings.warn(
                            f"pool task {seq} lost its worker "
                            f"{attempts[seq]} times; degrading it to "
                            f"in-process execution (result unchanged)",
                            RuntimeWarning,
                            stacklevel=4,
                        )
                        inline.append(seq)
                    else:
                        self._note("task_retries")
                        pending.append(seq)
            if self._respawn_budget > 0:
                self._respawn_budget -= 1
                self._note("respawns")
                self._workers.append(self._spawn_worker())

    # -- lifecycle (terminate/join mirror multiprocessing.Pool so the
    # facade drops into code that managed a raw Pool before) ----------
    def terminate(self) -> None:
        """Signal every worker to stop (idempotent, crash-safe)."""
        for worker in self._workers:
            try:
                if worker.process.is_alive():
                    worker.process.terminate()
            except Exception:
                pass

    def join(self) -> None:
        """Reap every worker and release their pipes (idempotent)."""
        for worker in self._workers:
            self._stop_worker(worker)
        self._workers = []
        self._closed = True

    def close(self) -> None:
        """Terminate the workers (idempotent, safe after crashes)."""
        self.terminate()
        self.join()

    def __enter__(self) -> "TaskPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ParallelEvaluator:
    """Deterministic sharded version of the Monte-Carlo evaluation.

    Parameters mirror :class:`MonteCarloEvaluator`, plus ``jobs`` (the
    worker count), ``engine`` (which simulator each worker runs) and
    ``source`` (an optional :class:`MonteCarloEvaluator` whose packed
    scenario batches are shared instead of re-derived).  ``evaluate``
    returns the same ``{fault count: EvaluationOutcome}`` mapping a
    single-process evaluator produces.

    ``pool`` may be a *borrowed* generic :class:`TaskPool` (owned by a
    :class:`repro.pipeline.resources.ResourceManager`): the evaluator
    then publishes its scenario segments as a worker context and ships
    context-carrying tasks instead of spawning its own pool;
    :meth:`close` releases the segments but leaves the pool running for
    the next application.
    """

    def __init__(
        self,
        app,
        n_scenarios: int = 200,
        fault_counts: Optional[Sequence[int]] = None,
        seed: int = 1,
        engine: str = "batched",
        jobs: int = 2,
        source=None,
        pool: Optional[TaskPool] = None,
        execution=None,
    ):
        from repro.execution import ExecutionConfig

        if execution is not None:
            execution = ExecutionConfig.coerce(execution)
            engine = execution.engine
            jobs = execution.workers
        if jobs < 1:
            raise RuntimeModelError(f"jobs must be positive, got {jobs}")
        self.app = app
        self.n_scenarios = n_scenarios
        self.fault_counts = (
            list(fault_counts)
            if fault_counts is not None
            else list(range(app.k + 1))
        )
        self.seed = seed
        self.engine = engine
        self.jobs = jobs
        self.execution = execution or ExecutionConfig(
            engine=engine,
            mode="inline" if jobs == 1 else "processes",
            workers=jobs,
        )
        # A provided source (the owning MonteCarloEvaluator) is held
        # weakly: it owns *us*, and a strong back-reference would form
        # a cycle that delays pool/segment release until a cyclic GC
        # pass instead of freeing promptly by refcount.
        self._source_ref = weakref.ref(source) if source is not None else None
        self._own_source = None
        self._pool = None
        self._borrowed_pool = pool
        self._context = None
        self._segments: List[shared_memory.SharedMemory] = []
        self._plan_counter = 0
        self._plan_keys: Dict[int, Tuple[object, int]] = {}
        self._finalizer = None

    # ------------------------------------------------------------------
    # Pool / shared-memory lifecycle
    # ------------------------------------------------------------------
    def _source(self) -> "MonteCarloEvaluator":
        """The evaluator supplying scenario sets (derived if absent)."""
        if self._source_ref is not None:
            source = self._source_ref()
            if source is not None:
                return source
        if self._own_source is None:
            from repro.evaluation.montecarlo import MonteCarloEvaluator

            self._own_source = MonteCarloEvaluator(
                self.app,
                n_scenarios=self.n_scenarios,
                fault_counts=self.fault_counts,
                seed=self.seed,
            )
        return self._own_source

    def _batches(self) -> Dict[int, "ScenarioBatch"]:
        """Packed scenario sets, from the source (cached there)."""
        source = self._source()
        return {f: source._batch_for(f) for f in self.fault_counts}

    def _spawn_pool(self, processes: int, names, specs):
        """Create the worker pool (separate for spawn-count tests)."""
        return TaskPool(
            processes,
            initializer=_worker_init,
            initargs=(self.app, names, specs, self.engine),
        )

    def _publish(self, batches) -> Tuple[Tuple[str, ...], Dict[int, _BatchSpec]]:
        """Copy the batch arrays into shared-memory segments."""
        specs: Dict[int, _BatchSpec] = {}
        names: Tuple[str, ...] = ()
        for faults, batch in batches.items():
            names = batch.names
            durations = np.ascontiguousarray(batch.durations, dtype=np.int64)
            fault_counts = np.ascontiguousarray(
                batch.fault_counts, dtype=np.int64
            )
            durations_shm = shared_memory.SharedMemory(
                create=True, size=durations.nbytes
            )
            fault_shm = shared_memory.SharedMemory(
                create=True, size=fault_counts.nbytes
            )
            np.ndarray(
                durations.shape, dtype=np.int64, buffer=durations_shm.buf
            )[:] = durations
            np.ndarray(
                fault_counts.shape, dtype=np.int64, buffer=fault_shm.buf
            )[:] = fault_counts
            self._segments += [durations_shm, fault_shm]
            specs[faults] = (durations_shm.name, durations.shape, fault_shm.name)
        return names, specs

    def _ensure_pool(self, processes: int) -> None:
        if self._borrowed_pool is not None:
            if self._context is None:
                try:
                    names, specs = self._publish(self._batches())
                except BaseException:
                    _release(None, self._segments)
                    self._segments = []
                    raise
                self._context = (
                    next_context_token(),
                    self.app,
                    names,
                    specs,
                    self.engine,
                )
                # The borrowed pool outlives us; only the segments need
                # a safety net.
                self._finalizer = weakref.finalize(
                    self, _release, None, list(self._segments)
                )
            return
        if self._pool is not None:
            return
        try:
            names, specs = self._publish(self._batches())
            self._pool = self._spawn_pool(processes, names, specs)
        except BaseException:
            # Publish or spawn failed partway: unlink whatever was
            # created now, or it survives in /dev/shm until exit.
            _release(self._pool, self._segments)
            self._pool = None
            self._segments = []
            raise
        self._finalizer = weakref.finalize(
            self, _release, self._pool, list(self._segments)
        )

    def close(self) -> None:
        """Release the segments; terminate the pool if it is ours.

        With a borrowed pool only the published scenario segments are
        unlinked (workers drop their attachments when the next context
        arrives); the pool itself belongs to the resource manager.
        """
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        elif self._segments:  # published but never pooled
            _release(self._pool, self._segments)
        self._pool = None
        self._context = None
        self._segments = []
        self._plan_keys.clear()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _plan_key(self, plan) -> int:
        """A stable identity for ``plan``, so re-evaluating the same
        plan object reuses the workers' compiled simulators.

        The plan is held strongly alongside its key: ``id()`` alone
        could be recycled after a plan is garbage-collected.
        """
        entry = self._plan_keys.get(id(plan))
        if entry is None or entry[0] is not plan:
            self._plan_counter += 1
            entry = (plan, self._plan_counter)
            self._plan_keys[id(plan)] = entry
        return entry[1]

    def _shard_bounds(self) -> List[Tuple[int, int]]:
        """Contiguous, near-equal scenario ranges, one per shard."""
        return shard_bounds(self.n_scenarios, self.jobs)

    def evaluate(self, plan) -> Dict[int, "EvaluationOutcome"]:
        """Run all scenario sets against ``plan`` across the workers."""
        from repro.execution import ExecutionConfig

        bounds = self._shard_bounds()
        if len(bounds) == 1:
            # One shard: simulate in-process over the cached packed
            # batches — no pool, no re-packing.
            return self._source().evaluate(
                plan, execution=ExecutionConfig(engine=self.engine)
            )
        plan_key = self._plan_key(plan)
        tasks = [(plan_key, plan, lo, hi) for lo, hi in bounds]
        self._ensure_pool(len(tasks))
        if self._borrowed_pool is not None:
            shards = self._borrowed_pool.map(
                _simulate_slice_ctx,
                [(self._context, task) for task in tasks],
            )
        else:
            shards = self._pool.map(_simulate_slice, tasks)
        return merge_shard_outcomes(self.fault_counts, shards)

    def compare(self, plans) -> Dict[str, Dict[int, "EvaluationOutcome"]]:
        """Evaluate several named plans over one persistent pool."""
        return {name: self.evaluate(plan) for name, plan in plans.items()}
