"""Sharded Monte-Carlo evaluation across ``multiprocessing`` workers.

:class:`ParallelEvaluator` splits the scenario index range of a
Monte-Carlo evaluation into contiguous shards, one per job.  Every
worker re-derives the *complete* scenario sets from the same master
seed — deterministic per-shard seeding: shard boundaries select which
slice a worker simulates, never which random draws it makes — then
simulates only its slice and ships back raw per-scenario arrays.  The
parent concatenates the shards in index order, so the merged
:class:`~repro.evaluation.montecarlo.EvaluationOutcome` per fault
count is identical to a single-process run, for any job count.

Re-deriving scenarios in the workers keeps the task payload small (an
application, a plan and four integers) and sidesteps any question of
RNG state hand-off; sampling is a negligible fraction of simulation
time.  Workers default to the batched engine but honour
``engine="reference"`` for differential measurements.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RuntimeModelError

#: One shard's raw result per fault count:
#: (utilities, misses, total switches, total observed faults).
_ShardRaw = Dict[int, Tuple[List[float], int, int, int]]


def _simulate_shard(payload) -> _ShardRaw:
    """Worker entry point: simulate scenarios ``[lo, hi)`` of each set.

    Imports lazily so the module stays importable from
    ``repro.runtime`` without dragging the evaluation package in at
    import time (and to keep the function picklable by name).
    """
    app, plan, n_scenarios, fault_counts, seed, engine, lo, hi = payload
    from repro.evaluation.montecarlo import MonteCarloEvaluator

    evaluator = MonteCarloEvaluator(
        app,
        n_scenarios=n_scenarios,
        fault_counts=fault_counts,
        seed=seed,
        engine=engine,
        jobs=1,
    )
    return {
        faults: evaluator.simulate_raw(plan, scenarios[lo:hi])
        for faults, scenarios in evaluator.scenarios.items()
    }


class ParallelEvaluator:
    """Deterministic sharded version of the Monte-Carlo evaluation.

    Parameters mirror :class:`MonteCarloEvaluator`, plus ``jobs`` (the
    worker count) and ``engine`` (which simulator each worker runs).
    ``evaluate`` returns the same ``{fault count: EvaluationOutcome}``
    mapping a single-process evaluator produces.
    """

    def __init__(
        self,
        app,
        n_scenarios: int = 200,
        fault_counts: Optional[Sequence[int]] = None,
        seed: int = 1,
        engine: str = "batched",
        jobs: int = 2,
    ):
        if jobs < 1:
            raise RuntimeModelError(f"jobs must be positive, got {jobs}")
        self.app = app
        self.n_scenarios = n_scenarios
        self.fault_counts = (
            list(fault_counts)
            if fault_counts is not None
            else list(range(app.k + 1))
        )
        self.seed = seed
        self.engine = engine
        self.jobs = jobs

    def _shard_bounds(self) -> List[Tuple[int, int]]:
        """Contiguous, near-equal scenario ranges, one per shard."""
        shards = min(self.jobs, self.n_scenarios)
        size, extra = divmod(self.n_scenarios, shards)
        bounds = []
        lo = 0
        for shard in range(shards):
            hi = lo + size + (1 if shard < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def evaluate(self, plan) -> Dict[int, "EvaluationOutcome"]:
        """Run all scenario sets against ``plan`` across the workers."""
        from repro.evaluation.montecarlo import EvaluationOutcome

        payloads = [
            (
                self.app,
                plan,
                self.n_scenarios,
                self.fault_counts,
                self.seed,
                self.engine,
                lo,
                hi,
            )
            for lo, hi in self._shard_bounds()
        ]
        if len(payloads) == 1:
            shards = [_simulate_shard(payloads[0])]
        else:
            with multiprocessing.get_context().Pool(
                processes=len(payloads)
            ) as pool:
                shards = pool.map(_simulate_shard, payloads)
        outcomes: Dict[int, EvaluationOutcome] = {}
        for faults in self.fault_counts:
            utilities: List[float] = []
            misses = switches = observed = 0
            for shard in shards:
                shard_utilities, shard_misses, shard_switches, shard_observed = shard[
                    faults
                ]
                utilities.extend(shard_utilities)
                misses += shard_misses
                switches += shard_switches
                observed += shard_observed
            outcomes[faults] = EvaluationOutcome.aggregate(
                utilities, misses, switches, observed
            )
        return outcomes
