"""Compile and cache generated kernels as ctypes shared objects.

The artifact cache is content-addressed exactly like the tree store:
``<fingerprint>.c`` / ``<fingerprint>.so`` under one directory, every
write going through ``mkstemp`` + ``os.replace`` so concurrent
processes (the ``jobs=N`` workers all building the same plan) either
win the atomic rename or reuse the winner's file — never observe a
torn artifact.  The fingerprint is
:func:`~repro.runtime.engine.kernel.codegen.plan_fingerprint` (plan
tables + codegen version), so a warm cache skips code generation and
compilation entirely, and a codegen bump can never load a stale
object.

Compilation uses the system C compiler — ``$REPRO_CC``, ``$CC`` or
the first of ``cc``/``gcc``/``clang`` on PATH — with
``-O2 -std=c99 -fPIC -shared -ffp-contract=off``: no fused
multiply-adds, no reassociation, so the kernel's float stream stays
operation-for-operation identical to the NumPy engine's.  A missing
compiler or a failed compile raises :class:`KernelBuildError`; the
dispatcher turns that into a counted fallback to the NumPy engine,
never an error for the caller.

The deterministic chaos hook ``kernel-fail@N`` (see
:mod:`repro.pipeline.chaos`) fails the Nth compile attempt of the
process, pinning the degradation path in tests and CI.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

#: Flags that keep the generated code's float semantics exactly IEEE:
#: no contraction (FMA would change rounding), strict C99.
CFLAGS = ("-O2", "-std=c99", "-fPIC", "-shared", "-ffp-contract=off")


class KernelBuildError(Exception):
    """Kernel compilation is unavailable or failed.

    ``reason`` is the short counter label the dispatcher surfaces:
    ``"no-compiler"``, ``"compile-failed"`` or ``"load-failed"``.
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


def find_compiler() -> Optional[str]:
    """The C compiler to use, or ``None`` when none is available.

    ``$REPRO_CC`` overrides everything (and may name an absent
    compiler, which the no-compiler tests use to force the fallback
    deterministically); otherwise ``$CC``, then the conventional
    names in PATH order.
    """
    override = os.environ.get("REPRO_CC")
    if override is not None:
        return shutil.which(override)
    cc = os.environ.get("CC")
    if cc:
        found = shutil.which(cc)
        if found:
            return found
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def cache_dir() -> Path:
    """The on-disk artifact cache directory (created on demand).

    ``$REPRO_KERNEL_CACHE`` overrides the default
    ``~/.cache/repro-kernels``.
    """
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        root = Path(override)
    else:
        base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
            os.path.expanduser("~"), ".cache"
        )
        root = Path(base) / "repro-kernels"
    root.mkdir(parents=True, exist_ok=True)
    return root


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``path`` via a same-directory temp file + atomic rename."""
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - already renamed/removed
            pass
        raise


def _chaos_compile_hook() -> None:
    """Consult the active chaos plan before invoking the compiler.

    A scheduled ``kernel-fail@N`` raises, which is surfaced as a
    :class:`KernelBuildError` with the counted reason ``"chaos"`` —
    the same degradation path a real compiler failure takes.
    """
    from repro.pipeline import chaos

    plan = chaos.current()
    if plan is None:
        return
    try:
        plan.kernel_compile()
    except RuntimeError as exc:
        raise KernelBuildError("chaos", str(exc)) from exc


def compile_kernel(source: str, fingerprint: str) -> Path:
    """Ensure ``<fingerprint>.so`` exists in the cache; return its path.

    Returns without compiling when the object is already cached (the
    caller counts that as a cache hit by checking
    :func:`cached_object` first).  Writes the generated source next to
    the object for debuggability, compiles into a temp file and
    atomically renames — a concurrent builder of the same fingerprint
    produces a byte-equivalent object, so whichever rename lands last
    is as good as the first.
    """
    root = cache_dir()
    so_path = root / f"{fingerprint}.so"
    if so_path.exists():
        return so_path
    compiler = find_compiler()
    if compiler is None:
        raise KernelBuildError(
            "no-compiler",
            "no C compiler found (set $REPRO_CC/$CC or install cc)",
        )
    _chaos_compile_hook()
    c_path = root / f"{fingerprint}.c"
    _atomic_write_bytes(c_path, source.encode("utf-8"))
    fd, tmp = tempfile.mkstemp(dir=str(root), suffix=".so.tmp")
    os.close(fd)
    try:
        proc = subprocess.run(
            [compiler, *CFLAGS, "-o", tmp, str(c_path)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            raise KernelBuildError(
                "compile-failed",
                f"{compiler} exited {proc.returncode}: "
                f"{proc.stderr.strip()[:500]}",
            )
        os.replace(tmp, so_path)
    except KernelBuildError:
        raise
    except (OSError, subprocess.SubprocessError) as exc:
        raise KernelBuildError(
            "compile-failed", f"compiler invocation failed: {exc}"
        ) from exc
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass
    return so_path


def cached_object(fingerprint: str) -> Optional[Path]:
    """The cached shared object for ``fingerprint``, if present."""
    path = cache_dir() / f"{fingerprint}.so"
    return path if path.exists() else None


def load_kernel(so_path: Path):
    """Load a built kernel; returns the ``ctypes`` library handle."""
    try:
        return ctypes.CDLL(str(so_path))
    except OSError as exc:
        raise KernelBuildError(
            "load-failed", f"could not load {so_path}: {exc}"
        ) from exc
