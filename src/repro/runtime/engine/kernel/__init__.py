"""Generated-C simulator kernels (``engine="kernel"``).

The batched NumPy engine already executes compiled tables; this
package compiles those tables the rest of the way down.  Per plan,
:mod:`~repro.runtime.engine.kernel.codegen` emits a self-contained
C99 translation unit reproducing the oracle's integer arithmetic and
IEEE-754 accumulation order exactly,
:mod:`~repro.runtime.engine.kernel.build` compiles it with the system
C compiler into a content-addressed shared-object cache, and
:mod:`~repro.runtime.engine.kernel.dispatch` loads it with ``ctypes``
behind the same ``run_batch`` contract as
:class:`~repro.runtime.engine.simulator.BatchSimulator` — falling
back to the NumPy engine, with a counted reason, whenever a kernel
cannot be produced.  Results are bit-identical across all three
engines (asserted by ``tests/test_engine_differential.py``); only
speed differs.
"""

from repro.runtime.engine.kernel.build import (
    KernelBuildError,
    cache_dir,
    compile_kernel,
    find_compiler,
)
from repro.runtime.engine.kernel.codegen import (
    CODEGEN_VERSION,
    KernelUnsupported,
    generate_kernel_source,
    plan_fingerprint,
)
from repro.runtime.engine.kernel.dispatch import (
    KernelSimulator,
    KernelStats,
    kernel_stats,
    reset_kernel_stats,
)

__all__ = [
    "CODEGEN_VERSION",
    "KernelBuildError",
    "KernelSimulator",
    "KernelStats",
    "KernelUnsupported",
    "cache_dir",
    "compile_kernel",
    "find_compiler",
    "generate_kernel_source",
    "kernel_stats",
    "plan_fingerprint",
    "reset_kernel_stats",
]
