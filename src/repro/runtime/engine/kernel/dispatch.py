"""Kernel dispatch: run batches through the compiled ``.so`` or fall back.

:class:`KernelSimulator` is a drop-in replacement for
:class:`~repro.runtime.engine.simulator.BatchSimulator`: same
constructor, same :meth:`run_batch` contract, same
:class:`~repro.runtime.engine.simulator.BatchResult`.  Construction
fingerprints the plan, reuses a cached shared object when one exists
(in-process first, then the on-disk artifact cache) and otherwise
generates + compiles one.  Anything that prevents that — no compiler,
a failed compile, a plan the generator cannot express, injected chaos
— degrades to the wrapped NumPy ``BatchSimulator`` with a counted
reason; results are identical either way, so degradation is a
performance event, never a correctness one.

Per batch, the kernel executes every scenario in one C call (the GIL
is released for its duration); scenarios the C walk flags as outside
its state model are replayed on the oracle afterwards, exactly like
the NumPy engine's own fallback — including reproducing the oracle's
raises.

The module-global :class:`KernelStats` mirrors the parallel pool's
``pool_recovery()`` idiom: compiles, cache hits and per-reason
fallback counts accumulated process-wide, surfaced on the CLI
``simulate:`` line and the service ``/metrics`` document.
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.model.application import Application
from repro.quasistatic.tree import QSTree
from repro.runtime.engine.batch import ScenarioBatch
from repro.runtime.engine.kernel.build import (
    KernelBuildError,
    cached_object,
    compile_kernel,
    load_kernel,
)
from repro.runtime.engine.kernel.codegen import (
    LAYOUT_ABI,
    LAYOUT_CHAIN_CAP,
    LAYOUT_N_PROCESSES,
    LAYOUT_SYMBOL,
    RUN_SYMBOL,
    CODEGEN_VERSION,
    KernelUnsupported,
    generate_kernel_source,
    plan_fingerprint,
)
from repro.runtime.engine.simulator import BatchResult, BatchSimulator
from repro.scheduling.fschedule import FSchedule


@dataclass
class KernelStats:
    """Process-wide counters of kernel builds, cache hits and fallbacks.

    ``compiles`` counts actual compiler invocations, ``cache_hits``
    plans served from the in-process or on-disk artifact cache, and
    ``fallbacks`` maps a degradation reason (``"no-compiler"``,
    ``"compile-failed"``, ``"load-failed"``, ``"unsupported-utility"``,
    ``"unsupported-plan"``, ``"chaos"``) to how many simulator
    constructions degraded to the NumPy engine for it.
    ``oracle_scenarios`` counts per-scenario oracle replays out of
    otherwise kernel-run batches (the same residual the NumPy engine
    reports as ``n_fallback``).
    """

    compiles: int = 0
    cache_hits: int = 0
    fallbacks: Dict[str, int] = field(default_factory=dict)
    oracle_scenarios: int = 0

    @property
    def n_fallbacks(self) -> int:
        return sum(self.fallbacks.values())

    def count_fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    def snapshot(self) -> "KernelStats":
        return replace(self, fallbacks=dict(self.fallbacks))

    def as_dict(self) -> Dict:
        return {
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "fallbacks": dict(self.fallbacks),
            "oracle_scenarios": self.oracle_scenarios,
        }

    def summary(self) -> str:
        parts = [
            f"{self.compiles} compile(s)",
            f"{self.cache_hits} cache hit(s)",
        ]
        if self.fallbacks:
            reasons = ", ".join(
                f"{reason} x{count}"
                for reason, count in sorted(self.fallbacks.items())
            )
            parts.append(f"{self.n_fallbacks} fallback(s) [{reasons}]")
        return ", ".join(parts)


#: Process-wide stats (workers accumulate their own; the parent's
#: covers its warm-up compile, which is what the CLI line reports).
_GLOBAL_STATS = KernelStats()


def kernel_stats() -> KernelStats:
    """The process-wide kernel counters (mutated in place)."""
    return _GLOBAL_STATS


def reset_kernel_stats() -> None:
    """Zero the process-wide counters (tests and CLI runs)."""
    global _GLOBAL_STATS
    _GLOBAL_STATS = KernelStats()


#: Loaded kernels by fingerprint: (library handle, run function,
#: chain capacity).  Keeps repeated evaluations from re-walking the
#: artifact cache and re-dlopening the same object.
_LOADED: Dict[str, Tuple[object, object, int]] = {}


def _configure(lib, fingerprint: str):
    """Validate a loaded kernel's ABI and declare its signatures."""
    layout = getattr(lib, LAYOUT_SYMBOL)
    layout.restype = ctypes.c_int64
    layout.argtypes = [ctypes.c_int64]
    abi = int(layout(LAYOUT_ABI))
    if abi != CODEGEN_VERSION:
        raise KernelBuildError(
            "load-failed",
            f"kernel {fingerprint} has ABI {abi}, expected "
            f"{CODEGEN_VERSION}",
        )
    run = getattr(lib, RUN_SYMBOL)
    run.restype = ctypes.c_int64
    run.argtypes = [
        ctypes.c_int64,
        ctypes.c_int64,
        np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS"),
    ]
    chain_cap = int(layout(LAYOUT_CHAIN_CAP))
    n_proc = int(layout(LAYOUT_N_PROCESSES))
    return run, chain_cap, n_proc


class KernelSimulator:
    """Generated-C executor of one plan, bit-identical to the oracle.

    Wraps an eagerly-built :class:`BatchSimulator` — sharing its
    compiled application/tree, decision tables and oracle — and routes
    whole batches through the plan's compiled ``.so`` when one can be
    produced.  ``engine_used`` reports which core actually runs
    (``"kernel"`` or ``"batched"`` after a counted degradation).
    """

    def __init__(self, app: Application, plan: Union[QSTree, FSchedule]):
        self._batched = BatchSimulator(app, plan)
        self.app = app
        self.capp = self._batched.capp
        self.ctree = self._batched.ctree
        self._oracle = self._batched._oracle
        self._tables = self._batched._tables
        self._run = None
        self._chain_cap = 0
        self.fallback_reason: Optional[str] = None
        stats = kernel_stats()
        try:
            fingerprint = plan_fingerprint(self.capp, self.ctree)
            loaded = _LOADED.get(fingerprint)
            if loaded is not None:
                lib, run, chain_cap = loaded
                stats.cache_hits += 1
            else:
                so_path = cached_object(fingerprint)
                if so_path is not None:
                    stats.cache_hits += 1
                else:
                    source = generate_kernel_source(
                        self.capp, self.ctree, self._tables
                    )
                    so_path = compile_kernel(source, fingerprint)
                    stats.compiles += 1
                lib = load_kernel(so_path)
                run, chain_cap, n_proc = _configure(lib, fingerprint)
                if n_proc != self.capp.n_processes:
                    raise KernelBuildError(
                        "load-failed",
                        f"kernel {fingerprint} compiled for {n_proc} "
                        f"processes, plan has {self.capp.n_processes}",
                    )
                _LOADED[fingerprint] = (lib, run, chain_cap)
            self._run = run
            self._chain_cap = chain_cap
        except (KernelUnsupported, KernelBuildError) as exc:
            self.fallback_reason = exc.reason
            stats.count_fallback(exc.reason)

    @property
    def engine_used(self) -> str:
        return "batched" if self._run is None else "kernel"

    def run_batch(self, batch: ScenarioBatch) -> BatchResult:
        """Execute every scenario of ``batch``; see :class:`BatchResult`."""
        if self._run is None:
            return self._batched.run_batch(batch)
        if batch.names != self.capp.names:
            # Delegate for the NumPy engine's exact validation error.
            return self._batched.run_batch(batch)
        n = batch.n_scenarios
        width = batch.max_attempts
        durations = np.ascontiguousarray(batch.durations, dtype=np.int64)
        faults = np.ascontiguousarray(batch.fault_counts, dtype=np.int64)
        result = BatchResult(
            utilities=np.zeros(n, dtype=np.float64),
            deadline_miss=np.zeros(n, dtype=bool),
            switch_counts=np.zeros(n, dtype=np.int64),
            faults_observed=np.zeros(n, dtype=np.int64),
            switch_chains=[()] * n,
            fast_path=np.zeros(n, dtype=bool),
        )
        miss = np.zeros(n, dtype=np.uint8)
        chains = np.zeros((n, self._chain_cap), dtype=np.int64)
        flagged = np.zeros(n, dtype=np.uint8)
        rc = self._run(
            n,
            width,
            durations,
            faults,
            result.utilities,
            miss,
            result.switch_counts,
            result.faults_observed,
            chains,
            flagged,
        )
        if rc != 0:  # pragma: no cover - guarded by ScenarioBatch
            return self._batched.run_batch(batch)
        result.deadline_miss[:] = miss.astype(bool)
        result.fast_path[:] = flagged == 0
        if result.switch_counts.any():
            for i in np.flatnonzero(result.switch_counts):
                count = int(result.switch_counts[i])
                result.switch_chains[i] = tuple(
                    int(x) for x in chains[i, :count]
                )
        residual = np.flatnonzero(flagged)
        if residual.size:
            kernel_stats().oracle_scenarios += int(residual.size)
            for i in residual:
                self._batched._run_oracle(batch, int(i), result)
        return result
