"""Per-plan C code generation for the compiled simulator kernel.

:func:`generate_kernel_source` lowers one compiled plan — the
:class:`~repro.runtime.engine.compile.CompiledApplication` /
:class:`~repro.runtime.engine.compile.CompiledTree` pair plus its
:class:`~repro.runtime.engine.decisions.DecisionTables` — into a
self-contained C99 translation unit that executes whole scenario
batches.  The generated ``rk_run`` walks each scenario exactly the way
the oracle does, but against baked tables:

* segment advancement is the closed form of the batched engine
  (duration prefix sums, hard-fault re-execution and recovery terms,
  the per-position ``entry_mu`` hoisted to a compile-time constant);
* arc matching scans each position's arcs in the pre-sorted
  ``(-required_faults, target)`` order, so the first hit reproduces
  the oracle's most-fault-specific tie-break;
* the §2.2 drop/re-execute decision steps attempt by attempt against
  the compiled integer thresholds, and evaluates the keep-vs-drop
  benefit comparison directly — stale-value coefficients from the
  baked dependence graph, utility terms in the oracle's order, every
  float constant shipped as an exact C99 hex literal — so the float
  stream is operation-for-operation the oracle's own.

Scenarios the NumPy engine routes to the oracle today (malformed
trees revisiting executed/dropped processes, probes the oracle's own
validation would reject, fault counts beyond the compiled attempt
tables) set a per-scenario fallback flag instead of computing a wrong
answer; the dispatcher replays exactly those scenarios on the oracle,
preserving both results and raises.

Everything here is deterministic: the same plan compiles to the same
source text, which is what the on-disk artifact cache fingerprints.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

from repro.io.ctables import (
    c_double,
    c_int,
    render_double_array,
    render_int_array,
    render_u64_array,
)
from repro.runtime.engine.compile import CompiledApplication, CompiledTree
from repro.runtime.engine.decisions import DecisionTables
from repro.utility.functions import (
    ConstantUtility,
    LinearUtility,
    StepUtility,
    TabulatedUtility,
)

#: Bumped whenever the generated code (or the meaning of any baked
#: table) changes; part of the artifact-cache fingerprint, so stale
#: shared objects can never be loaded against newer dispatch code.
CODEGEN_VERSION = 1

#: Exported entry points of every generated kernel.
RUN_SYMBOL = "rk_run"
LAYOUT_SYMBOL = "rk_layout"

#: ``rk_layout`` query indices (keep in sync with the C switch).
LAYOUT_ABI = 0
LAYOUT_N_PROCESSES = 1
LAYOUT_N_NODES = 2
LAYOUT_CHAIN_CAP = 3


class KernelUnsupported(Exception):
    """The plan lies outside what the kernel generator can express.

    ``reason`` is the short counter label the dispatcher surfaces
    (e.g. ``"unsupported-utility"``); the message carries the detail.
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


# ----------------------------------------------------------------------
# Utility-function lowering
# ----------------------------------------------------------------------
def _utility_spec(utility) -> Tuple:
    """A picklable/printable lowering of one utility function.

    Mirrors :func:`repro.runtime.engine.compile.utility_evaluator`
    case for case; an unknown subclass raises — the dispatcher then
    falls back to the NumPy engine for the whole plan (which itself
    handles unknown subclasses via a scalar loop).
    """
    if utility is None:
        return ("zero",)
    if isinstance(utility, StepUtility):
        steps = utility.steps
        return (
            "table",
            tuple(int(t) for t, _ in steps),
            tuple(
                c_double(v)
                for v in [utility.initial] + [v for _, v in steps]
            ),
            "left",
        )
    if isinstance(utility, ConstantUtility):
        if utility.cutoff is None:
            return ("const", c_double(utility.value))
        return (
            "table",
            (int(utility.cutoff),),
            (c_double(utility.value), c_double(0.0)),
            "left",
        )
    if isinstance(utility, TabulatedUtility):
        samples = utility.samples
        return (
            "table",
            tuple(int(t) for t, _ in samples),
            tuple(
                c_double(v)
                for v in [samples[0][1]] + [v for _, v in samples]
            ),
            "right",
        )
    if isinstance(utility, LinearUtility):
        return ("linear", c_double(utility.u0), c_double(utility.slope))
    raise KernelUnsupported(
        "unsupported-utility",
        f"utility {type(utility).__name__} has no kernel lowering",
    )


# ----------------------------------------------------------------------
# Structural fingerprint
# ----------------------------------------------------------------------
def plan_fingerprint(capp: CompiledApplication, ctree: CompiledTree) -> str:
    """SHA-256 over everything the generated source depends on.

    Cheap by construction — no schedulability probes are forced — so a
    warm artifact cache skips code generation entirely.  Covers the
    codegen version, the application tables (timing, utility
    parameters as exact hex, the dependence graph in its deterministic
    iteration order) and every node's schedule/arc/static-drop state;
    two plans with equal fingerprints generate identical C.
    """
    app = capp.app
    processes = tuple(
        (
            name,
            int(capp.mu[i]),
            bool(capp.is_hard[i]),
            int(capp.deadline[i]),
            int(app.process(name).aet),
            _utility_spec(app.process(name).utility),
        )
        for i, name in enumerate(capp.names)
    )
    graph = tuple(
        (name, tuple(app.graph.predecessors(name)))
        for name in app.graph.topological_order()
    )
    nodes = tuple(
        (
            nid,
            tuple(
                (e.name, int(e.reexecutions))
                for e in ctree.nodes[nid].schedule.entries
            ),
            ctree.nodes[nid].arcs_at,
            tuple(sorted(ctree.nodes[nid].schedule.all_dropped)),
            repr(ctree.nodes[nid].schedule.slack_sharing),
        )
        for nid in sorted(ctree.nodes)
    )
    spec = (
        CODEGEN_VERSION,
        int(app.period),
        int(app.k),
        processes,
        graph,
        int(ctree.root_id),
        nodes,
    )
    return hashlib.sha256(repr(spec).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------
def _mask_words(pids: Sequence[int], n_words: int) -> List[int]:
    words = [0] * n_words
    for pid in pids:
        words[pid >> 6] |= 1 << (pid & 63)
    return words


def _utility_function(capp: CompiledApplication) -> List[str]:
    """The shared ``rk_util(pid, t)`` dispatch and its tables."""
    app = capp.app
    tables: List[str] = []
    cases: List[str] = []
    for pid, name in enumerate(capp.names):
        spec = _utility_spec(app.process(name).utility)
        kind = spec[0]
        if kind == "zero":
            continue
        if kind == "const":
            cases.append(f"    case {pid}: /* {name} */")
            cases.append(f"        return {spec[1]};")
            continue
        if kind == "linear":
            _, u0, slope = spec
            cases.append(f"    case {pid}: {{ /* {name} */")
            cases.append(
                f"        double v = {u0} - {slope} * (double)t;"
            )
            cases.append("        return v > 0.0 ? v : 0.0;")
            cases.append("    }")
            continue
        _, bounds, values, side = spec
        tables += render_int_array(f"rk_ub_{pid}", bounds)
        tables += render_array_of_literals(f"rk_uv_{pid}", values)
        op = "<" if side == "left" else "<="
        cases.append(f"    case {pid}: {{ /* {name}, side={side} */")
        cases.append("        int64_t i = 0;")
        cases.append(
            f"        while (i < {len(bounds)} && rk_ub_{pid}[i] {op} t)"
            " i++;"
        )
        cases.append(f"        return rk_uv_{pid}[i];")
        cases.append("    }")
    lines = tables + [
        "",
        "static double rk_util(int64_t pid, int64_t t)",
        "{",
        "    (void)t;",
        "    switch (pid) {",
    ]
    lines += cases
    lines += [
        "    default:",
        "        break;",
        "    }",
        "    return 0.0;",
        "}",
    ]
    return lines


def render_array_of_literals(name: str, literals: Sequence[str]) -> List[str]:
    """A double array from already-rendered hex literals."""
    from repro.io.ctables import render_array

    return render_array(name, "double", list(literals), per_line=4)


def generate_kernel_source(
    capp: CompiledApplication,
    ctree: CompiledTree,
    tables: DecisionTables,
) -> str:
    """Render the complete kernel translation unit for one plan.

    Forces every schedulability threshold the kernel can consult
    (attempts ``0..min(cap, k)-1`` per soft position, budgets
    ``0..k``) out of ``tables`` — the expensive part of generation,
    which the artifact cache amortizes across runs and workers.
    """
    app = capp.app
    n_proc = capp.n_processes
    n_words = (n_proc + 63) // 64
    k = int(app.k)
    period = int(app.period)

    node_ids = sorted(ctree.nodes)
    dense = {nid: i for i, nid in enumerate(node_ids)}
    n_nodes = len(node_ids)

    # ---- graph tables for in-kernel stale coefficients ----
    topo = [capp.index[name] for name in app.graph.topological_order()]
    pred_off = [0]
    pred_flat: List[int] = []
    pred_div: List[float] = []
    for pid in range(n_proc):
        preds = [
            capp.index[p]
            for p in app.graph.predecessors(capp.names[pid])
        ]
        pred_flat += preds
        pred_off.append(len(pred_flat))
        pred_div.append(float(1 + len(preds)))

    # ---- per-node / per-entry tables ----
    ent_off = [0]
    ent_pid: List[int] = []
    ent_cap: List[int] = []
    ent_mu: List[int] = []
    ent_natt: List[int] = []
    thr_off = [0]
    thr_flat: List[int] = []
    arc_off = [0]
    arc_flat: List[Tuple[int, int, int, int]] = []
    kt_off = [0]
    kt_pid: List[int] = []
    kt_del: List[int] = []
    dt_off = [0]
    dt_pid: List[int] = []
    dt_del: List[int] = []
    hardprobe_words: List[int] = []
    ext_words: List[int] = []
    node_mask_words: List[int] = []
    sdrop_words: List[int] = []

    for nid in node_ids:
        node = ctree.nodes[nid]
        schedule = node.schedule
        node_mask_words += _mask_words(
            [int(i) for i in node.entry_ids], n_words
        )
        sdrop_words += _mask_words(
            sorted(capp.index[n] for n in schedule.all_dropped), n_words
        )
        for pos in range(node.n_entries):
            pid = int(node.entry_ids[pos])
            cap = int(node.entry_caps[pos])
            ent_pid.append(pid)
            ent_cap.append(cap)
            ent_mu.append(int(node.entry_mu[pos]))
            soft = not bool(capp.is_hard[pid])
            natt = min(cap, k) if soft else 0
            ent_natt.append(natt)
            for attempt in range(natt):
                thr_flat += [
                    int(t)
                    for t in tables.sched_thresholds(nid, pos, attempt)
                ]
            thr_off.append(len(thr_flat))
            for lo, hi, required, target in node.arcs_at[pos]:
                if target not in dense:
                    raise KernelUnsupported(
                        "unsupported-plan",
                        f"arc targets node {target} outside the tree",
                    )
                arc_flat.append(
                    (int(lo), int(hi), int(required), dense[target])
                )
            arc_off.append(len(arc_flat))
            if soft:
                info = tables.probe_info(nid, pos)
                hardprobe_words += _mask_words(
                    sorted(info.hard_in_probe), n_words
                )
                ext_words += _mask_words(
                    sorted(info.external_hard_preds), n_words
                )
                entry = schedule.entries[pos]
                entry_proc = app.process(entry.name)
                mu_e = app.recovery_overhead(entry.name)
                kt_pid.append(pid)
                kt_del.append(mu_e + entry_proc.aet)
                tail = 0
                for later in schedule.entries[pos + 1 :]:
                    later_proc = app.process(later.name)
                    tail += later_proc.aet
                    if not later_proc.is_soft:
                        continue
                    lpid = capp.index[later.name]
                    kt_pid.append(lpid)
                    kt_del.append(mu_e + entry_proc.aet + tail)
                    dt_pid.append(lpid)
                    dt_del.append(tail)
            else:
                hardprobe_words += [0] * n_words
                ext_words += [0] * n_words
            kt_off.append(len(kt_pid))
            dt_off.append(len(dt_pid))
        ent_off.append(len(ent_pid))

    lines: List[str] = [
        "/* Generated by repro.runtime.engine.kernel.codegen "
        f"v{CODEGEN_VERSION}.",
        f" * Plan: {n_nodes} node(s), {n_proc} processes, period "
        f"{period}, k = {k}.",
        " * Bit-identical to the reference OnlineScheduler; do not "
        "edit. */",
        "#include <stdint.h>",
        "",
        f"#define RK_N_PROC {n_proc}",
        f"#define RK_N_NODES {n_nodes}",
        f"#define RK_NW {n_words}",
        f"#define RK_K {k}",
        f"#define RK_PERIOD {c_int(period)}",
        f"#define RK_ROOT {dense[ctree.root_id]}",
        "#define RK_CHAIN_CAP (RK_N_NODES + 1)",
        "",
        "typedef struct rk_arc {",
        "    int64_t lo;",
        "    int64_t hi;",
        "    int64_t required;",
        "    int64_t target;",
        "} rk_arc;",
        "",
    ]

    lines += render_int_array(
        "rk_is_hard", [int(bool(h)) for h in capp.is_hard]
    )
    lines += render_int_array(
        "rk_deadline", [int(d) for d in capp.deadline]
    )
    lines += render_u64_array(
        "rk_hard_mask",
        _mask_words([int(i) for i in capp.hard_ids], n_words),
    )
    lines += render_u64_array(
        "rk_soft_mask",
        _mask_words([int(i) for i in capp.soft_ids], n_words),
    )
    lines += render_int_array("rk_topo", topo)
    lines += render_int_array("rk_pred_off", pred_off)
    lines += render_int_array("rk_pred", pred_flat)
    lines += render_double_array("rk_pred_div", pred_div)
    lines.append("")
    lines += _utility_function(capp)
    lines.append("")
    lines += render_int_array("rk_node_orig", node_ids)
    lines += render_u64_array("rk_node_mask", node_mask_words)
    lines += render_u64_array("rk_node_sdrop", sdrop_words)
    lines += render_int_array("rk_ent_off", ent_off)
    lines += render_int_array("rk_ent_pid", ent_pid)
    lines += render_int_array("rk_ent_cap", ent_cap)
    lines += render_int_array("rk_ent_mu", ent_mu)
    lines += render_int_array("rk_ent_natt", ent_natt)
    lines += render_int_array("rk_ent_thr_off", thr_off)
    lines += render_int_array("rk_thr", thr_flat)
    lines += render_int_array("rk_ent_arc_off", arc_off)
    if arc_flat:
        lines.append(f"static const rk_arc rk_arcs[{len(arc_flat)}] = {{")
        for lo, hi, required, target in arc_flat:
            lines.append(
                f"    {{{c_int(lo)}, {c_int(hi)}, {c_int(required)}, "
                f"{c_int(target)}}},"
            )
        lines.append("};")
    else:
        lines.append(
            "static const rk_arc rk_arcs[1] = {{0, 0, 0, 0}};"
        )
    lines += render_u64_array("rk_ent_hardprobe", hardprobe_words)
    lines += render_u64_array("rk_ent_ext", ext_words)
    lines += render_int_array("rk_ent_kt_off", kt_off)
    lines += render_int_array("rk_kt_pid", kt_pid)
    lines += render_int_array("rk_kt_del", kt_del)
    lines += render_int_array("rk_ent_dt_off", dt_off)
    lines += render_int_array("rk_dt_pid", dt_pid)
    lines += render_int_array("rk_dt_del", dt_del)

    lines += _RUNTIME.splitlines()
    return "\n".join(lines) + "\n"


#: The plan-independent runtime: mask helpers, stale coefficients, the
#: benefit comparison, the per-scenario walk and the batch entry point.
#: Kept as one literal so the control flow reads like the oracle's.
_RUNTIME = r"""
static int rk_mask_and_any(const uint64_t *a, const uint64_t *b)
{
    int64_t w;
    for (w = 0; w < RK_NW; w++) {
        if (a[w] & b[w]) {
            return 1;
        }
    }
    return 0;
}

static int rk_mask_sub_any(const uint64_t *a, const uint64_t *b)
{
    int64_t w;
    for (w = 0; w < RK_NW; w++) {
        if (a[w] & ~b[w]) {
            return 1;
        }
    }
    return 0;
}

static int rk_missing_hard(const uint64_t *hardprobe,
                           const uint64_t *completed)
{
    int64_t w;
    for (w = 0; w < RK_NW; w++) {
        if (rk_hard_mask[w] & ~hardprobe[w] & ~completed[w]) {
            return 1;
        }
    }
    return 0;
}

/* Stale-value coefficients, the oracle's exact float walk: alpha = 0
 * for dropped processes, 1 for sources, else (1 + sum of predecessor
 * alphas in graph order) / (1 + n_preds). */
static void rk_alphas(const uint64_t *dropped, double *alpha)
{
    int64_t i, j, pid, lo, hi;
    double s;
    for (i = 0; i < RK_N_PROC; i++) {
        pid = rk_topo[i];
        if ((dropped[pid >> 6] >> (pid & 63)) & 1u) {
            alpha[pid] = 0.0;
            continue;
        }
        lo = rk_pred_off[pid];
        hi = rk_pred_off[pid + 1];
        if (hi == lo) {
            alpha[pid] = 1.0;
            continue;
        }
        s = 0.0;
        for (j = lo; j < hi; j++) {
            s += alpha[rk_pred[j]];
        }
        alpha[pid] = (1.0 + s) / rk_pred_div[pid];
    }
}

/* The keep-vs-drop benefit comparison at one fault clock: terms in
 * the oracle's order, each gated by the period, accumulated with the
 * oracle's operation sequence. */
static int rk_benefit(int64_t e, int64_t entry_pid,
                      const uint64_t *dropped, const uint64_t *sdrop,
                      int64_t clock)
{
    uint64_t keepm[RK_NW];
    uint64_t dropm[RK_NW];
    double ka[RK_N_PROC];
    double da[RK_N_PROC];
    double keep_total = 0.0;
    double drop_total = 0.0;
    int64_t w, j, t;
    for (w = 0; w < RK_NW; w++) {
        keepm[w] = dropped[w] | sdrop[w];
        dropm[w] = keepm[w];
    }
    dropm[entry_pid >> 6] |= (uint64_t)1 << (entry_pid & 63);
    rk_alphas(keepm, ka);
    rk_alphas(dropm, da);
    for (j = rk_ent_kt_off[e]; j < rk_ent_kt_off[e + 1]; j++) {
        t = clock + rk_kt_del[j];
        if (t <= RK_PERIOD) {
            keep_total = keep_total
                + ka[rk_kt_pid[j]] * rk_util(rk_kt_pid[j], t);
        }
    }
    for (j = rk_ent_dt_off[e]; j < rk_ent_dt_off[e + 1]; j++) {
        t = clock + rk_dt_del[j];
        if (t <= RK_PERIOD) {
            drop_total = drop_total
                + da[rk_dt_pid[j]] * rk_util(rk_dt_pid[j], t);
        }
    }
    return keep_total > drop_total;
}

static void rk_run_one(const int64_t *dur, const int64_t *faults,
                       int64_t width, double *util, uint8_t *miss,
                       int64_t *swc, int64_t *fobs, int64_t *chain,
                       uint8_t *fb)
{
    uint64_t completed[RK_NW];
    uint64_t dropped[RK_NW];
    int64_t comp_pid[RK_N_PROC];
    int64_t comp_time[RK_N_PROC];
    int64_t n_comp = 0;
    int64_t clock = 0;
    int64_t observed = 0;
    int64_t node = RK_ROOT;
    int64_t chain_len = 0;
    int64_t w;
    for (w = 0; w < RK_NW; w++) {
        completed[w] = 0;
        dropped[w] = 0;
    }
    for (;;) {
        const uint64_t *nmask = rk_node_mask + node * RK_NW;
        const uint64_t *sdrop = rk_node_sdrop + node * RK_NW;
        int64_t base, len, pos;
        int switched = 0;
        /* Node-arrival bail-outs: a malformed tree revisiting
         * executed or dropped processes is outside the fast path's
         * state model -- the oracle handles those scenarios. */
        if (chain_len > RK_N_NODES
            || rk_mask_and_any(nmask, completed)
            || rk_mask_and_any(nmask, dropped)) {
            *fb = 1;
            return;
        }
        base = rk_ent_off[node];
        len = rk_ent_off[node + 1] - base;
        for (pos = 0; pos < len; pos++) {
            int64_t e = base + pos;
            int64_t pid = rk_ent_pid[e];
            int64_t f = faults[pid];
            const int64_t *d = dur + pid * width;
            int64_t mu = rk_ent_mu[e];
            int64_t j;
            if (f > 0 && !rk_is_hard[pid]) {
                /* ---- section 2.2 decision stepping ---- */
                int64_t cap = rk_ent_cap[e];
                int64_t cum = 0;
                int64_t a;
                int hard_missing = 0;
                int did_drop = 0;
                if (cap > 0) {
                    if (rk_mask_sub_any(rk_ent_ext + e * RK_NW,
                                        completed)) {
                        /* The oracle's probe constructor would raise
                         * here; replay the scenario on it. */
                        *fb = 1;
                        return;
                    }
                    hard_missing = rk_missing_hard(
                        rk_ent_hardprobe + e * RK_NW, completed);
                }
                for (a = 0; a < f; a++) {
                    int64_t clock_a, obs_a, budget;
                    int keep;
                    cum += d[a < width ? a : width - 1];
                    clock_a = clock + cum + a * mu;
                    obs_a = observed + a + 1;
                    if (a >= cap || hard_missing) {
                        keep = 0;
                    } else if (a >= rk_ent_natt[e]) {
                        /* Fault count beyond the compiled attempt
                         * tables (out-of-model f > k). */
                        *fb = 1;
                        return;
                    } else {
                        budget = RK_K - obs_a;
                        if (budget < 0) {
                            budget = 0;
                        }
                        keep = clock_a <= rk_thr[rk_ent_thr_off[e]
                                                 + a * (RK_K + 1)
                                                 + budget];
                        if (keep) {
                            keep = rk_benefit(e, pid, dropped, sdrop,
                                              clock_a);
                        }
                    }
                    if (!keep) {
                        clock = clock_a;
                        observed = obs_a;
                        dropped[pid >> 6] |= (uint64_t)1 << (pid & 63);
                        did_drop = 1;
                        break;
                    }
                }
                if (did_drop) {
                    continue;
                }
                cum += d[f < width ? f : width - 1];
                clock += cum + f * mu;
                observed += f;
            } else {
                /* ---- closed-form advancement: fault-free entries
                 * and hard re-executions ---- */
                int64_t ca = f < width ? f : width - 1;
                int64_t spent = 0;
                int64_t a;
                for (a = 0; a <= ca; a++) {
                    spent += d[a];
                }
                spent += (f - ca) * d[width - 1] + f * mu;
                clock += spent;
                observed += f;
            }
            /* ---- completion of pid at clock ---- */
            if (n_comp >= RK_N_PROC) {
                *fb = 1;
                return;
            }
            comp_pid[n_comp] = pid;
            comp_time[n_comp] = clock;
            n_comp++;
            completed[pid >> 6] |= (uint64_t)1 << (pid & 63);
            for (j = rk_ent_arc_off[e]; j < rk_ent_arc_off[e + 1]; j++) {
                if (clock >= rk_arcs[j].lo && clock <= rk_arcs[j].hi
                    && observed >= rk_arcs[j].required) {
                    node = rk_arcs[j].target;
                    chain[chain_len] = rk_node_orig[node];
                    chain_len++;
                    switched = 1;
                    break;
                }
            }
            if (switched) {
                break;
            }
        }
        if (!switched) {
            break;
        }
    }
    /* ---- finalize: implicit drops, stale coefficients, utility in
     * completion order, hard-deadline misses ---- */
    {
        uint64_t fdrop[RK_NW];
        double alpha[RK_N_PROC];
        double u = 0.0;
        int m = 0;
        int64_t i, pid, t;
        for (w = 0; w < RK_NW; w++) {
            fdrop[w] = rk_soft_mask[w] & ~completed[w];
            if (rk_hard_mask[w] & ~completed[w]) {
                m = 1;
            }
        }
        rk_alphas(fdrop, alpha);
        for (i = 0; i < n_comp; i++) {
            pid = comp_pid[i];
            t = comp_time[i];
            if (rk_is_hard[pid]) {
                if (t > rk_deadline[pid]) {
                    m = 1;
                }
            } else if (t <= RK_PERIOD) {
                u = u + alpha[pid] * rk_util(pid, t);
            }
        }
        *util = u;
        *miss = (uint8_t)m;
        *swc = chain_len;
        *fobs = observed;
    }
}

int64_t rk_run(int64_t n, int64_t width, const int64_t *durations,
               const int64_t *fault_counts, double *utilities,
               uint8_t *deadline_miss, int64_t *switch_counts,
               int64_t *faults_observed, int64_t *chains,
               uint8_t *fallback);

int64_t rk_run(int64_t n, int64_t width, const int64_t *durations,
               const int64_t *fault_counts, double *utilities,
               uint8_t *deadline_miss, int64_t *switch_counts,
               int64_t *faults_observed, int64_t *chains,
               uint8_t *fallback)
{
    int64_t s;
    if (n < 0 || width < 1) {
        return -1;
    }
    for (s = 0; s < n; s++) {
        rk_run_one(durations + s * RK_N_PROC * width,
                   fault_counts + s * RK_N_PROC, width,
                   utilities + s, deadline_miss + s, switch_counts + s,
                   faults_observed + s, chains + s * RK_CHAIN_CAP,
                   fallback + s);
    }
    return 0;
}

int64_t rk_layout(int64_t which);

int64_t rk_layout(int64_t which)
{
    switch (which) {
    case 0:
        return %(codegen_version)d;
    case 1:
        return RK_N_PROC;
    case 2:
        return RK_N_NODES;
    case 3:
        return RK_CHAIN_CAP;
    default:
        break;
    }
    return -1;
}
""" % {"codegen_version": CODEGEN_VERSION}
