"""Batched Monte-Carlo simulation engine.

The reference :class:`~repro.runtime.online.OnlineScheduler` replays
one :class:`~repro.faults.injection.ExecutionScenario` at a time
through a pure-Python event loop — correct, traceable, and far too
slow for the paper's 20,000-scenario evaluations.  This package keeps
that scheduler as the *behavioral oracle* and adds a batched engine on
top of it:

* :mod:`repro.runtime.engine.batch` — :class:`ScenarioBatch` packs the
  durations and fault patterns of a whole scenario set into NumPy
  arrays (and :meth:`ScenarioSampler.sample_batch` draws one directly,
  byte-identical to the per-scenario sampler);
* :mod:`repro.runtime.engine.compile` — a :class:`QSTree` or
  :class:`FSchedule` is compiled into integer-indexed process tables
  and per-node arc tables;
* :mod:`repro.runtime.engine.decisions` — :class:`DecisionTables`
  compiles the §2.2 drop/re-execute decision into integer
  schedulability thresholds and piecewise-constant benefit tables of
  the clock;
* :mod:`repro.runtime.engine.simulator` — :class:`BatchSimulator`
  executes the compiled plan over whole batches through one
  *segment-stepped* cohort core: between decision points (positions
  where a scheduled soft process is faulted) a cohort advances a whole
  run of positions in one closed-form vectorized step, at decision
  points it consults the compiled tables and splits; no-soft-fault
  scenarios are the zero-decision-point special case, and the oracle
  fallback remains only for plans outside the fast path's state
  model;
* :mod:`repro.runtime.engine.parallel` — :class:`ParallelEvaluator`
  shards scenario sets across a persistent pool of
  ``multiprocessing`` workers that attach the batch arrays via shared
  memory, and merges the outcomes;
* :mod:`repro.runtime.engine.threads` — :class:`ThreadedEvaluator`
  shards the same ranges across a thread pool against the generated-C
  kernel's GIL-releasing call (``ExecutionConfig`` mode
  ``"threads"``), merging with the same helper — multi-core scaling
  with no ``multiprocessing`` machinery at all.

Every fast path is bit-identical to the oracle (asserted by
``tests/test_engine_differential.py``): utilities are accumulated in
the oracle's completion order with the same IEEE-754 operations, so
execution routing changes run time, never results.
"""

from repro.runtime.engine.batch import ScenarioBatch
from repro.runtime.engine.compile import (
    CompiledApplication,
    CompiledNode,
    CompiledTree,
    compile_application,
    compile_tree,
)
from repro.runtime.engine.decisions import DecisionTables
from repro.runtime.engine.parallel import ParallelEvaluator
from repro.runtime.engine.simulator import BatchResult, BatchSimulator
from repro.runtime.engine.threads import ThreadedEvaluator

__all__ = [
    "BatchResult",
    "BatchSimulator",
    "CompiledApplication",
    "CompiledNode",
    "CompiledTree",
    "DecisionTables",
    "ParallelEvaluator",
    "ScenarioBatch",
    "ThreadedEvaluator",
    "compile_application",
    "compile_tree",
]
