"""Array-packed scenario batches for the batched simulation engine.

A :class:`ScenarioBatch` is the structure-of-arrays form of a list of
:class:`~repro.faults.injection.ExecutionScenario` objects: one
``(scenarios, processes, attempts)`` integer array of execution times
and one ``(scenarios, processes)`` array of per-process fault counts.
Process columns follow ``app.processes`` order, so a compiled plan can
address them by integer id.

Batches can be packed from existing scenarios (the paired sets a
:class:`~repro.evaluation.montecarlo.MonteCarloEvaluator` generates)
or sampled directly via :meth:`ScenarioBatch.sample` /
:meth:`ScenarioSampler.sample_batch`.  Direct sampling makes exactly
the same RNG calls, in the same order, as the per-scenario
:meth:`ScenarioSampler.sample` loop, so a batch sampled from seed ``s``
is byte-identical to the packed form of ``sample_many`` under seed
``s`` — the property tests in ``tests/test_engine_batch.py`` pin this
down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError, RuntimeModelError
from repro.faults.injection import ExecutionScenario
from repro.faults.model import FaultScenario
from repro.model.application import Application

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injection import ScenarioSampler


@dataclass
class ScenarioBatch:
    """A scenario set packed into NumPy arrays.

    Attributes
    ----------
    names:
        Process name per array column (``app.processes`` order).
    durations:
        ``(n_scenarios, n_processes, max_attempts)`` int64 array;
        ``durations[s, p, a]`` is the execution time of attempt ``a``
        of process ``p`` in scenario ``s``.  Attempts beyond a
        scenario's recorded list repeat its last value, mirroring
        :meth:`ExecutionScenario.duration_of`.
    fault_counts:
        ``(n_scenarios, n_processes)`` int64 array of consecutive
        failed attempts per process (the packed fault patterns).
    """

    names: Tuple[str, ...]
    durations: np.ndarray
    fault_counts: np.ndarray
    _scenarios: Optional[List[ExecutionScenario]] = field(
        default=None, repr=False
    )
    _attempt_cumsum: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.durations.ndim != 3:
            raise RuntimeModelError(
                f"durations must be 3-D, got shape {self.durations.shape}"
            )
        if self.fault_counts.shape != self.durations.shape[:2]:
            raise RuntimeModelError(
                "fault_counts shape "
                f"{self.fault_counts.shape} does not match durations "
                f"{self.durations.shape[:2]}"
            )
        if self.durations.shape[1] != len(self.names):
            raise RuntimeModelError(
                f"{len(self.names)} process names for "
                f"{self.durations.shape[1]} duration columns"
            )
        if self.durations.shape[2] < 1:
            raise RuntimeModelError("batch needs at least one attempt column")

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    @property
    def n_scenarios(self) -> int:
        return self.durations.shape[0]

    @property
    def n_processes(self) -> int:
        return self.durations.shape[1]

    @property
    def max_attempts(self) -> int:
        return self.durations.shape[2]

    def __len__(self) -> int:
        return self.n_scenarios

    def total_faults(self) -> np.ndarray:
        """Total fault count of every scenario, ``(n_scenarios,)``."""
        return self.fault_counts.sum(axis=1)

    def attempt_cumsum(self) -> np.ndarray:
        """``durations`` cumulated over the attempt axis (cached).

        ``attempt_cumsum()[s, p, a]`` is the total execution time of
        attempts ``0..a``; evaluators replay one batch against many
        plans, so the simulator reuses this instead of recomputing it
        per run.
        """
        if self._attempt_cumsum is None:
            self._attempt_cumsum = np.cumsum(self.durations, axis=2)
        return self._attempt_cumsum

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_scenarios(
        cls,
        app: Application,
        scenarios: Sequence[ExecutionScenario],
    ) -> "ScenarioBatch":
        """Pack existing scenarios into arrays (no RNG involved).

        Every scenario must carry a non-empty duration list for every
        process of ``app``; fault patterns naming processes outside the
        application are ignored — such processes can never be scheduled,
        so their faults can never be observed.
        """
        scenario_list = list(scenarios)
        if not scenario_list:
            raise RuntimeModelError("cannot pack an empty scenario list")
        names = tuple(p.name for p in app.processes)
        index = {name: p for p, name in enumerate(names)}
        rows: List[List[Sequence[int]]] = []
        widths = set()
        for scenario in scenario_list:
            row = []
            for name in names:
                attempts = scenario.durations.get(name)
                if not attempts:
                    raise RuntimeModelError(
                        f"scenario has no durations for process {name!r}"
                    )
                row.append(attempts)
                widths.add(len(attempts))
            rows.append(row)
        width = max(widths)
        if len(widths) == 1:
            # Uniform attempt counts (the evaluator's sampled sets):
            # one C-level conversion instead of per-cell assignments.
            durations = np.array(rows, dtype=np.int64)
        else:
            durations = np.empty(
                (len(scenario_list), len(names), width), dtype=np.int64
            )
            for s, row in enumerate(rows):
                for p, attempts in enumerate(row):
                    n = len(attempts)
                    durations[s, p, :n] = attempts
                    if n < width:
                        durations[s, p, n:] = attempts[-1]
        faults = np.zeros((len(scenario_list), len(names)), dtype=np.int64)
        for s, scenario in enumerate(scenario_list):
            for name, hits in scenario.faults.hits:
                p = index.get(name)
                if p is not None:
                    faults[s, p] = hits
        return cls(names, durations, faults, _scenarios=scenario_list)

    @classmethod
    def sample(
        cls,
        sampler: "ScenarioSampler",
        count: int,
        faults: int = 0,
    ) -> "ScenarioBatch":
        """Draw ``count`` scenarios with exactly ``faults`` faults each.

        Replays :meth:`ScenarioSampler.sample_many` draw for draw —
        per scenario: the fault pattern first, then one broadcast
        ``integers`` call covering all processes and attempts (NumPy
        consumes the bit stream element-by-element in C order, so the
        broadcast call is byte-identical to the per-process loop of
        :meth:`ScenarioSampler.sample_durations`).
        """
        from repro.faults.scenarios import sample_scenario

        app = sampler.app
        if count < 1:
            raise RuntimeModelError("need at least one scenario")
        if faults > app.k:
            raise ModelError(
                f"{faults} faults exceed the application's budget k={app.k}"
            )
        names = tuple(p.name for p in app.processes)
        index = {name: p for p, name in enumerate(names)}
        lo = np.array([p.bcet for p in app.processes], dtype=np.int64)
        hi = np.array([p.wcet for p in app.processes], dtype=np.int64)
        width = faults + 1
        durations = np.empty((count, len(names), width), dtype=np.int64)
        fault_counts = np.zeros((count, len(names)), dtype=np.int64)
        for s in range(count):
            pattern = sample_scenario(list(names), faults, sampler.rng)
            for name, hits in pattern.hits:
                fault_counts[s, index[name]] = hits
            durations[s] = sampler.rng.integers(
                lo[:, None], hi[:, None] + 1, size=(len(names), width)
            )
        return cls(names, durations, fault_counts)

    # ------------------------------------------------------------------
    # Unpacking
    # ------------------------------------------------------------------
    def scenario(self, i: int) -> ExecutionScenario:
        """The ``i``-th scenario as an :class:`ExecutionScenario`.

        Returns the original object when the batch was packed from
        scenarios; otherwise reconstructs an equivalent one from the
        arrays.
        """
        if self._scenarios is not None:
            return self._scenarios[i]
        durations: Dict[str, Tuple[int, ...]] = {
            name: tuple(int(x) for x in self.durations[i, p])
            for p, name in enumerate(self.names)
        }
        hits = {
            name: int(self.fault_counts[i, p])
            for p, name in enumerate(self.names)
            if self.fault_counts[i, p] > 0
        }
        pattern = FaultScenario.of(hits) if hits else FaultScenario.none()
        return ExecutionScenario(durations, pattern)

    def scenarios(self) -> List[ExecutionScenario]:
        """All scenarios of the batch (see :meth:`scenario`)."""
        return [self.scenario(i) for i in range(self.n_scenarios)]
