"""Precompiled §2.2 drop/re-execute decision tables.

The online scheduler decides whether a *faulted soft process* is
re-executed by (a) checking its remaining allotment, (b) probing that
the re-execution keeps every remaining hard process schedulable from
the current instant, and (c) comparing the expected utility of keeping
vs dropping it (:meth:`OnlineScheduler._should_reexecute`).  Both
checks collapse to precomputable functions of the cohort clock:

* **Schedulability** — :meth:`FSchedule.worst_case_completions` is
  ``start + C_i`` with constants ``C_i`` that depend only on the probe
  entries (the re-execution, then the tail of the active schedule,
  with caps clamped to the remaining fault budget).  The S_iH test
  therefore passes iff ``start <= min_i(bound_i - C_i)`` — a single
  integer threshold per (node, position, attempt, budget), computed
  here with the same integer arithmetic the probe itself uses, so the
  comparison is exact.

* **Benefit** — keep/drop expected utilities are sums of
  ``U_j(clock + offset_j)`` terms gated by the period.  When every
  relevant utility function is piecewise-constant (the paper's
  canonical shape), the decision is constant between breakpoints; the
  table stores one boolean per segment, *evaluated by the oracle's own
  float code* at a representative clock, so bit-identity holds by
  construction.  Non-piecewise-constant utilities (e.g.
  :class:`LinearUtility`) fall back to a per-clock memo that calls the
  same oracle code for each distinct clock value — still exact, just
  not O(1) per cohort.

Two conditions the tables cannot absorb are reported per (node,
position) so the simulator can resolve them once per cohort (they
depend only on the cohort's executed set, not on any per-member
value): hard processes missing from both the probe and the completed
set (the probe is unschedulable at any clock), and hard predecessors
the probe's validation would reject (the oracle raises there; such
scenarios are routed to it so the behaviour stays identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.runtime.engine.compile import CompiledApplication, CompiledTree
from repro.runtime.online import OnlineScheduler
from repro.scheduling.fschedule import FSchedule, ScheduledEntry

#: Sentinel "schedulable at no clock" threshold (any real clock is
#: non-negative, so every comparison against it fails).
NEVER = -(2**62)


@dataclass(frozen=True)
class ProbeInfo:
    """Cohort-level facts about the S_iH probe at one position.

    ``hard_in_probe`` are the hard process ids the probe schedules
    itself; any other hard id must already be completed or the probe
    is unschedulable.  ``external_hard_preds`` are hard ids that some
    probe entry directly depends on without the probe scheduling them
    first — if one of those is not completed, the probe's constructor
    raises in the oracle, so the simulator must defer to it.
    """

    hard_in_probe: FrozenSet[int]
    external_hard_preds: FrozenSet[int]


#: One utility term of a benefit sum: (α coefficient, vectorized
#: evaluator, clock offset).  The term contributes
#: ``α · U(clock + offset)`` while ``clock + offset <= period``.
_BenefitTerm = Tuple[float, object, int]


class _BenefitFunction:
    """Vectorized, bit-identical form of the oracle's §2.2 comparison.

    The stale-value coefficients are fixed per (node, position,
    dropped set), so they are resolved once here; per clock the terms
    are accumulated in the oracle's exact order with the compiled
    utility evaluators — the same float operations
    :meth:`OnlineScheduler._reexecution_beneficial` performs, just
    elementwise over a clock array.
    """

    def __init__(
        self,
        keep_terms: List[_BenefitTerm],
        drop_terms: List[_BenefitTerm],
        period: int,
    ):
        self._keep = keep_terms
        self._drop = drop_terms
        self._period = period

    def _accumulate(
        self, terms: List[_BenefitTerm], clocks: np.ndarray
    ) -> np.ndarray:
        total = np.zeros(clocks.size, dtype=np.float64)
        for alpha, evaluate, offset in terms:
            times = clocks + offset
            counted = times <= self._period
            if counted.any():
                total[counted] = total[counted] + alpha * evaluate(
                    times[counted]
                )
        return total

    def decide(self, clocks: np.ndarray) -> np.ndarray:
        return self._accumulate(self._keep, clocks) > self._accumulate(
            self._drop, clocks
        )


class _BenefitTable:
    """Piecewise-constant benefit decision: segment starts + booleans."""

    def __init__(self, starts: np.ndarray, values: np.ndarray):
        self._starts = starts
        self._values = values

    def lookup(self, clocks: np.ndarray) -> np.ndarray:
        index = np.searchsorted(self._starts, clocks, side="right") - 1
        return self._values[index]


class _BenefitMemo:
    """Exact per-clock benefit decisions for non-tabulable utilities."""

    def __init__(self, function: _BenefitFunction):
        self._function = function
        self._cache: Dict[int, bool] = {}

    def lookup(self, clocks: np.ndarray) -> np.ndarray:
        cache = self._cache
        unique = np.unique(clocks)
        missing = [int(c) for c in unique if int(c) not in cache]
        if missing:
            decided = self._function.decide(
                np.asarray(missing, dtype=np.int64)
            )
            cache.update(zip(missing, (bool(v) for v in decided)))
        return np.array([cache[int(c)] for c in clocks], dtype=bool)


class DecisionTables:
    """Lazy per-plan caches of the compiled §2.2 decision functions.

    All tables are keyed by compile-time state (node, position,
    attempt, fault budget) plus — for the benefit tables — the
    cohort's runtime-dropped set, which is uniform within a cohort.
    """

    def __init__(
        self,
        capp: CompiledApplication,
        ctree: CompiledTree,
        oracle: OnlineScheduler,
    ):
        self.capp = capp
        self.ctree = ctree
        self._oracle = oracle
        self._hard_id_set = frozenset(int(i) for i in capp.hard_ids)
        self._thresholds: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._probe_info: Dict[Tuple[int, int], ProbeInfo] = {}
        self._benefit: Dict[Tuple[int, int, FrozenSet[int]], object] = {}
        self._decision_points: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Decision-point index
    # ------------------------------------------------------------------
    def decision_points(self, node_id: int) -> np.ndarray:
        """Sorted positions of ``node_id`` that can need a §2.2 call.

        Only a scheduled *soft* entry can trigger the drop/re-execute
        decision — hard processes always re-execute, in closed form.
        The segment-stepped simulator core walks a node as maximal
        runs between these positions (filtered at run time by whether
        any cohort member actually faults there), so this index is the
        node's segmentation, cached per plan.
        """
        points = self._decision_points.get(node_id)
        if points is None:
            entry_ids = self.ctree.nodes[node_id].entry_ids
            points = np.flatnonzero(
                ~self.capp.is_hard[entry_ids]
            ).astype(np.int64)
            self._decision_points[node_id] = points
        return points

    # ------------------------------------------------------------------
    # Schedulability thresholds
    # ------------------------------------------------------------------
    def _probe_entries(
        self, node_id: int, position: int, attempt: int, budget: int
    ) -> List[ScheduledEntry]:
        """The oracle's probe entry list, verbatim (§2.2 check (b))."""
        schedule = self.ctree.nodes[node_id].schedule
        entry = schedule.entries[position]
        entries = [
            ScheduledEntry(
                entry.name, min(entry.reexecutions - attempt - 1, budget)
            )
        ]
        app = self.capp.app
        for later in schedule.entries[position + 1 :]:
            cap = (
                budget
                if app.process(later.name).is_hard
                else min(later.reexecutions, budget)
            )
            entries.append(ScheduledEntry(later.name, cap))
        return entries

    def _max_start(self, node_id: int, position: int, attempt: int, budget: int) -> int:
        """Latest probe ``start_time`` passing the S_iH deadline test.

        ``worst_case_completions`` is ``start + C_i`` with per-entry
        constants, so the test passes iff ``start`` stays at or below
        ``min(bound_i - C_i)``.  Computed with a canonical
        "everything else already completed" context: the constants do
        not depend on the prior sets, and the runtime-dependent parts
        (missing hard processes, validation) are resolved per cohort
        via :meth:`probe_info`.
        """
        app = self.capp.app
        schedule = self.ctree.nodes[node_id].schedule
        entries = self._probe_entries(node_id, position, attempt, budget)
        probe_names = {e.name for e in entries}
        try:
            probe = FSchedule(
                app,
                entries,
                start_time=0,
                fault_budget=budget,
                prior_completed=frozenset(
                    name for name in self.capp.names if name not in probe_names
                ),
                slack_sharing=schedule.slack_sharing,
            )
        except SchedulingError:
            return NEVER
        completions = probe.worst_case_completions()
        bounds = [app.period - probe.worst_case_makespan()]
        for entry in entries:
            proc = app.process(entry.name)
            if proc.is_hard:
                bounds.append(proc.deadline - completions[entry.name])
        return min(bounds)

    def sched_thresholds(
        self, node_id: int, position: int, attempt: int
    ) -> np.ndarray:
        """Max clock per remaining budget 0..k at which (b) passes.

        The threshold is on the *clock of the fault*: the probe starts
        at ``clock + µ``, so the start threshold is shifted by the
        process's recovery overhead.
        """
        key = (node_id, position, attempt)
        table = self._thresholds.get(key)
        if table is None:
            node = self.ctree.nodes[node_id]
            mu = int(self.capp.mu[node.entry_ids[position]])
            table = np.array(
                [
                    self._max_start(node_id, position, attempt, budget) - mu
                    for budget in range(self.capp.app.k + 1)
                ],
                dtype=np.int64,
            )
            self._thresholds[key] = table
        return table

    # ------------------------------------------------------------------
    # Probe context (cohort-level, clock-independent)
    # ------------------------------------------------------------------
    def probe_info(self, node_id: int, position: int) -> ProbeInfo:
        key = (node_id, position)
        info = self._probe_info.get(key)
        if info is None:
            capp = self.capp
            graph = capp.app.graph
            schedule = self.ctree.nodes[node_id].schedule
            names = [e.name for e in schedule.entries[position:]]
            hard_in_probe = frozenset(
                capp.index[n] for n in names if capp.is_hard[capp.index[n]]
            )
            external: Set[int] = set()
            earlier: Set[str] = set()
            for name in names:
                for pred in graph.predecessors(name):
                    pid = capp.index.get(pred)
                    if (
                        pid is not None
                        and capp.is_hard[pid]
                        and pred not in earlier
                    ):
                        external.add(int(pid))
                earlier.add(name)
            info = ProbeInfo(
                hard_in_probe=hard_in_probe,
                external_hard_preds=frozenset(external),
            )
            self._probe_info[key] = info
        return info

    def missing_hard(
        self, node_id: int, position: int, completed: FrozenSet[int]
    ) -> bool:
        """True when some hard process is neither completed nor probed
        — the oracle's probe is then unschedulable at every clock."""
        info = self.probe_info(node_id, position)
        return bool(self._hard_id_set - info.hard_in_probe - completed)

    def probe_would_raise(
        self, node_id: int, position: int, completed: FrozenSet[int]
    ) -> bool:
        """True when the oracle's probe constructor would raise — the
        scenario must run on the oracle to reproduce that behaviour."""
        info = self.probe_info(node_id, position)
        return bool(info.external_hard_preds - completed)

    # ------------------------------------------------------------------
    # Benefit tables
    # ------------------------------------------------------------------
    def benefit(
        self, node_id: int, position: int, dropped_ids: FrozenSet[int]
    ):
        """The benefit decision for one (node, position, dropped set).

        Returns an object with ``lookup(clocks) -> bool array``: a
        breakpoint table when every involved utility function is
        piecewise-constant, a per-clock memo otherwise.
        """
        from repro.utility.stale import stale_coefficients

        key = (node_id, position, dropped_ids)
        table = self._benefit.get(key)
        if table is None:
            capp = self.capp
            app = capp.app
            schedule = self.ctree.nodes[node_id].schedule
            dropped_names = {capp.names[i] for i in dropped_ids}

            entry = schedule.entries[position]
            entry_pid = capp.index[entry.name]
            entry_proc = app.process(entry.name)
            mu = app.recovery_overhead(entry.name)
            # The oracle's keep side runs the re-execution (restart =
            # clock + µ, completing after its AET) and then the tail;
            # the drop side runs the tail from the fault instant.  The
            # α coefficients depend only on the dropped sets, so they
            # are resolved once per table.
            keep_alphas = stale_coefficients(
                app.graph, dropped_names | schedule.all_dropped
            )
            drop_alphas = stale_coefficients(
                app.graph,
                dropped_names | schedule.all_dropped | {entry.name},
            )
            keep_terms: List[_BenefitTerm] = [
                (
                    keep_alphas[entry.name],
                    capp.utilities[entry_pid],
                    mu + entry_proc.aet,
                )
            ]
            drop_terms: List[_BenefitTerm] = []
            utilities = [entry_proc.utility]
            tail_offset = 0
            for later in schedule.entries[position + 1 :]:
                later_proc = app.process(later.name)
                tail_offset += later_proc.aet
                if not later_proc.is_soft:
                    continue
                later_pid = capp.index[later.name]
                keep_terms.append(
                    (
                        keep_alphas[later.name],
                        capp.utilities[later_pid],
                        mu + entry_proc.aet + tail_offset,
                    )
                )
                drop_terms.append(
                    (
                        drop_alphas[later.name],
                        capp.utilities[later_pid],
                        tail_offset,
                    )
                )
                utilities.append(later_proc.utility)
            function = _BenefitFunction(keep_terms, drop_terms, app.period)

            tabulable = all(
                u is None or u.is_piecewise_constant() for u in utilities
            )
            if not tabulable:
                table = _BenefitMemo(function)
            else:
                start_array = self._segment_starts(
                    keep_terms, drop_terms, utilities, app.period
                )
                values = function.decide(start_array)
                table = _BenefitTable(start_array, values)
            self._benefit[key] = table
        return table

    @staticmethod
    def _segment_starts(
        keep_terms: List[_BenefitTerm],
        drop_terms: List[_BenefitTerm],
        utilities: List[object],
        period: int,
    ) -> np.ndarray:
        """Clock values opening a new constant segment of the decision.

        A piecewise-constant term ``α·U(clock + offset)`` changes value
        between ``c`` and ``c + 1`` exactly when ``c + offset`` is one
        of ``U.breakpoints()``, or when the period gate flips — so the
        segments starting at ``bp - offset + 1`` / ``period - offset
        + 1`` (clipped at 0) partition the clock axis into intervals on
        which the oracle computes identical floats.
        """
        starts = {0}
        # keep_terms lists the faulted entry first, then the soft tail
        # in order; drop_terms lists the same tail — utilities[0] pairs
        # with keep_terms[0], utilities[j] with keep_terms[j] and
        # drop_terms[j - 1].
        for i, (_, _, offset) in enumerate(keep_terms):
            utility = utilities[i]
            for bp in [] if utility is None else utility.breakpoints():
                if bp - offset + 1 > 0:
                    starts.add(bp - offset + 1)
            if period - offset + 1 > 0:
                starts.add(period - offset + 1)
        for i, (_, _, offset) in enumerate(drop_terms):
            utility = utilities[i + 1]
            for bp in [] if utility is None else utility.breakpoints():
                if bp - offset + 1 > 0:
                    starts.add(bp - offset + 1)
            if period - offset + 1 > 0:
                starts.add(period - offset + 1)
        return np.array(sorted(starts), dtype=np.int64)
