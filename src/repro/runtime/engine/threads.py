"""GIL-free threaded sharding against the generated-C kernel.

:class:`ThreadedEvaluator` is the ``mode="threads"`` executor behind
:class:`~repro.execution.ExecutionConfig`: it splits the scenario
index range into the same contiguous shards as the process executor
(:func:`~repro.runtime.engine.parallel.shard_bounds`) and runs them on
a persistent :class:`~concurrent.futures.ThreadPoolExecutor`.  The
kernel's ``ctypes`` entry point releases the GIL for the whole batch
call, so the shard threads genuinely overlap on multiple cores — with
none of the ``multiprocessing`` machinery (no fork, no shared-memory
publication, no pickling): threads slice the parent's packed
:class:`ScenarioBatch` arrays as views.

Shard results are merged in range order by the same
:func:`~repro.runtime.engine.parallel.merge_shard_outcomes` helper the
process executor uses, so outcomes are **bit-identical** to an inline
``workers=1`` run for any thread count
(``tests/test_threaded_executor.py`` gates this differentially).

Threading only pays off when the GIL is actually released, so every
evaluation that cannot run threaded **falls back to process sharding**
with a counted reason (:func:`thread_stats`):

* ``engine-not-kernel`` — the NumPy and reference engines hold the
  GIL; process sharding is the right tool for them;
* ``kernel-unavailable`` — no C compiler / kernel build failure; the
  kernel simulator itself would degrade to the (GIL-bound) NumPy
  engine, annulling the point of threads;
* ``chaos`` — an injected ``thread-fail@N`` fault from the chaos DSL
  (:mod:`repro.pipeline.chaos`).

Each shard thread runs its **own** :class:`KernelSimulator` instance:
the compiled kernel code is re-entrant, but the per-simulator residual
replay path (scenarios the C core routes through the Python oracle)
is stateful, so sharing one simulator across threads would be a data
race.  The instances are built sequentially in the calling thread —
the first may compile, the rest hit the in-process loaded-kernel memo
— which keeps the kernel engine's compile/cache-hit counters
deterministic.
"""

from __future__ import annotations

import sys
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import RuntimeModelError
from repro.execution import ExecutionConfig
from repro.runtime.engine.batch import ScenarioBatch
from repro.runtime.engine.parallel import (
    _ShardRaw,
    merge_shard_outcomes,
    shard_bounds,
)


@dataclass
class ThreadStats:
    """Counters of the threaded executor's activity.

    ``evaluations`` counts plan evaluations that actually ran on the
    thread pool, ``shards`` the shard tasks they dispatched, and
    ``fallbacks`` maps each fallback reason (``engine-not-kernel``,
    ``kernel-unavailable``, ``chaos``) to how many evaluations it
    re-routed to process sharding.
    """

    evaluations: int = 0
    shards: int = 0
    fallbacks: Dict[str, int] = field(default_factory=dict)

    @property
    def n_fallbacks(self) -> int:
        return sum(self.fallbacks.values())

    def count_fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    def snapshot(self) -> "ThreadStats":
        return replace(self, fallbacks=dict(self.fallbacks))

    def as_dict(self) -> Dict[str, object]:
        return {
            "evaluations": self.evaluations,
            "shards": self.shards,
            "fallbacks": dict(self.fallbacks),
        }

    def summary(self) -> str:
        parts = [
            f"{self.evaluations} threaded evaluation(s)",
            f"{self.shards} shard(s)",
        ]
        if self.fallbacks:
            reasons = ", ".join(
                f"{reason}: {count}"
                for reason, count in sorted(self.fallbacks.items())
            )
            parts.append(f"fallbacks {{{reasons}}}")
        return " / ".join(parts)


#: Process-wide counters (the CLI summary line and the service's
#: ``/metrics`` read these; :func:`reset_thread_stats` scopes them to
#: one invocation).
_GLOBAL_STATS = ThreadStats()


def thread_stats() -> ThreadStats:
    """The process-wide threaded-executor counters (live object)."""
    return _GLOBAL_STATS


def reset_thread_stats() -> None:
    """Zero the process-wide counters (start of a CLI invocation)."""
    _GLOBAL_STATS.evaluations = 0
    _GLOBAL_STATS.shards = 0
    _GLOBAL_STATS.fallbacks.clear()


def _chaos_plan():
    """The active chaos plan, without importing the chaos module (the
    same no-cycle idiom as the process pool's)."""
    module = sys.modules.get("repro.pipeline.chaos")
    return module.current() if module is not None else None


def _run_shard(
    simulator, batches: Dict[int, ScenarioBatch], lo: int, hi: int
) -> _ShardRaw:
    """Thread task: simulate scenarios ``[lo, hi)`` of every set.

    Slices are NumPy views into the parent's packed arrays — no
    copies.  Runs entirely off the GIL while the kernel call is in
    flight; the raw result shape matches the process workers', so the
    shared merge helper applies.
    """
    out: _ShardRaw = {}
    for faults, batch in batches.items():
        piece = ScenarioBatch(
            batch.names,
            batch.durations[lo:hi],
            batch.fault_counts[lo:hi],
        )
        result = simulator.run_batch(piece)
        out[faults] = (
            [float(u) for u in result.utilities],
            int(result.deadline_miss.sum()),
            int(result.switch_counts.sum()),
            int(result.faults_observed.sum()),
            result.n_fallback,
        )
    return out


class ThreadedEvaluator:
    """Deterministic thread-sharded Monte-Carlo evaluation.

    Constructed by :meth:`MonteCarloEvaluator.executor` for
    ``mode="threads"`` configs; ``source`` supplies the packed
    scenario batches (shared, never re-derived) and — like the process
    executor — is held weakly to avoid an ownership cycle.
    ``evaluate`` returns the same ``{fault count: EvaluationOutcome}``
    mapping an inline evaluator produces.
    """

    def __init__(self, source, execution) -> None:
        config = ExecutionConfig.coerce(execution)
        if config.mode != "threads":
            raise RuntimeModelError(
                f"ThreadedEvaluator needs mode='threads', got "
                f"{config.spec()!r}"
            )
        self.execution = config
        self.engine = config.engine
        self.workers = config.workers
        self.app = source.app
        self.n_scenarios = source.n_scenarios
        self.fault_counts = list(source.fault_counts)
        self.seed = source.seed
        self._source_ref = weakref.ref(source)
        self._own_source = None
        self._pool: Optional[ThreadPoolExecutor] = None
        #: plan key → per-shard simulators, or None when the kernel
        #: could not materialize for that plan (sticky fallback).
        self._plan_sims: Dict[int, Optional[List]] = {}
        self._plan_keys: Dict[int, Tuple[object, int]] = {}
        self._plan_counter = 0

    # ------------------------------------------------------------------
    # Sources and lifecycle
    # ------------------------------------------------------------------
    def _source(self):
        """The evaluator supplying scenario sets (derived if absent)."""
        if self._source_ref is not None:
            source = self._source_ref()
            if source is not None:
                return source
        if self._own_source is None:
            from repro.evaluation.montecarlo import MonteCarloEvaluator

            self._own_source = MonteCarloEvaluator(
                self.app,
                n_scenarios=self.n_scenarios,
                fault_counts=self.fault_counts,
                seed=self.seed,
            )
        return self._own_source

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-shard",
            )
        return self._pool

    def close(self) -> None:
        """Shut the thread pool down and drop the per-plan simulators."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._plan_sims.clear()
        self._plan_keys.clear()
        if self._own_source is not None:
            self._own_source.close()
            self._own_source = None

    def __enter__(self) -> "ThreadedEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _plan_key(self, plan) -> int:
        """Stable plan identity (same idiom as the process executor)."""
        entry = self._plan_keys.get(id(plan))
        if entry is None or entry[0] is not plan:
            self._plan_counter += 1
            entry = (plan, self._plan_counter)
            self._plan_keys[id(plan)] = entry
        return entry[1]

    def _simulators_for(self, plan, shards: int) -> Optional[List]:
        """One :class:`KernelSimulator` per shard, or ``None`` when the
        kernel cannot materialize for this plan.

        Built sequentially in the calling thread: the first instance
        compiles (or loads the cached artifact), the rest hit the
        in-process memo, so the kernel stats stay deterministic.
        """
        key = self._plan_key(plan)
        if key not in self._plan_sims:
            from repro.runtime.engine.kernel import KernelSimulator

            first = KernelSimulator(self.app, plan)
            if first.engine_used != "kernel":
                self._plan_sims[key] = None
            else:
                self._plan_sims[key] = [first] + [
                    KernelSimulator(self.app, plan)
                    for _ in range(shards - 1)
                ]
        sims = self._plan_sims[key]
        if sims is not None and len(sims) < shards:  # pragma: no cover
            from repro.runtime.engine.kernel import KernelSimulator

            sims += [
                KernelSimulator(self.app, plan)
                for _ in range(shards - len(sims))
            ]
        return sims

    def _process_fallback(self, plan) -> Dict[int, "EvaluationOutcome"]:
        """Re-route one evaluation through process sharding (the
        source caches that executor alongside this one)."""
        config = replace(self.execution, mode="processes")
        return self._source().executor(config).evaluate(plan)

    def evaluate(self, plan) -> Dict[int, "EvaluationOutcome"]:
        """Run all scenario sets against ``plan`` across the threads."""
        stats = thread_stats()
        chaos = _chaos_plan()
        if chaos is not None:
            try:
                chaos.thread_eval()
            except RuntimeError:
                stats.count_fallback("chaos")
                return self._process_fallback(plan)
        if self.engine != "kernel":
            stats.count_fallback("engine-not-kernel")
            return self._process_fallback(plan)
        bounds = shard_bounds(self.n_scenarios, self.workers)
        simulators = self._simulators_for(plan, len(bounds))
        if simulators is None:
            stats.count_fallback("kernel-unavailable")
            return self._process_fallback(plan)
        source = self._source()
        if len(bounds) == 1:
            # One shard: inline over the cached packed batches.
            return source.evaluate(
                plan, execution=ExecutionConfig(engine=self.engine)
            )
        batches = {f: source._batch_for(f) for f in self.fault_counts}
        stats.evaluations += 1
        stats.shards += len(bounds)
        pool = self._ensure_pool()
        futures = [
            pool.submit(_run_shard, simulators[i], batches, lo, hi)
            for i, (lo, hi) in enumerate(bounds)
        ]
        shards = [future.result() for future in futures]
        return merge_shard_outcomes(self.fault_counts, shards)

    def compare(
        self, plans
    ) -> Dict[str, Dict[int, "EvaluationOutcome"]]:
        """Evaluate several named plans over one persistent thread
        pool."""
        return {name: self.evaluate(plan) for name, plan in plans.items()}


__all__ = [
    "ThreadedEvaluator",
    "ThreadStats",
    "thread_stats",
    "reset_thread_stats",
]
