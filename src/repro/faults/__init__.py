"""Transient fault model, scenario enumeration and injection."""

from repro.faults.injection import (
    ExecutionScenario,
    ScenarioSampler,
    average_case_scenario,
    best_case_scenario,
    scenario_with_times,
    worst_case_scenario,
)
from repro.faults.model import FaultScenario
from repro.faults.scenarios import (
    count_scenarios,
    enumerate_scenarios,
    sample_scenario,
    sample_scenarios,
)

__all__ = [
    "ExecutionScenario",
    "FaultScenario",
    "ScenarioSampler",
    "average_case_scenario",
    "best_case_scenario",
    "count_scenarios",
    "enumerate_scenarios",
    "sample_scenario",
    "sample_scenarios",
    "scenario_with_times",
    "worst_case_scenario",
]
