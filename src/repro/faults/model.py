"""Transient fault model (paper §2.2).

The fault hypothesis is: at most ``k`` transient faults strike within
one operation cycle of the application.  A fault is detected by the
(software) error-detection mechanism at the *end* of the affected
execution — the time already spent is lost, and restarting costs the
recovery overhead µ before the process runs again.

A :class:`FaultScenario` names which executions fail: it maps a process
name to the number of consecutive failed attempts.  The scenario is
independent of any particular schedule, so the same scenario can be
replayed against FTSS, FTSF and FTQS schedules for a fair comparison
(this is how the paper's simulations compare the three approaches on
identical execution scenarios).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from repro.errors import ModelError


@dataclass(frozen=True)
class FaultScenario:
    """An assignment of transient faults to process executions.

    Attributes
    ----------
    hits:
        Map from process name to the number of *failed attempts* of
        that process in this cycle.  An entry ``("P1", 2)`` means the
        first two executions of P1 fail and the third (if attempted)
        succeeds.
    """

    hits: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)

    @staticmethod
    def of(mapping: Mapping[str, int] = None, **kwargs: int) -> "FaultScenario":
        """Build a scenario from a dict and/or keyword arguments."""
        combined: Dict[str, int] = dict(mapping or {})
        combined.update(kwargs)
        for name, count in combined.items():
            if count <= 0:
                raise ModelError(
                    f"fault count for {name!r} must be positive, got {count}"
                )
        items = tuple(sorted(combined.items()))
        return FaultScenario(hits=items)

    @staticmethod
    def none() -> "FaultScenario":
        """The (most likely) no-fault scenario."""
        return FaultScenario()

    def as_dict(self) -> Dict[str, int]:
        return dict(self.hits)

    @property
    def total_faults(self) -> int:
        """Total number of faults in the scenario."""
        return sum(count for _, count in self.hits)

    def failures_of(self, name: str) -> int:
        """Number of failed attempts of process ``name``."""
        return self.as_dict().get(name, 0)

    def within_budget(self, k: int) -> bool:
        """True when the scenario respects the fault hypothesis."""
        return self.total_faults <= k

    def restrict_to(self, names: Iterable[str]) -> "FaultScenario":
        """Scenario restricted to the given process names."""
        keep = set(names)
        return FaultScenario(
            hits=tuple((n, c) for n, c in self.hits if n in keep)
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if not self.hits:
            return "no-fault"
        return ",".join(f"{n}x{c}" for n, c in self.hits)
