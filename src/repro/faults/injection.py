"""Execution scenarios: actual execution times + fault injection.

An :class:`ExecutionScenario` fixes everything the environment decides
during one operation cycle: the actual execution time of every attempt
of every process (drawn uniformly from [BCET, WCET] in the paper's
experiments, §6) and the fault pattern.  The runtime simulator replays
a scenario deterministically, so FTSS, FTSF and FTQS schedules are
compared on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ModelError, RuntimeModelError
from repro.faults.model import FaultScenario
from repro.model.application import Application


@dataclass(frozen=True)
class ExecutionScenario:
    """Deterministic environment for one simulated cycle.

    Attributes
    ----------
    durations:
        Map from process name to the list of execution times of its
        successive attempts (attempt 0, attempt 1, ...).  An attempt
        beyond the end of the list reuses the last value.
    faults:
        The fault pattern for the cycle.
    """

    durations: Mapping[str, Sequence[int]]
    faults: FaultScenario = field(default_factory=FaultScenario.none)

    def duration_of(self, name: str, attempt: int) -> int:
        """Execution time of ``attempt`` (0-based) of process ``name``."""
        try:
            attempts = self.durations[name]
        except KeyError:
            raise RuntimeModelError(
                f"scenario has no durations for process {name!r}"
            ) from None
        if not attempts:
            raise RuntimeModelError(f"empty duration list for {name!r}")
        index = min(attempt, len(attempts) - 1)
        return int(attempts[index])

    def fails(self, name: str, attempt: int) -> bool:
        """True when ``attempt`` (0-based) of ``name`` is hit by a fault."""
        return attempt < self.faults.failures_of(name)

    def first_attempt_durations(self) -> Dict[str, int]:
        """Duration of attempt 0 for each process (no-fault view)."""
        return {name: self.duration_of(name, 0) for name in self.durations}


def scenario_with_times(
    app: Application,
    times: Mapping[str, int],
    faults: Optional[FaultScenario] = None,
) -> ExecutionScenario:
    """Scenario where every attempt of a process takes the same time."""
    for name, value in times.items():
        proc = app.process(name)
        if not proc.bcet <= value <= proc.wcet:
            raise ModelError(
                f"{name}: time {value} outside [BCET, WCET] "
                f"[{proc.bcet}, {proc.wcet}]"
            )
    durations = {name: (int(value),) for name, value in times.items()}
    return ExecutionScenario(durations, faults or FaultScenario.none())


def average_case_scenario(
    app: Application, faults: Optional[FaultScenario] = None
) -> ExecutionScenario:
    """Every process takes its AET; optionally with a fault pattern."""
    return scenario_with_times(
        app, {p.name: p.aet for p in app.processes}, faults
    )


def worst_case_scenario(
    app: Application, faults: Optional[FaultScenario] = None
) -> ExecutionScenario:
    """Every process takes its WCET; optionally with a fault pattern."""
    return scenario_with_times(
        app, {p.name: p.wcet for p in app.processes}, faults
    )


def best_case_scenario(
    app: Application, faults: Optional[FaultScenario] = None
) -> ExecutionScenario:
    """Every process takes its BCET; optionally with a fault pattern."""
    return scenario_with_times(
        app, {p.name: p.bcet for p in app.processes}, faults
    )


class ScenarioSampler:
    """Random execution-scenario generator matching the paper's §6 setup.

    Execution times of each attempt are independent uniform draws from
    [BCET, WCET]; fault locations are uniform over processes.  All
    randomness flows through one :class:`numpy.random.Generator` so the
    whole evaluation is reproducible from a single seed.
    """

    def __init__(self, app: Application, seed: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        if rng is not None and seed is not None:
            raise ModelError("pass either seed or rng, not both")
        self._app = app
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._names = [p.name for p in app.processes]

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    @property
    def app(self) -> Application:
        return self._app

    def sample_durations(self, max_attempts: int) -> Dict[str, List[int]]:
        """Uniform [BCET, WCET] draws for up to ``max_attempts`` attempts."""
        durations: Dict[str, List[int]] = {}
        for proc in self._app.processes:
            draws = self._rng.integers(
                proc.bcet, proc.wcet + 1, size=max_attempts
            )
            durations[proc.name] = [int(x) for x in draws]
        return durations

    def sample(self, faults: int = 0) -> ExecutionScenario:
        """One scenario with exactly ``faults`` faults.

        Fault locations are uniform over processes (multiset), matching
        the simulation setup in §6 where scenarios for 0..3 faults are
        evaluated separately.
        """
        from repro.faults.scenarios import sample_scenario

        if faults > self._app.k:
            raise ModelError(
                f"{faults} faults exceed the application's budget k="
                f"{self._app.k}"
            )
        pattern = sample_scenario(self._names, faults, self._rng)
        durations = self.sample_durations(max_attempts=faults + 1)
        return ExecutionScenario(
            {n: tuple(v) for n, v in durations.items()}, pattern
        )

    def sample_many(self, count: int, faults: int = 0) -> List[ExecutionScenario]:
        """``count`` independent scenarios with exactly ``faults`` faults."""
        return [self.sample(faults) for _ in range(count)]

    def sample_batch(self, count: int, faults: int = 0) -> "ScenarioBatch":
        """``count`` scenarios packed into arrays for the batched engine.

        Makes the same RNG calls in the same order as
        :meth:`sample_many`, so the arrays are byte-identical to the
        packed form of the per-scenario draws (see
        :class:`repro.runtime.engine.batch.ScenarioBatch`).
        """
        from repro.runtime.engine.batch import ScenarioBatch

        return ScenarioBatch.sample(self, count, faults)
