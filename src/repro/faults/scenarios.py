"""Enumeration and sampling of fault scenarios.

The number of distinct fault scenarios grows exponentially with k and
the number of processes (paper §3), which is exactly why the quasi-
static tree must be pruned.  For testing and exhaustive verification of
small applications we still enumerate them; for the Monte-Carlo
evaluation we sample scenarios with a fixed total fault count, matching
the paper's "no faults / 1 / 2 / 3 faults" experiment axes.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.faults.model import FaultScenario


def enumerate_scenarios(
    process_names: Sequence[str],
    k: int,
    exact: Optional[int] = None,
) -> Iterator[FaultScenario]:
    """Yield every fault scenario with at most (or exactly) ``f`` faults.

    Parameters
    ----------
    process_names:
        Processes that can be hit.
    k:
        Fault budget; scenarios with up to ``k`` faults are produced.
    exact:
        When given, only scenarios with exactly this many faults.

    Faults hitting the same process are consecutive failed attempts,
    so a scenario is fully described by a multiset of processes —
    we enumerate combinations with replacement.
    """
    if k < 0:
        raise ModelError(f"fault budget must be non-negative, got {k}")
    if exact is not None and not 0 <= exact <= k:
        raise ModelError(f"exact fault count {exact} outside [0, {k}]")
    counts = [exact] if exact is not None else list(range(k + 1))
    for total in counts:
        if total == 0:
            yield FaultScenario.none()
            continue
        for combo in combinations_with_replacement(process_names, total):
            hits = {}
            for name in combo:
                hits[name] = hits.get(name, 0) + 1
            yield FaultScenario.of(hits)


def count_scenarios(n_processes: int, k: int) -> int:
    """Number of scenarios with at most k faults over n processes.

    Σ_{f=0..k} C(n + f - 1, f); useful to demonstrate the exponential
    blow-up motivating quasi-static pruning.
    """
    from math import comb

    return sum(comb(n_processes + f - 1, f) for f in range(k + 1))


def sample_scenario(
    process_names: Sequence[str],
    faults: int,
    rng: np.random.Generator,
) -> FaultScenario:
    """Sample a scenario with exactly ``faults`` faults, uniformly over
    process multisets."""
    if faults < 0:
        raise ModelError(f"fault count must be non-negative, got {faults}")
    if faults == 0:
        return FaultScenario.none()
    if not process_names:
        raise ModelError("cannot place faults: no processes")
    picks = rng.choice(len(process_names), size=faults, replace=True)
    hits = {}
    for idx in picks:
        name = process_names[int(idx)]
        hits[name] = hits.get(name, 0) + 1
    return FaultScenario.of(hits)


def sample_scenarios(
    process_names: Sequence[str],
    faults: int,
    count: int,
    rng: np.random.Generator,
) -> List[FaultScenario]:
    """Sample ``count`` independent scenarios with exactly ``faults``
    faults each."""
    return [sample_scenario(process_names, faults, rng) for _ in range(count)]
