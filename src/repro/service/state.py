"""The long-running service's shared state and request handlers.

One :class:`ServiceState` owns everything a ``repro serve`` process
shares across requests: the
:class:`~repro.pipeline.resources.ResourceManager` (worker pools + the
optional tree store), the bounded :class:`~repro.service.queue
.WorkQueue`, the accumulated
:class:`~repro.quasistatic.synthesis.SynthesisStats`, and per-endpoint
request counters.  The HTTP layer (:mod:`repro.service.server`) is a
thin shell over it; everything here is plain-Python and testable
without a socket.

Request handling is validation-first: a body must decode to a JSON
object, carry exactly the known fields, and its application must pass
:func:`repro.model.validation.validate_application` before any
scheduling work starts — failures map to the stable 400-range codes of
:mod:`repro.service.errors`.  Synthesis goes through
:func:`repro.pipeline.runner.synthesize_tree`, so the service gets the
tree store for free: two identical ``/v1/schedule`` requests build
once and serve the second from the store (100% hits, zero rebuilds),
and the response bytes are exactly what ``repro schedule`` writes —
the service is the CLI's pipeline behind a socket, not a reimplementation.

Degradation is *visible, not fatal*: a tripped store circuit breaker
or a worker pool that fell back in-process flips :meth:`readiness` (a
503 on ``/readyz`` so orchestrators stop routing new traffic) while
``/healthz`` stays 200 and already-arrived requests keep serving.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.service.errors import (
    PayloadTooLarge,
    ServiceError,
    ValidationFailed,
    from_exception,
)
from repro.service.queue import WorkQueue

#: Canonical JSON bytes of ``repro schedule``'s output file — the
#: byte-identity contract of ``/v1/schedule`` hangs on using exactly
#: this serialization (``json.dump(..., indent=2, sort_keys=True)``).
def _document_bytes(data: Dict[str, Any]) -> bytes:
    return json.dumps(data, indent=2, sort_keys=True).encode("utf-8")


@dataclass
class ServiceConfig:
    """Knobs of one ``repro serve`` process (CLI flags, mostly)."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Monte-Carlo routing: an ExecutionConfig or a spec string like
    #: "kernel@threads:8" (see repro.execution).
    execution: Any = "batched"
    synthesis_jobs: int = 1
    synthesis: str = "fast"
    max_inflight: int = 4
    max_queue: int = 16
    #: Per-request wall-clock deadline in seconds (``None`` = none).
    request_timeout: Optional[float] = 60.0
    #: Largest accepted request body in bytes.
    max_body: int = 2_000_000
    #: How long a graceful shutdown waits for in-flight work.
    drain_timeout: float = 10.0
    store: Optional[Any] = None


@dataclass
class EndpointMetrics:
    requests: int = 0
    errors: int = 0
    seconds: float = 0.0

    def note(self, status: int, elapsed: float) -> None:
        self.requests += 1
        if status >= 400:
            self.errors += 1
        self.seconds += elapsed


class _LockedStore:
    """A :class:`TreeStore` view that serializes get/put.

    The store backends were built for one-thread-at-a-time experiment
    loops (the memory LRU mutates an ``OrderedDict``, the filesystem
    backend's metrics are bare counters); the service runs
    ``--max-inflight`` handler threads.  Entries are small JSON blobs,
    so one lock around the two hot operations costs microseconds and
    keeps every backend's invariants — synthesis itself stays fully
    parallel outside it.
    """

    def __init__(self, store, lock: threading.Lock) -> None:
        self._store = store
        self._lock = lock

    def get(self, *args, **kwargs):
        with self._lock:
            return self._store.get(*args, **kwargs)

    def put(self, *args, **kwargs):
        with self._lock:
            return self._store.put(*args, **kwargs)

    def __getattr__(self, attr):
        return getattr(self._store, attr)


class ServiceState:
    """Everything one service process shares across requests."""

    def __init__(self, config: ServiceConfig) -> None:
        from repro.pipeline.resources import ResourceManager
        from repro.quasistatic.synthesis import SynthesisStats

        from repro.execution import ExecutionConfig

        self.config = config
        self.execution = ExecutionConfig.coerce(config.execution)
        self.store = config.store
        self.resources = ResourceManager(store=config.store)
        self.queue = WorkQueue(
            workers=config.max_inflight, max_queue=config.max_queue
        )
        self.stats = SynthesisStats()
        self.started_at = time.monotonic()
        self.draining = False
        self._closed = False
        self._close_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._store_lock = threading.Lock()
        # The shared TaskPools expect one map() at a time; compute
        # requests that actually route sharded execution (workers > 1)
        # take this lock, so the parallel engines and the threaded
        # service compose safely.
        self._pool_lock = threading.Lock()
        self._locked_store = (
            _LockedStore(self.store, self._store_lock)
            if self.store is not None
            else None
        )
        self.endpoints: Dict[str, EndpointMetrics] = {}
        self._endpoint_lock = threading.Lock()
        # Connection threads currently inside a request, tracked so a
        # graceful shutdown can wait for the final response bytes to
        # reach the socket after the work queue has drained.
        self._http_inflight = 0
        self._http_idle = threading.Condition()

    # ------------------------------------------------------------------
    # Request bodies
    # ------------------------------------------------------------------
    def decode_body(self, raw: bytes) -> Dict[str, Any]:
        if len(raw) > self.config.max_body:
            raise PayloadTooLarge(
                f"request body of {len(raw)} bytes exceeds the "
                f"{self.config.max_body} byte limit"
            )
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationFailed(f"body is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise ValidationFailed(
                f"body must be a JSON object, got {type(data).__name__}"
            )
        return data

    def _decode_application(self, payload: Dict[str, Any]):
        from repro.io.json_io import application_from_dict
        from repro.model.validation import validate_application

        if "application" not in payload:
            raise ValidationFailed(
                "missing required field 'application'"
            )
        spec = payload["application"]
        if not isinstance(spec, dict):
            raise ValidationFailed(
                "'application' must be a JSON object (the "
                "application_to_dict form)"
            )
        try:
            app = application_from_dict(spec)
        except ServiceError:
            raise
        except Exception as exc:
            raise from_exception(exc)
        validate_application(app)  # ModelError → 400 invalid-application
        return app

    @staticmethod
    def _config_from(payload: Dict[str, Any]):
        """A validated :class:`FTQSConfig` from the request payload.

        ``max_schedules`` may ride at the top level (mirroring the
        CLI's ``--schedules``) or inside ``config``; unknown fields are
        rejected by name so typos fail loudly instead of silently
        running defaults.
        """
        from repro.quasistatic.ftqs import FTQSConfig
        from repro.scheduling.ftss import FTSSConfig

        data = payload.get("config", {})
        if not isinstance(data, dict):
            raise ValidationFailed("'config' must be a JSON object")
        data = dict(data)
        ftss_data = data.pop("ftss", None)
        known = {
            f.name for f in dataclasses.fields(FTQSConfig)
        } - {"ftss"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValidationFailed(
                f"unknown config field(s) {unknown}; known: "
                f"{sorted(known) + ['ftss']}"
            )
        if "max_schedules" in payload:
            data.setdefault("max_schedules", payload["max_schedules"])
        kwargs: Dict[str, Any] = data
        if ftss_data is not None:
            if not isinstance(ftss_data, dict):
                raise ValidationFailed(
                    "'config.ftss' must be a JSON object"
                )
            fknown = {f.name for f in dataclasses.fields(FTSSConfig)}
            funknown = sorted(set(ftss_data) - fknown)
            if funknown:
                raise ValidationFailed(
                    f"unknown ftss config field(s) {funknown}; known: "
                    f"{sorted(fknown)}"
                )
            kwargs["ftss"] = FTSSConfig(**ftss_data)
        try:
            return FTQSConfig(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ValidationFailed(f"bad config: {exc}")

    def _execution_from(self, payload: Dict[str, Any]):
        """The request's Monte-Carlo routing.

        ``executor`` (a spec string like ``"kernel@threads:8"``)
        replaces the server's configured routing for this request;
        ``engine`` (deprecated) overrides just the engine of it.  A
        malformed spec fails with the library's one-line enumeration
        of valid engines and modes.
        """
        from repro.errors import RuntimeModelError
        from repro.execution import ExecutionConfig

        if "executor" in payload:
            if "engine" in payload:
                raise ValidationFailed(
                    "pass either 'executor' or the deprecated "
                    "'engine', not both"
                )
            spec = payload["executor"]
            if not isinstance(spec, str):
                raise ValidationFailed(
                    "'executor' must be a spec string like "
                    "'kernel@threads:8'"
                )
            try:
                return ExecutionConfig.parse(spec)
            except RuntimeModelError as exc:
                raise ValidationFailed(str(exc))
        if "engine" in payload:
            try:
                return dataclasses.replace(
                    self.execution, engine=payload["engine"]
                )
            except RuntimeModelError as exc:
                raise ValidationFailed(str(exc))
        return self.execution

    # ------------------------------------------------------------------
    # Chaos
    # ------------------------------------------------------------------
    @staticmethod
    def _chaos_delay() -> None:
        """The ``slow-request@N`` injection point: runs inside the
        request's worker, so a wedged request burns real capacity."""
        from repro.pipeline import chaos

        plan = chaos.current()
        if plan is not None:
            delay = plan.service_request()
            if delay > 0.0:
                time.sleep(delay)

    # ------------------------------------------------------------------
    # Compute endpoints (run on queue workers)
    # ------------------------------------------------------------------
    def schedule(self, payload: Dict[str, Any]) -> Tuple[bytes, Dict[str, str]]:
        """``POST /v1/schedule`` — application in, synthesized tree out.

        The response body is byte-identical to the ``.tree.json`` file
        the equivalent ``repro schedule`` run writes; request-level
        metadata (store hit/miss, node count) travels in headers so it
        can never perturb the byte contract.
        """
        from repro.io.json_io import tree_to_dict

        self._chaos_delay()
        app = self._decode_application(payload)
        config = self._config_from(payload)
        tree, served_from = self._build_tree(app, config)
        headers = {
            "X-Repro-Store": served_from,
            "X-Repro-Tree-Nodes": str(len(tree)),
            "X-Repro-Tree-Schedules": str(tree.different_schedules()),
        }
        return _document_bytes(tree_to_dict(tree)), headers

    def _build_tree(self, app, config):
        """Root synthesis + store-aware FTQS; returns (tree, source).

        Runs with a request-local stats collector merged into the
        shared one afterwards, so concurrent builds never race on the
        counters and the hit/miss classification of *this* request is
        exact.
        """
        from repro.errors import UnschedulableError
        from repro.pipeline.runner import synthesize_tree
        from repro.quasistatic.synthesis import SynthesisStats
        from repro.scheduling.ftss import ftss

        root = ftss(app, config=config.ftss)
        if root is None:
            raise from_exception(
                UnschedulableError(
                    "no f-schedule meets all hard deadlines under the "
                    "fault hypothesis"
                )
            )
        local = SynthesisStats()
        pool_guard = (
            self._pool_lock
            if self.config.synthesis_jobs > 1
            else contextlib.nullcontext()
        )
        with pool_guard:
            tree = synthesize_tree(
                app,
                root,
                config,
                synthesis=self.config.synthesis,
                synthesis_jobs=self.config.synthesis_jobs,
                stats=local,
                resources=self.resources,
                store=self._locked_store,
            )
        with self._stats_lock:
            self.stats.merge(local)
        served_from = (
            "hit" if local.store_hits else
            ("miss" if self.store is not None else "off")
        )
        return tree, served_from

    def evaluate(self, payload: Dict[str, Any]) -> Tuple[bytes, Dict[str, str]]:
        """``POST /v1/evaluate`` — tree (or app to synthesize) plus
        evaluation parameters in, per-fault-count utilities out."""
        from repro.io.json_io import tree_from_dict

        self._chaos_delay()
        app = self._decode_application(payload)
        known = {
            "application", "tree", "config", "max_schedules",
            "scenarios", "seed", "fault_counts", "engine", "executor",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValidationFailed(
                f"unknown field(s) {unknown}; known: {sorted(known)}"
            )
        if "tree" in payload:
            if not isinstance(payload["tree"], dict):
                raise ValidationFailed("'tree' must be a JSON object")
            tree = tree_from_dict(app, payload["tree"])
        else:
            tree, _ = self._build_tree(app, self._config_from(payload))
        execution = self._execution_from(payload)
        fault_counts = payload.get("fault_counts")
        pool_guard = (
            self._pool_lock
            if execution.workers > 1
            else contextlib.nullcontext()
        )
        with pool_guard:
            evaluator = self.resources.evaluator(
                app,
                n_scenarios=payload.get("scenarios", 200),
                fault_counts=fault_counts,
                seed=payload.get("seed", 1),
                execution=execution,
            )
            with evaluator:
                outcomes = evaluator.evaluate(tree)
        body = {
            "engine": execution.engine,
            "executor": execution.spec(),
            "scenarios": payload.get("scenarios", 200),
            "outcomes": {
                str(faults): {
                    "mean_utility": outcome.mean_utility,
                    "mean_switches": outcome.mean_switches,
                    "mean_faults": outcome.mean_faults,
                    "deadline_misses": outcome.deadline_misses,
                    "n_scenarios": outcome.n_scenarios,
                    "ok": outcome.ok,
                }
                for faults, outcome in sorted(outcomes.items())
            },
        }
        return _document_bytes(body), {}

    # ------------------------------------------------------------------
    # Probes (answered inline, never queued)
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """Liveness: the process answers — even while draining or
        degraded.  Orchestrators restart on *this* going dark, so it
        must stay 200 through every survivable failure."""
        return {"status": "alive", "draining": self.draining}

    def readiness(self) -> Tuple[bool, Dict[str, Any]]:
        """Readiness: should new traffic be routed here?

        ``False`` (a 503) while draining, after the store's circuit
        breaker tripped to its in-memory fallback, or after a worker
        pool degraded to in-process execution — the server still
        *works*, but a fleet scheduler should prefer healthy peers.
        """
        from repro.runtime.engine.parallel import pool_recovery

        reasons = []
        if self.draining:
            reasons.append("draining: shutdown in progress")
        if self._store_tripped():
            reasons.append(
                "store: circuit breaker open, serving from the "
                "in-memory fallback"
            )
        if pool_recovery().pool_degradations:
            reasons.append(
                "pool: worker pool degraded to in-process execution"
            )
        return not reasons, {
            "ready": not reasons,
            "reasons": reasons,
        }

    def _store_tripped(self) -> bool:
        backend = getattr(self.store, "backend", None)
        # ResilientBackend proxies attribute reads to its inner
        # backend, so a plain getattr default would never miss; only
        # its own __dict__ knows whether the breaker tripped.
        return bool(backend is not None and backend.__dict__.get("tripped"))

    def note_request(self, endpoint: str, status: int, elapsed: float) -> None:
        with self._endpoint_lock:
            metrics = self.endpoints.setdefault(endpoint, EndpointMetrics())
            metrics.note(status, elapsed)

    def metrics(self) -> Dict[str, Any]:
        """The ``/metrics`` JSON snapshot."""
        from repro.runtime.engine.kernel import kernel_stats
        from repro.runtime.engine.parallel import pool_recovery
        from repro.runtime.engine.threads import thread_stats

        with self._endpoint_lock:
            requests = {
                endpoint: dataclasses.asdict(m)
                for endpoint, m in sorted(self.endpoints.items())
            }
        store: Optional[Dict[str, Any]] = None
        if self.store is not None:
            store = dataclasses.asdict(self.store.metrics)
            store["backend"] = self.store.backend_name
            store["tripped"] = self._store_tripped()
        with self._stats_lock:
            synthesis = {
                "trees_built": self.stats.trees_built,
                "nodes_expanded": self.stats.nodes_expanded,
                "candidates_evaluated": self.stats.candidates_evaluated,
                "memo_hits": self.stats.memo_hits,
                "store_hits": self.stats.store_hits,
                "store_misses": self.stats.store_misses,
                "wall_seconds": self.stats.wall_seconds,
            }
        ready, _ = self.readiness()
        return {
            "uptime_seconds": time.monotonic() - self.started_at,
            "ready": ready,
            "draining": self.draining,
            "queue": self.queue.snapshot(),
            "requests": requests,
            "synthesis": synthesis,
            "store": store,
            "pool": dataclasses.asdict(pool_recovery()),
            "kernel": kernel_stats().as_dict(),
            "execution": {
                "executor": self.execution.spec(),
                "threads": thread_stats().as_dict(),
            },
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def http_started(self) -> None:
        with self._http_idle:
            self._http_inflight += 1

    def http_finished(self) -> None:
        with self._http_idle:
            self._http_inflight -= 1
            self._http_idle.notify_all()

    def wait_http_idle(self, timeout: float) -> bool:
        """Wait for every connection thread to finish writing its
        response; ``False`` if some were still busy at the timeout."""
        with self._http_idle:
            return self._http_idle.wait_for(
                lambda: self._http_inflight == 0, timeout=timeout
            )

    def begin_drain(self) -> None:
        self.draining = True

    def close(self) -> bool:
        """Drain the queue and release the shared resources.

        Exactly-once: concurrent or repeated calls (a SIGTERM racing a
        ``with`` exit, say) see ``False`` and touch nothing — the
        pools and the store backend are closed a single time.  The
        closing call returns whether the queue drained cleanly within
        ``drain_timeout``.
        """
        with self._close_lock:
            if self._closed:
                return False
            self._closed = True
        self.draining = True
        clean = self.queue.drain(timeout=self.config.drain_timeout)
        self.resources.close()
        return clean
