"""The HTTP shell: ``ThreadingHTTPServer`` wiring and lifecycle.

Stdlib only (the container bakes no web framework, and the service
needs none): a :class:`~http.server.ThreadingHTTPServer` gives one
thread per connection, the bounded
:class:`~repro.service.queue.WorkQueue` keeps those threads from
turning into unbounded compute, and :func:`dispatch` does everything
interesting.  Two entry points:

* :class:`ServiceHandle` — start/stop a server programmatically (the
  test suite runs real sockets on ephemeral ports through this);
* :func:`serve` — the blocking ``repro serve`` loop: start, print the
  bound address, wait for SIGTERM/SIGINT, then shut down gracefully —
  drain in-flight requests (new ones get 503), close the shared
  :class:`~repro.pipeline.resources.ResourceManager` exactly once, and
  return exit code 0.

Graceful shutdown is sequenced so nothing is ever dropped mid-flight:

1. mark the state *draining* — ``/readyz`` flips to 503 so load
   balancers stop routing here, and new compute POSTs are rejected
   with 503/``shutting-down`` while the listener keeps answering;
2. drain the work queue (bounded by ``--drain-timeout``) — requests
   already computing finish and their responses go out;
3. wait for the last connection threads to flush, stop the accept
   loop, close the listening socket, release pools + store.
"""

from __future__ import annotations

import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.handlers import dispatch
from repro.service.state import ServiceConfig, ServiceState


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # Quiet by default: one access-log line per request belongs to an
    # external proxy, not a paper-reproduction service's stdout (and
    # it would interleave garbage into the test harness's output).
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 — http.server's casing
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def _handle(self, method: str) -> None:
        state: ServiceState = self.server.state  # type: ignore[attr-defined]
        state.http_started()
        try:
            declared = self.headers.get("Content-Length")
            try:
                content_length = (
                    int(declared) if declared is not None else None
                )
                if content_length is not None and content_length < 0:
                    content_length = None
            except ValueError:
                content_length = None
            response = dispatch(
                state, method, self.path, content_length, self.rfile.read
            )
            if response.close_connection:
                self.close_connection = True
            try:
                self.send_response(response.status)
                self.send_header("Content-Type", "application/json")
                for key, value in response.headers.items():
                    self.send_header(key, value)
                self.send_header("Content-Length", str(len(response.body)))
                if self.close_connection:
                    self.send_header("Connection", "close")
                self.end_headers()
                self.wfile.write(response.body)
            except (BrokenPipeError, ConnectionResetError):
                # The client hung up mid-response; its problem, not a
                # reason to lose the worker thread.
                self.close_connection = True
        finally:
            state.http_finished()


class ReproServer(ThreadingHTTPServer):
    # Handler threads are daemons: a connection wedged beyond the
    # drain budget can delay exit only until the drain timeout, never
    # hang the process.  ServiceState.http_* tracking provides the
    # graceful half (waiting for responses to flush).
    daemon_threads = True
    allow_reuse_address = True


class ServiceHandle:
    """One running service: a real socket, start/stop, scoped cleanup.

    ``port=0`` binds an ephemeral port; :attr:`url` reports the real
    one.  :meth:`shutdown` runs the full graceful sequence and is
    idempotent; the context manager form guarantees it.
    """

    def __init__(self, config: ServiceConfig, state=None) -> None:
        self.config = config
        self.state = state if state is not None else ServiceState(config)
        self.server = ReproServer((config.host, config.port), _Handler)
        self.server.state = self.state  # type: ignore[attr-defined]
        self._thread: threading.Thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        self._shutdown_lock = threading.Lock()
        self._finished = False

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceHandle":
        self._thread.start()
        return self

    def shutdown(self) -> bool:
        """The graceful sequence; returns True when fully drained.

        Safe to call from a signal handler's thread and repeatedly —
        the state's exactly-once close guard and this handle's own
        lock make every call after the first a no-op.
        """
        with self._shutdown_lock:
            if self._finished:
                return True
            self._finished = True
        self.state.begin_drain()
        clean = self.state.close()
        # Let the last connection threads flush their responses (the
        # queue is already empty; this only covers socket writes).
        self.state.wait_http_idle(timeout=2.0)
        self.server.shutdown()
        self.server.server_close()
        self._thread.join(timeout=2.0)
        return clean

    def __enter__(self) -> "ServiceHandle":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()


def serve(config: ServiceConfig) -> int:
    """The blocking ``repro serve`` loop; returns the exit code.

    Prints ``serving on http://HOST:PORT`` once the socket is bound
    (scripts poll for that line, then hit ``/healthz``), then waits
    for SIGTERM or SIGINT and runs the graceful shutdown — always exit
    code 0 for a signal-initiated stop, which is what process managers
    treat as a clean termination.
    """
    handle = ServiceHandle(config)
    stop = threading.Event()
    received = []

    def _on_signal(signum, frame) -> None:
        received.append(signum)
        stop.set()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    handle.start()
    print(f"serving on {handle.url}", flush=True)
    try:
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        started = time.monotonic()
        clean = handle.shutdown()
        snapshot = handle.state.queue.snapshot()
        print(
            f"shutdown: {'drained' if clean else 'drain timeout'} in "
            f"{time.monotonic() - started:.2f}s — "
            f"{snapshot['completed']} request(s) completed, "
            f"{snapshot['failed']} failed, "
            f"{snapshot['rejected']} shed",
            flush=True,
        )
    return 0
