"""The service's typed error taxonomy.

Every failure a request can hit maps to exactly one
:class:`ServiceError` subclass with a stable machine-readable ``code``
and an HTTP status, so clients never have to parse prose: a validation
problem is always ``400``/``invalid-request`` (or
``invalid-application`` when the model checks of
:mod:`repro.model.validation` reject the input), an unknown route is
``404``/``not-found``, an oversized body ``413``/``payload-too-large``,
a full work queue ``429``/``overloaded`` (with a ``Retry-After``
hint), a draining server ``503``/``shutting-down``, and a request that
outlives its wall-clock deadline ``504``/``deadline-exceeded``.

The wire shape is one JSON object::

    {"error": {"code": "overloaded", "message": "...", ...}}

with optional extra fields per subclass (``retry_after`` seconds on
429, the validation detail on 400).  Anything *not* in the taxonomy —
a genuine bug in a handler — surfaces as ``500``/``internal`` with the
exception's repr, never as a dropped connection or an HTML traceback.
"""

from __future__ import annotations

from typing import Any, Dict


class ServiceError(Exception):
    """Base of the taxonomy: an HTTP status plus a stable code."""

    status: int = 500
    code: str = "internal"

    def __init__(self, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.message = message
        self.extra: Dict[str, Any] = extra

    def payload(self) -> Dict[str, Any]:
        """The JSON error document sent on the wire."""
        body: Dict[str, Any] = {"code": self.code, "message": self.message}
        body.update(self.extra)
        return {"error": body}

    def headers(self) -> Dict[str, str]:
        """Extra response headers (subclasses may add some)."""
        return {}


class ValidationFailed(ServiceError):
    """The request body is structurally broken: not JSON, not an
    object, missing or unknown fields, bad config values."""

    status = 400
    code = "invalid-request"


class InvalidApplication(ValidationFailed):
    """The application decoded fine but failed the model checks of
    :func:`repro.model.validation.validate_application` (or its
    dataclass invariants)."""

    code = "invalid-application"


class Unschedulable(ServiceError):
    """The application is valid but no fault-tolerant root schedule
    meets every hard deadline — a property of the input, not a server
    fault, hence 422 rather than 500."""

    status = 422
    code = "unschedulable"


class NotFound(ServiceError):
    status = 404
    code = "not-found"


class MethodNotAllowed(ServiceError):
    status = 405
    code = "method-not-allowed"


class PayloadTooLarge(ServiceError):
    status = 413
    code = "payload-too-large"


class Overloaded(ServiceError):
    """The bounded work queue is full: shed the request now (cheap for
    everyone) instead of piling up threads until nothing finishes."""

    status = 429
    code = "overloaded"

    def __init__(
        self, message: str, retry_after: float = 1.0, **extra: Any
    ) -> None:
        super().__init__(message, retry_after=retry_after, **extra)
        self.retry_after = retry_after

    def headers(self) -> Dict[str, str]:
        # Ceil to a whole second: Retry-After is delta-seconds per RFC
        # 9110, and "0" would invite an immediate hammer-loop.
        return {"Retry-After": str(max(1, int(self.retry_after + 0.999)))}


class ShuttingDown(ServiceError):
    status = 503
    code = "shutting-down"

    def headers(self) -> Dict[str, str]:
        return {"Retry-After": "5"}


class NotReady(ServiceError):
    """The readiness probe's 503: the server answers but a dependency
    is degraded (tripped store breaker, in-process pool fallback)."""

    status = 503
    code = "not-ready"


class DeadlineExceeded(ServiceError):
    status = 504
    code = "deadline-exceeded"


class Internal(ServiceError):
    status = 500
    code = "internal"


def from_exception(exc: BaseException) -> ServiceError:
    """Map an arbitrary handler exception into the taxonomy.

    Library errors keep their meaning (model validation → 400,
    unschedulable → 422, serialization → 400); anything unrecognized
    becomes a structured 500 — the server never answers with a raw
    traceback or a dropped connection.
    """
    if isinstance(exc, ServiceError):
        return exc
    from repro.errors import (
        ModelError,
        RuntimeModelError,
        SerializationError,
        UnschedulableError,
    )

    if isinstance(exc, UnschedulableError):
        return Unschedulable(str(exc))
    if isinstance(exc, ModelError):
        return InvalidApplication(str(exc))
    if isinstance(exc, (SerializationError, RuntimeModelError)):
        return ValidationFailed(str(exc))
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        return ValidationFailed(str(exc) or repr(exc))
    return Internal(f"unhandled {type(exc).__name__}: {exc}")
