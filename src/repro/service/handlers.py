"""Route dispatch: (method, path, body) → a structured response.

This layer is deliberately socket-free — it takes the method, the raw
path and a body reader, and returns a :class:`Response` — so the whole
request surface (routing, method checks, body limits, error mapping,
per-endpoint metrics) is exercised by plain function calls in the test
suite, with the :mod:`http.server` shell reduced to I/O.

The probes (``/healthz``, ``/readyz``, ``/metrics``) answer inline on
the connection thread: they must respond instantly even when every
queue worker is busy — that is the point of a health probe.  The
compute endpoints (``/v1/schedule``, ``/v1/evaluate``) go through the
bounded :class:`~repro.service.queue.WorkQueue` and inherit its
backpressure (429), deadline (504) and drain (503) behavior.

Every exception — taxonomy or not — becomes a structured JSON error
document; :func:`dispatch` cannot raise.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.service.errors import (
    MethodNotAllowed,
    NotFound,
    NotReady,
    PayloadTooLarge,
    ServiceError,
    ShuttingDown,
    ValidationFailed,
    from_exception,
)
from repro.service.state import ServiceState


@dataclass
class Response:
    status: int
    body: bytes
    headers: Dict[str, str] = field(default_factory=dict)
    #: Tells the HTTP shell to drop the connection (set when an
    #: unread request body would desynchronize keep-alive parsing).
    close_connection: bool = False


def _json_response(
    status: int, document: Any, headers: Optional[Dict[str, str]] = None
) -> Response:
    body = json.dumps(document, indent=2, sort_keys=True).encode("utf-8")
    return Response(status, body, dict(headers or {}))


def _error_response(exc: ServiceError) -> Response:
    response = _json_response(exc.status, exc.payload(), exc.headers())
    if exc.status == PayloadTooLarge.status:
        # The oversized body was never read off the socket; reusing
        # the connection would parse it as the next request.
        response.close_connection = True
    return response


#: path → {method → handler name}; handlers are ServiceState-driven
#: closures resolved in :func:`_route`.
ROUTES: Dict[str, tuple] = {
    "/healthz": ("GET",),
    "/readyz": ("GET",),
    "/metrics": ("GET",),
    "/v1/schedule": ("POST",),
    "/v1/evaluate": ("POST",),
}


def dispatch(
    state: ServiceState,
    method: str,
    raw_path: str,
    content_length: Optional[int],
    read_body: Callable[[int], bytes],
) -> Response:
    """Handle one request; never raises.

    ``read_body(n)`` is called at most once, and only after the
    declared length passed the ``max_body`` check — an oversized body
    is rejected without ever buffering it.
    """
    started = time.monotonic()
    path = raw_path.split("?", 1)[0]
    if len(path) > 1:
        path = path.rstrip("/") or "/"
    try:
        response = _route(state, method, path, content_length, read_body)
    except ServiceError as exc:
        response = _error_response(exc)
    except Exception as exc:  # noqa: BLE001 — the contract: never raise
        response = _error_response(from_exception(exc))
    state.note_request(path, response.status, time.monotonic() - started)
    return response


def _route(
    state: ServiceState,
    method: str,
    path: str,
    content_length: Optional[int],
    read_body: Callable[[int], bytes],
) -> Response:
    allowed = ROUTES.get(path)
    if allowed is None:
        raise NotFound(
            f"no route {path!r} (routes: {', '.join(sorted(ROUTES))})"
        )
    if method not in allowed:
        raise MethodNotAllowed(
            f"{method} not allowed on {path} (allowed: "
            f"{', '.join(allowed)})"
        )

    if path == "/healthz":
        return _json_response(200, state.health())
    if path == "/readyz":
        ready, document = state.readiness()
        return _json_response(200 if ready else NotReady.status, document)
    if path == "/metrics":
        return _json_response(200, state.metrics())

    # Compute endpoints from here on.
    if state.draining:
        raise ShuttingDown(
            "the server is draining and accepts no new requests"
        )
    if content_length is None:
        raise ValidationFailed(
            "a JSON body with a Content-Length header is required"
        )
    if content_length > state.config.max_body:
        raise PayloadTooLarge(
            f"declared body of {content_length} bytes exceeds the "
            f"{state.config.max_body} byte limit"
        )
    payload = state.decode_body(read_body(content_length))
    handler = (
        state.schedule if path == "/v1/schedule" else state.evaluate
    )
    body, headers = state.queue.execute(
        lambda: handler(payload), timeout=state.config.request_timeout
    )
    return Response(200, body, headers)
