"""The service's bounded work queue: backpressure and deadlines.

A scheduling request costs real CPU (an FTQS build, a Monte-Carlo
run), so the service must never accept more work than it can finish:
unbounded thread-per-request servers die exactly the way PR 7's chaos
harness kills workers — slowly, under load, with every request timing
out at once.  The queue enforces two limits:

* ``workers`` (``--max-inflight``) — computations running at once.
  Each worker is one daemon thread; requests beyond that wait;
* ``max_queue`` (``--max-queue``) — requests allowed to wait.  One
  more and :meth:`WorkQueue.execute` raises
  :class:`~repro.service.errors.Overloaded` *immediately* (a 429 with
  a ``Retry-After`` estimated from the recent task duration), shedding
  load while the server is still healthy instead of queueing into
  collapse.

Every request carries a wall-clock **deadline**.  A request that
expires while still queued is skipped entirely (the worker never
starts it); one that expires mid-computation gets its 504 right away
while the worker finishes and discards the result — the computation is
pure, so discarding is clean, and the abandonment is counted
(``abandoned``) so capacity loss is visible in ``/metrics``.

Draining for graceful shutdown is :meth:`WorkQueue.drain`: stop
accepting, wait for queued + running work to finish, then retire the
workers.  Workers are daemon threads, so even a wedged computation
(a chaos ``slow-request`` longer than the drain budget) can delay exit
only up to the drain timeout, never hang it.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.service.errors import DeadlineExceeded, Overloaded, ShuttingDown

_PENDING, _RUNNING, _DONE, _EXPIRED = range(4)


class _WorkItem:
    """One queued computation and its completion latch."""

    __slots__ = (
        "fn", "deadline", "state", "result", "error", "done", "lock",
    )

    def __init__(self, fn: Callable[[], Any], deadline: Optional[float]):
        self.fn = fn
        self.deadline = deadline
        self.state = _PENDING
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done = threading.Event()
        self.lock = threading.Lock()

    def try_start(self) -> bool:
        """Claim the item for execution; False when it expired while
        queued (the waiter already took its 504 and left)."""
        with self.lock:
            if self.state != _PENDING:
                return False
            if self.deadline is not None and time.monotonic() > self.deadline:
                self.state = _EXPIRED
                return False
            self.state = _RUNNING
            return True

    def expire(self) -> str:
        """The waiter gave up: ``"queued"`` when the item never ran,
        ``"running"`` when a worker is still burning CPU on it."""
        with self.lock:
            if self.state == _PENDING:
                self.state = _EXPIRED
                return "queued"
            return "running"


class WorkQueue:
    """Bounded thread-pool executor with per-request deadlines."""

    def __init__(
        self,
        workers: int = 4,
        max_queue: int = 16,
        name: str = "repro-serve",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.workers = workers
        self.max_queue = max_queue
        self._queue: "queue.Queue[Optional[_WorkItem]]" = queue.Queue()
        self._lock = threading.Lock()
        self._accepting = True
        self._queued = 0
        self._inflight = 0
        self._idle = threading.Condition(self._lock)
        # Counters (under _lock); exposed via snapshot().
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.expired = 0
        self.abandoned = 0
        #: EWMA of recent task durations, seeding the Retry-After hint.
        self._task_seconds = 0.1
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"{name}-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def execute(
        self, fn: Callable[[], Any], timeout: Optional[float] = None
    ) -> Any:
        """Run ``fn`` on a worker and return its result.

        Raises :class:`Overloaded` when the wait queue is full,
        :class:`ShuttingDown` after :meth:`drain` began, and
        :class:`DeadlineExceeded` when ``timeout`` seconds pass before
        the computation finishes.  Exceptions from ``fn`` propagate.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._lock:
            if not self._accepting:
                raise ShuttingDown(
                    "the server is draining and accepts no new work"
                )
            if self._queued >= self.max_queue:
                self.rejected += 1
                raise Overloaded(
                    f"work queue full ({self._queued} waiting, "
                    f"{self._inflight} running on {self.workers} "
                    f"worker(s))",
                    retry_after=self._retry_after_locked(),
                )
            self._queued += 1
            self.submitted += 1
            item = _WorkItem(fn, deadline)
            self._queue.put(item)
        remaining = None
        if deadline is not None:
            remaining = max(0.0, deadline - time.monotonic())
        if not item.done.wait(timeout=remaining):
            where = item.expire()
            with self._lock:
                self.expired += 1
                if where == "running":
                    self.abandoned += 1
                else:
                    # Never started: it no longer occupies the queue.
                    self._queued -= 1
                    self._idle.notify_all()
            raise DeadlineExceeded(
                f"request exceeded its {timeout:.3g}s deadline "
                f"({'still queued' if where == 'queued' else 'computation abandoned'})"
            )
        if item.error is not None:
            raise item.error
        return item.result

    def _retry_after_locked(self) -> float:
        # Everything ahead of a retry, paced by recent task duration.
        backlog = self._queued + self._inflight
        return max(1.0, self._task_seconds * backlog / self.workers)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            if not item.try_start():
                # Expired while queued; the waiter already left (and
                # decremented the queue) — nothing to account here.
                item.done.set()
                continue
            with self._lock:
                self._queued -= 1
                self._inflight += 1
            start = time.monotonic()
            try:
                item.result = item.fn()
            except Exception as exc:
                item.error = exc
            finally:
                elapsed = time.monotonic() - start
                with self._lock:
                    self._inflight -= 1
                    if item.error is not None:
                        self.failed += 1
                    else:
                        self.completed += 1
                    self._task_seconds = (
                        0.8 * self._task_seconds + 0.2 * elapsed
                    )
                    self._idle.notify_all()
                item.done.set()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests waiting for a worker right now."""
        with self._lock:
            return self._queued

    @property
    def inflight(self) -> int:
        """Computations running right now."""
        with self._lock:
            return self._inflight

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "workers": self.workers,
                "max_queue": self.max_queue,
                "depth": self._queued,
                "inflight": self._inflight,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "expired": self.expired,
                "abandoned": self.abandoned,
            }

    def drain(self, timeout: float = 10.0) -> bool:
        """Stop accepting, wait for in-flight work, retire workers.

        Returns ``True`` when everything finished inside ``timeout``;
        ``False`` when abandoned computations were still running (the
        workers are daemons, so they cannot block process exit).
        Idempotent.
        """
        deadline = time.monotonic() + timeout
        with self._idle:
            self._accepting = False
            while self._queued or self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(timeout=remaining)
            clean = not (self._queued or self._inflight)
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        return clean
