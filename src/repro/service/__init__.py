"""Scheduling-as-a-service: the ``repro serve`` HTTP front end.

A stdlib-only JSON service over the same pipeline the CLI drives:
``POST /v1/schedule`` synthesizes a fault-tolerant schedule tree (the
response bytes are identical to ``repro schedule``'s output file),
``POST /v1/evaluate`` runs the Monte-Carlo utility evaluation, and the
``/healthz`` / ``/readyz`` / ``/metrics`` probes expose liveness,
degradation (tripped store breaker, degraded worker pool) and the
store/queue/pool counters.  See :mod:`repro.service.server` for the
lifecycle and :mod:`repro.service.errors` for the error taxonomy.
"""

from repro.service.errors import ServiceError
from repro.service.server import ReproServer, ServiceHandle, serve
from repro.service.state import ServiceConfig, ServiceState

__all__ = [
    "ReproServer",
    "ServiceConfig",
    "ServiceError",
    "ServiceHandle",
    "ServiceState",
    "serve",
]
