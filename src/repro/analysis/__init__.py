"""Analysis helpers: Gantt charts, statistics and synthesis reports."""

from repro.analysis.gantt import render_gantt
from repro.analysis.report import SynthesisReport, synthesis_report
from repro.analysis.treeview import render_tree
from repro.analysis.stats import (
    confidence_interval_95,
    geometric_mean,
    mean_std,
    paired_improvement_percent,
)

__all__ = [
    "SynthesisReport",
    "confidence_interval_95",
    "geometric_mean",
    "mean_std",
    "paired_improvement_percent",
    "render_gantt",
    "render_tree",
    "synthesis_report",
]
