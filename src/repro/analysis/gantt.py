"""ASCII Gantt charts of simulated operation cycles.

Renders an :class:`~repro.runtime.ExecutionResult` trace as a
character timeline, one row per process in execution order, with
execution (``=``), recovery overhead (``r``), faulted attempts (``x``)
and the schedule switches annotated.  Intended for examples, debugging
and documentation — an at-a-glance view of how the online scheduler
reacted to the scenario.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.application import Application
from repro.runtime.trace import EventKind, ExecutionResult


def _collect_bars(
    result: ExecutionResult,
) -> List[Tuple[str, int, int, str]]:
    """(process, start, end, glyph) bars from the event trace."""
    bars: List[Tuple[str, int, int, str]] = []
    open_starts: Dict[Tuple[str, int], int] = {}
    for event in result.events:
        if event.kind is EventKind.START:
            open_starts[(event.process, event.detail)] = event.time
        elif event.kind in (EventKind.COMPLETE, EventKind.FAULT):
            key = (event.process, event.detail)
            start = open_starts.pop(key, None)
            if start is None:
                continue
            glyph = "=" if event.kind is EventKind.COMPLETE else "x"
            bars.append((event.process, start, event.time, glyph))
        elif event.kind is EventKind.RECOVERY:
            # Recovery overhead µ occupies [time, next start).
            bars.append((event.process, event.time, None, "r"))
    # Resolve recovery bar ends: they extend to the next start of the
    # same process.
    resolved: List[Tuple[str, int, int, str]] = []
    for index, (name, start, end, glyph) in enumerate(bars):
        if end is not None:
            resolved.append((name, start, end, glyph))
            continue
        next_start = None
        for other, other_start, other_end, other_glyph in bars:
            if other == name and other_glyph != "r" and other_start >= start:
                next_start = other_start if next_start is None else min(
                    next_start, other_start
                )
        resolved.append((name, start, next_start or start, glyph))
    return resolved


def render_gantt(
    app: Application,
    result: ExecutionResult,
    width: int = 78,
    show_switches: bool = True,
) -> str:
    """Render the cycle as an ASCII chart.

    ``width`` is the number of character columns used for the period;
    every bar is scaled accordingly (minimum one column so short
    processes stay visible).
    """
    if not result.events:
        return "(no events recorded — run the scheduler with record_events=True)"
    bars = _collect_bars(result)
    if not bars:
        return "(no executions in trace)"
    horizon = max(app.period, result.makespan, 1)
    scale = width / horizon

    order: List[str] = []
    for name, _, _, _ in bars:
        if name not in order:
            order.append(name)
    label_width = max(len(n) for n in order) + 1

    lines: List[str] = []
    header = " " * label_width + f"0{' ' * (width - len(str(horizon)) - 1)}{horizon}"
    lines.append(header)
    for name in order:
        row = [" "] * width
        for bar_name, start, end, glyph in bars:
            if bar_name != name:
                continue
            a = min(width - 1, int(start * scale))
            b = min(width - 1, max(a, int(end * scale) - 1))
            for i in range(a, b + 1):
                row[i] = glyph
        deadline = app.process(name).deadline
        if deadline is not None:
            mark = min(width - 1, int(deadline * scale))
            row[mark] = "|" if row[mark] == " " else row[mark]
        suffix = ""
        if name in result.completion_times:
            suffix = f"  @{result.completion_times[name]}"
        lines.append(name.ljust(label_width) + "".join(row) + suffix)
    if result.dropped:
        lines.append(f"dropped: {', '.join(sorted(result.dropped))}")
    if show_switches and result.switches:
        switch_events = result.events_of_kind(EventKind.SWITCH)
        notes = ", ".join(
            f"t={e.time} after {e.process} -> node {e.detail}"
            for e in switch_events
        )
        lines.append(f"switches: {notes}")
    lines.append(
        f"utility: {result.utility:.1f}   faults: {result.faults_observed}"
        f"   makespan: {result.makespan}"
    )
    return "\n".join(lines)
