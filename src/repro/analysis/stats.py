"""Small statistics helpers shared by benches and examples."""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

import numpy as np


def mean_std(values: Iterable[float]) -> Tuple[float, float]:
    """Sample mean and standard deviation (0.0 std for n <= 1)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return float("nan"), float("nan")
    if data.size == 1:
        return float(data[0]), 0.0
    return float(np.mean(data)), float(np.std(data, ddof=1))


def confidence_interval_95(values: Iterable[float]) -> Tuple[float, float]:
    """Normal-approximation 95% CI of the mean."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return float("nan"), float("nan")
    mean = float(np.mean(data))
    if data.size == 1:
        return mean, mean
    half = 1.96 * float(np.std(data, ddof=1)) / math.sqrt(data.size)
    return mean - half, mean + half


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; values must be positive."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return float("nan")
    if np.any(data <= 0):
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(data))))


def paired_improvement_percent(
    baseline: Iterable[float], improved: Iterable[float]
) -> List[float]:
    """Per-pair improvement of ``improved`` over ``baseline`` in %."""
    base = list(baseline)
    new = list(improved)
    if len(base) != len(new):
        raise ValueError("paired comparison needs equal-length sequences")
    out: List[float] = []
    for b, n in zip(base, new):
        if b <= 0:
            continue
        out.append(100.0 * (n - b) / b)
    return out
