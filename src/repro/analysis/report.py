"""Synthesis reports: a human-readable summary of one application's
scheduling outcome.

:func:`synthesis_report` runs the full pipeline (FTSS root, FTSF
baseline, FTQS tree, paired Monte-Carlo evaluation) on one application
and renders a markdown report a systems engineer can review: what was
scheduled, what was dropped and why it is safe, how the tree is laid
out, and how the approaches compare on identical scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import UnschedulableError
from repro.evaluation.montecarlo import MonteCarloEvaluator, normalized_to
from repro.model.application import Application
from repro.pipeline.runner import synthesize_tree
from repro.quasistatic.ftqs import FTQSConfig
from repro.quasistatic.tree import QSTree
from repro.scheduling.fschedule import FSchedule
from repro.scheduling.ftsf import ftsf
from repro.scheduling.ftss import ftss


@dataclass
class SynthesisReport:
    """All artifacts produced for one application."""

    app: Application
    root: FSchedule
    tree: QSTree
    baseline: Optional[FSchedule]
    utilities: Dict[str, Dict[int, float]]  # approach -> faults -> %

    def to_markdown(self) -> str:
        app = self.app
        lines: List[str] = []
        lines.append("# Schedule synthesis report")
        lines.append("")
        lines.append(
            f"- processes: {len(app)} ({len(app.hard)} hard, "
            f"{len(app.soft)} soft)"
        )
        lines.append(
            f"- period T = {app.period}, fault budget k = {app.k}, "
            f"recovery overhead mu = {app.mu}"
        )
        load = app.worst_case_load()
        pressure = load / app.period
        lines.append(
            f"- worst-case load {load} ({100 * pressure:.0f}% of the "
            f"period{' — overloaded; dropping required' if pressure > 1 else ''})"
        )
        lines.append("")
        lines.append("## Root f-schedule (FTSS)")
        lines.append("")
        lines.append(f"- order: {' -> '.join(self.root.order)}")
        caps = {
            e.name: e.reexecutions
            for e in self.root.entries
            if e.reexecutions > 0
        }
        lines.append(f"- re-execution caps: {caps if caps else 'none'}")
        dropped = sorted(self.root.dropped)
        lines.append(
            f"- statically dropped soft processes: "
            f"{', '.join(dropped) if dropped else 'none'}"
        )
        lines.append(
            f"- worst-case makespan {self.root.worst_case_makespan()} "
            f"<= T = {app.period}"
        )
        lines.append("")
        lines.append("## Quasi-static tree (FTQS)")
        lines.append("")
        lines.append(
            f"- {len(self.tree)} nodes / "
            f"{self.tree.different_schedules()} distinct schedules, "
            f"depth {self.tree.depth()}"
        )
        n_arcs = sum(len(n.arcs) for n in self.tree.nodes())
        lines.append(f"- {n_arcs} switch arcs")
        for node in self.tree.nodes():
            for arc in node.arcs:
                lines.append(
                    f"  - node {node.node_id}: after `{arc.process}` in "
                    f"[{arc.lo}, {arc.hi}]"
                    + (
                        f" (>= {arc.required_faults} faults observed)"
                        if arc.required_faults
                        else ""
                    )
                    + f" -> node {arc.target}"
                )
        lines.append("")
        lines.append("## Evaluation (paired scenarios, % of FTQS no-fault)")
        lines.append("")
        fault_counts = sorted(
            next(iter(self.utilities.values())).keys()
        )
        header = "| approach | " + " | ".join(
            f"{f} faults" for f in fault_counts
        ) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (len(fault_counts) + 1))
        for approach, per_fault in self.utilities.items():
            row = f"| {approach} | " + " | ".join(
                f"{per_fault[f]:.1f}" for f in fault_counts
            ) + " |"
            lines.append(row)
        lines.append("")
        return "\n".join(lines)


def synthesis_report(
    app: Application,
    max_schedules: int = 8,
    n_scenarios: int = 200,
    seed: int = 1,
    execution="batched",
    synthesis: str = "fast",
    synthesis_jobs: int = 1,
    stats=None,
    resources=None,
    store=None,
) -> SynthesisReport:
    """Run the full pipeline on ``app`` and assemble the report.

    ``resources``/``store`` route synthesis and evaluation through the
    shared worker pools and the content-addressed tree cache of
    :mod:`repro.pipeline` when provided.
    """
    root = ftss(app)
    if root is None:
        raise UnschedulableError(
            "the application admits no fault-tolerant schedule"
        )
    tree = synthesize_tree(
        app,
        root,
        FTQSConfig(max_schedules=max_schedules),
        synthesis=synthesis,
        synthesis_jobs=synthesis_jobs,
        stats=stats,
        resources=resources,
        store=store,
    )
    baseline = ftsf(app)
    plans = {"FTQS": tree, "FTSS": root}
    if baseline is not None:
        plans["FTSF"] = baseline
    with MonteCarloEvaluator(
        app,
        n_scenarios=n_scenarios,
        seed=seed,
        execution=execution,
        resources=resources,
    ) as evaluator:
        results = evaluator.compare(plans)
    utilities = normalized_to(results, "FTQS", reference_faults=0)
    return SynthesisReport(
        app=app,
        root=root,
        tree=tree,
        baseline=baseline,
        utilities=utilities,
    )
