"""ASCII rendering of quasi-static trees.

Shows the tree the way the online scheduler sees it: each node's
schedule order (with re-execution caps), and each arc's switch
condition.  Used by examples and the synthesis report for quick visual
inspection of what FTQS produced.
"""

from __future__ import annotations

from typing import List

from repro.quasistatic.tree import QSNode, QSTree


def _schedule_label(node: QSNode, max_entries: int = 8) -> str:
    parts = []
    for entry in node.schedule.entries[:max_entries]:
        if entry.reexecutions:
            parts.append(f"{entry.name}+{entry.reexecutions}")
        else:
            parts.append(entry.name)
    if len(node.schedule.entries) > max_entries:
        parts.append(f"... ({len(node.schedule.entries)} total)")
    return " ".join(parts)


def render_tree(tree: QSTree, max_entries: int = 8) -> str:
    """Render ``tree`` as an indented ASCII outline.

    Example output::

        [0] P1+1 P3 P2
         |- after P1 in [30, 40] -> [1]
         |   [1] P2 P3
    """
    lines: List[str] = []

    def visit(node_id: int, depth: int) -> None:
        node = tree.node(node_id)
        indent = " |  " * depth
        marker = f"[{node.node_id}]"
        extra = ""
        if node.assumed_faults:
            extra = f"  (assumes {node.assumed_faults} fault(s))"
        dropped = sorted(node.schedule.dropped)
        drop_note = f"  drops: {', '.join(dropped)}" if dropped else ""
        lines.append(
            f"{indent}{marker} {_schedule_label(node, max_entries)}"
            f"{extra}{drop_note}"
        )
        for arc in node.arcs:
            condition = f"after {arc.process} in [{arc.lo}, {arc.hi}]"
            if arc.required_faults:
                condition += f", >= {arc.required_faults} faults"
            lines.append(
                f"{indent} |- {condition} -> [{arc.target}]"
            )
            visit(arc.target, depth + 1)

    visit(tree.root_id, 0)
    return "\n".join(lines)
