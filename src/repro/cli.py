"""Command-line interface: ``python -m repro ...`` / ``repro ...``.

Sub-commands:

* ``experiment {fig9a,fig9b,table1,cc,ablations,sweeps}`` — regenerate
  a paper table/figure (``--paper-scale`` restores the full §6 sizes;
  ``--cache-dir DIR`` / ``--cache-backend {fs,memory,redis}`` cache
  synthesized trees content-addressed, so repeated identical runs
  skip every FTQS build; ``--checkpoint DIR``/``--resume`` journal
  completed evaluation units so a killed sweep resumes byte-identical;
  ``--chaos SPEC`` injects deterministic faults to exercise the
  recovery paths);
* ``serve`` — run the scheduling service: ``POST /v1/schedule`` /
  ``POST /v1/evaluate`` JSON over HTTP with health/readiness/metrics
  probes, bounded-queue backpressure (429), per-request deadlines
  (504) and graceful drain on SIGTERM;
* ``demo`` — run the quickstart pipeline on the paper's Fig. 1
  example and print a Gantt chart;
* ``schedule APP.json`` — synthesize a quasi-static tree for an
  application stored as JSON and write it next to it;
* ``simulate APP.json TREE.json`` — replay random scenarios against a
  stored tree and report utilities;
* ``export APP.json TREE.json DIR`` — render the tree as embedded C
  tables (header + source) into ``DIR``;
* ``report APP.json`` — run the full pipeline and print a markdown
  synthesis report.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from dataclasses import replace
from typing import List, Optional

from repro.evaluation.experiments import (
    AblationConfig,
    CCConfig,
    Fig9Config,
    Table1Config,
    format_ablations,
    format_fig9,
    format_table1,
    run_ablations,
    run_cc,
    run_fig9,
    run_table1,
)


def _positive_int(text: str) -> int:
    """argparse type for worker counts: an integer >= 1.

    Rejects ``--jobs 0`` / ``--synthesis-jobs -2`` at parse time with
    a one-line usage error instead of a deep traceback out of the
    pool machinery.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"worker count must be at least 1, got {value}"
        )
    return value


def _executor_spec(text: str):
    """argparse type for ``--executor SPEC``: the parsed config itself.

    A malformed spec dies at parse time (exit 2) with the same
    one-line message — enumerating the valid engines and modes — that
    the library raises.
    """
    from repro.errors import RuntimeModelError
    from repro.execution import ExecutionConfig

    try:
        return ExecutionConfig.parse(text)
    except RuntimeModelError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _engine_name(text: str) -> str:
    """argparse type for the deprecated ``--engine``: same one-line
    enumeration as a bad ``--executor`` spec."""
    from repro.execution import ENGINES, choices_line

    if text not in ENGINES:
        raise argparse.ArgumentTypeError(
            f"unknown engine {text!r}; {choices_line()}"
        )
    return text


def _resolve_execution(args: argparse.Namespace):
    """The :class:`ExecutionConfig` the flags mean.

    ``--executor`` wins; the deprecated ``--engine``/``--jobs`` map
    onto it (``E``/``N`` → ``E@processes:N``) and cannot be combined
    with it.
    """
    from repro.execution import ExecutionConfig

    executor = getattr(args, "executor", None)
    engine = getattr(args, "engine", None)
    jobs = getattr(args, "jobs", None)
    if executor is not None:
        if engine is not None or jobs is not None:
            raise SystemExit(
                "error: --executor supersedes --engine/--jobs; pass "
                "one or the other"
            )
        return executor
    return ExecutionConfig.from_legacy(engine=engine, jobs=jobs)


def _open_store(args: argparse.Namespace):
    """The tree store for ``--cache-backend``/``--cache-dir``.

    ``fs`` (the default) activates only when ``--cache-dir`` is given
    — its directory is created on demand, but a nonexistent *parent*
    is almost always a typo, so that dies with a clear error instead
    of silently caching into a surprise location.  ``memory`` needs no
    flags at all; ``redis`` connects to ``--cache-url`` (or the
    default localhost URL) and fails fast — missing redis package or
    unreachable server — before any synthesis work starts.
    """
    kind = getattr(args, "cache_backend", "fs") or "fs"
    cache_dir = getattr(args, "cache_dir", None)
    cache_url = getattr(args, "cache_url", None)
    if kind != "fs" and cache_dir:
        raise SystemExit(
            f"error: --cache-dir only applies to --cache-backend fs "
            f"(got --cache-backend {kind})"
        )
    if kind != "redis" and cache_url:
        raise SystemExit(
            "error: --cache-url only applies to --cache-backend redis"
        )
    if kind == "fs":
        if not cache_dir:
            return None
        parent = os.path.dirname(os.path.abspath(cache_dir))
        if not os.path.isdir(parent):
            raise SystemExit(
                f"error: --cache-dir parent directory does not exist: "
                f"{parent}"
            )
        if os.path.exists(cache_dir) and not os.path.isdir(cache_dir):
            raise SystemExit(
                f"error: --cache-dir exists but is not a directory: "
                f"{cache_dir}"
            )
    from repro.pipeline.store import TreeStore, open_backend

    try:
        backend = open_backend(kind, cache_dir=cache_dir, url=cache_url)
    except Exception as exc:
        # Missing redis package, unreachable server, bad URL: a clear
        # one-liner beats a traceback out of the connection machinery.
        raise SystemExit(f"error: --cache-backend {kind}: {exc}")
    return TreeStore(backend=backend)


def _wants_store(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "cache_dir", None)
        or getattr(args, "cache_backend", "fs") not in (None, "fs")
    )


def _synthesis_routing(args: argparse.Namespace):
    """(kwargs for run_*, stats collector or None) from the CLI flags."""
    from repro.quasistatic.synthesis import SynthesisStats

    stats = (
        SynthesisStats()
        if args.synthesis == "fast" or _wants_store(args)
        else None
    )
    return (
        {
            "synthesis": args.synthesis,
            "synthesis_jobs": args.synthesis_jobs,
            "stats": stats,
        },
        stats,
    )


def _print_synthesis_line(stats, store=None) -> None:
    """Construction summary mirroring the simulate fast-path line."""
    if stats is None:
        return
    if store is not None:
        stats.absorb_store(store)
    if stats.trees_built or stats.store_hits or stats.store_misses:
        print(stats.summary_line())


def _open_checkpoint(args: argparse.Namespace, name: str, config=None):
    """The resume journal for ``--checkpoint``/``--resume`` (or None).

    The workload fingerprint masks the routing knobs, so the routed
    config can be passed directly: a sweep checkpointed with
    ``--jobs 4`` resumes fine under ``--jobs 1``.  Manifest mismatches
    (wrong experiment, different workload) die with the checkpoint
    module's one-line explanation instead of a traceback.
    """
    directory = getattr(args, "checkpoint", None)
    if not directory:
        return None
    from repro.errors import RuntimeModelError
    from repro.pipeline.checkpoint import ExperimentCheckpoint

    try:
        return ExperimentCheckpoint(
            directory,
            experiment=name,
            config=config,
            resume=getattr(args, "resume", False),
        )
    except RuntimeModelError as exc:
        raise SystemExit(f"error: {exc}")


def _chaos_plan(text: str):
    """argparse type for ``--chaos SPEC``: the parsed plan itself.

    Parsing at argument time means a typo dies as a one-line usage
    error before any experiment state (stores, checkpoints, pools)
    has been touched — not minutes into a long run.
    """
    from repro.pipeline import chaos

    try:
        return chaos.ChaosPlan.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _chaos_context(args: argparse.Namespace):
    """Scoped activation of the already-parsed ``--chaos`` plan."""
    plan = getattr(args, "chaos", None)
    if plan is None:
        return contextlib.nullcontext()
    from repro.pipeline import chaos

    return chaos.active(plan)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.pipeline.chaos import ChaosKill
    from repro.pipeline.resources import ResourceManager
    from repro.runtime.engine.parallel import (
        pool_recovery,
        reset_pool_recovery,
    )

    name = args.name
    if getattr(args, "resume", False) and not getattr(
        args, "checkpoint", None
    ):
        raise SystemExit(
            "error: --resume needs --checkpoint DIR (the journal to "
            "resume from)"
        )
    routing = {"execution": _resolve_execution(args).spec()}
    synthesis, stats = _synthesis_routing(args)
    reset_pool_recovery()
    store = _open_store(args)
    synthesis["store"] = store
    checkpoint = None
    try:
        # The chaos plan (if any) is active for the whole run; the
        # manager owns the store too, so leaving the block — normally
        # or while unwinding an interrupt — releases the worker pools
        # and the store backend's connections together.
        with _chaos_context(args), ResourceManager(
            store=store
        ) as resources:
            synthesis["resources"] = resources
            if name in ("fig9a", "fig9b"):
                config = (
                    Fig9Config.paper_scale()
                    if args.paper_scale
                    else Fig9Config()
                )
                if args.apps:
                    config = replace(config, apps_per_size=args.apps)
                config = replace(config, **routing)
                checkpoint = _open_checkpoint(args, name, config)
                synthesis["checkpoint"] = checkpoint
                rows = run_fig9(config, **synthesis)
                print(
                    format_fig9(rows, panel="a" if name == "fig9a" else "b")
                )
            elif name == "table1":
                config = (
                    Table1Config.paper_scale()
                    if args.paper_scale
                    else Table1Config()
                )
                config = replace(config, **routing)
                checkpoint = _open_checkpoint(args, name, config)
                synthesis["checkpoint"] = checkpoint
                print(format_table1(run_table1(config, **synthesis)))
            elif name == "cc":
                config = (
                    CCConfig.paper_scale() if args.paper_scale else CCConfig()
                )
                config = replace(config, **routing)
                checkpoint = _open_checkpoint(args, name, config)
                synthesis["checkpoint"] = checkpoint
                print(run_cc(config, **synthesis).format())
            elif name == "ablations":
                config = AblationConfig(**routing)
                checkpoint = _open_checkpoint(args, name, config)
                synthesis["checkpoint"] = checkpoint
                print(format_ablations(run_ablations(config, **synthesis)))
            elif name == "sweeps":
                from repro.evaluation.experiments import (
                    SweepConfig,
                    format_sweep,
                    run_fault_budget_sweep,
                    run_soft_ratio_sweep,
                )

                config = SweepConfig(**routing)
                checkpoint = _open_checkpoint(args, name, config)
                synthesis["checkpoint"] = checkpoint
                print(
                    format_sweep(
                        run_soft_ratio_sweep(config=config, **synthesis),
                        "soft ratio",
                    )
                )
                print()
                print(
                    format_sweep(
                        run_fault_budget_sweep(config=config, **synthesis),
                        "fault budget k",
                    )
                )
            else:
                print(f"unknown experiment {name!r}", file=sys.stderr)
                return 2
        _print_synthesis_line(stats, store)
        if checkpoint is not None:
            print(checkpoint.summary_line())
        recovery = pool_recovery()
        if recovery.any():
            print(f"resilience: pool {recovery.summary()}")
        return 0
    except KeyboardInterrupt:
        # Pools and store were already released by the with-block's
        # unwinding; report partial progress in one line, no traceback.
        if checkpoint is not None:
            progress = (
                f"{checkpoint.journaled} unit(s) journaled this "
                f"session, {checkpoint.completed} on disk — resume "
                f"with --checkpoint {checkpoint.directory} --resume"
            )
        else:
            progress = (
                "partial progress discarded (use --checkpoint DIR for "
                "resumable runs)"
            )
        print(f"interrupted: {progress}", file=sys.stderr)
        return 130
    except ChaosKill as exc:
        # The chaos plan's scripted mid-run kill: distinct exit code
        # so the harness can tell "died as scripted" from real failures.
        print(f"chaos: {exc}", file=sys.stderr)
        if checkpoint is not None:
            print(checkpoint.summary_line(), file=sys.stderr)
        return 75
    finally:
        if checkpoint is not None:
            checkpoint.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.pipeline.store.resilient import ResilientBackend
    from repro.service import ServiceConfig, serve

    store = _open_store(args)
    if store is not None and not isinstance(store.backend, ResilientBackend):
        # Every served backend gets retry + circuit breaker: a cache
        # outage (or a --chaos store-fail burst) must degrade the
        # readiness probe, never fail scheduling requests.
        store.backend = ResilientBackend(store.backend)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        execution=_resolve_execution(args),
        synthesis_jobs=args.synthesis_jobs,
        synthesis=args.synthesis,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        request_timeout=(
            args.request_timeout if args.request_timeout > 0 else None
        ),
        drain_timeout=args.drain_timeout,
        store=store,
    )
    with _chaos_context(args):
        return serve(config)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.analysis.gantt import render_gantt
    from repro.examples_support import paper_fig1_application
    from repro.faults.injection import ScenarioSampler
    from repro.quasistatic.ftqs import schedule_application
    from repro.runtime.online import simulate

    app = paper_fig1_application()
    result = schedule_application(app, max_schedules=args.schedules)
    print(f"quasi-static tree: {result.summary()}")
    sampler = ScenarioSampler(app, seed=args.seed)
    scenario = sampler.sample(faults=args.faults)
    outcome = simulate(app, result.tree, scenario)
    print(render_gantt(app, outcome))
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.io.json_io import (
        application_from_dict,
        load_json,
        save_json,
        tree_to_dict,
    )
    from repro.quasistatic.ftqs import schedule_application

    app = application_from_dict(load_json(args.application))
    synthesis, stats = _synthesis_routing(args)
    result = schedule_application(
        app,
        max_schedules=args.schedules,
        synthesis=args.synthesis,
        jobs=args.synthesis_jobs,
        stats=stats,
    )
    output = args.output or args.application.replace(".json", ".tree.json")
    save_json(tree_to_dict(result.tree), output)
    print(f"{result.summary()}\nwritten to {output}")
    _print_synthesis_line(stats)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.evaluation.montecarlo import MonteCarloEvaluator
    from repro.io.json_io import (
        application_from_dict,
        load_json,
        tree_from_dict,
    )

    app = application_from_dict(load_json(args.application))
    tree = tree_from_dict(app, load_json(args.tree))
    execution = _resolve_execution(args)
    if execution.engine == "kernel":
        from repro.runtime.engine.kernel import reset_kernel_stats

        reset_kernel_stats()
    if execution.mode == "threads":
        from repro.runtime.engine.threads import reset_thread_stats

        reset_thread_stats()
    evaluator = MonteCarloEvaluator(
        app,
        n_scenarios=args.scenarios,
        fault_counts=list(range(app.k + 1)),
        seed=args.seed,
        execution=execution,
    )
    with _chaos_context(args), evaluator:
        outcomes = evaluator.evaluate(tree)
    for faults, outcome in sorted(outcomes.items()):
        status = "ok" if outcome.ok else "DEADLINE MISSES"
        fast_path = (
            f", fast path {100.0 * outcome.fast_path_share:.1f}% "
            f"({outcome.fallbacks} oracle fallbacks)"
            if execution.engine in ("batched", "kernel")
            else ""
        )
        print(
            f"{faults} faults: mean utility {outcome.mean_utility:.1f}, "
            f"{outcome.mean_switches:.2f} switches/cycle"
            f"{fast_path} [{status}]"
        )
    if execution.engine == "kernel":
        from repro.runtime.engine.kernel import kernel_stats

        print(f"simulate: kernel {kernel_stats().summary()}")
    if execution.mode == "threads":
        from repro.runtime.engine.threads import thread_stats

        print(f"simulate: threads {thread_stats().summary()}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.io.c_export import write_c_tables
    from repro.io.json_io import (
        application_from_dict,
        load_json,
        tree_from_dict,
    )

    app = application_from_dict(load_json(args.application))
    tree = tree_from_dict(app, load_json(args.tree))
    header_path, source_path = write_c_tables(
        app, tree, args.directory, symbol=args.symbol
    )
    print(f"wrote {header_path}\nwrote {source_path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import synthesis_report
    from repro.io.json_io import application_from_dict, load_json

    app = application_from_dict(load_json(args.application))
    _, stats = _synthesis_routing(args)
    report = synthesis_report(
        app,
        max_schedules=args.schedules,
        n_scenarios=args.scenarios,
        seed=args.seed,
        execution=_resolve_execution(args),
        synthesis=args.synthesis,
        synthesis_jobs=args.synthesis_jobs,
        stats=stats,
    )
    print(report.to_markdown())
    _print_synthesis_line(stats)
    return 0


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    """Tree-store flags shared by ``experiment`` and ``serve``."""
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed tree store: identical (application, "
        "root, FTQS config) synthesis inputs reload the cached tree "
        "instead of rebuilding, so repeated runs report 100%% store "
        "hits and zero FTQS builds (hit/miss/error counts appear on "
        "the 'synthesis:' summary line); implies --cache-backend fs",
    )
    parser.add_argument(
        "--cache-backend",
        choices=["fs", "memory", "redis"],
        default="fs",
        help="where the tree store lives: 'fs' = a --cache-dir "
        "directory of <fingerprint>.json files, 'memory' = an "
        "in-process LRU (no flags, no dependencies — caches repeats "
        "within one run), 'redis' = a server shared by a fleet of "
        "workers (needs the redis package; see --cache-url)",
    )
    parser.add_argument(
        "--cache-url",
        default=None,
        help="redis connection URL for --cache-backend redis "
        "(default redis://localhost:6379/0)",
    )


def _add_chaos_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--chaos",
        type=_chaos_plan,
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for exercising the "
        "recovery paths: comma-separated tokens — kill-worker@I[xN] "
        "(SIGKILL the worker on task I, N times), hang-worker@I, "
        "store-fail@N / store-fail@A-B / store-fail@~K/M (fail the "
        "Nth / every A..Bth / K seeded of the first M store ops), "
        "slow-request@N[xS] (wedge the Nth served compute request "
        "for S seconds, default 30), kill-run@N (die after N "
        "journaled units; exit code 75), kernel-fail@N / "
        "kernel-fail@A-B (fail the Nth / every A..Bth kernel compile "
        "attempt, degrading to the batched engine), thread-fail@N / "
        "thread-fail@A-B (fail the Nth / every A..Bth threaded "
        "evaluation, falling back to process sharding), budget@N, "
        "seed@S; a bad token fails at parse time",
    )


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """Simulation-execution routing flags shared by the sub-commands."""
    parser.add_argument(
        "--executor",
        type=_executor_spec,
        default=None,
        metavar="SPEC",
        help="Monte-Carlo execution spec ENGINE[@MODE[:WORKERS]] — "
        "engines: reference (pure-Python oracle loop), batched (NumPy "
        "array engine), kernel (generated-C; needs a C compiler, "
        "degrades to batched with a counted reason); modes: inline "
        "(default), processes (shard across worker processes), "
        "threads (shard across GIL-free threads; kernel engine only, "
        "other engines fall back to processes with a counted reason). "
        "Results are bit-identical for every spec, only speed "
        "differs; e.g. 'kernel@threads:8', 'batched@processes:4', "
        "'reference' (default: batched)",
    )
    parser.add_argument(
        "--engine",
        type=_engine_name,
        default=None,
        metavar="ENGINE",
        help="deprecated alias for --executor ENGINE",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="deprecated alias for --executor ENGINE@processes:N",
    )


def _add_synthesis_options(parser: argparse.ArgumentParser) -> None:
    """Synthesis-engine routing flags shared by the sub-commands."""
    from repro.quasistatic.ftqs import SYNTHESIS_ENGINES

    parser.add_argument(
        "--synthesis",
        choices=list(SYNTHESIS_ENGINES),
        default="fast",
        help="FTQS synthesis engine: the reference construction or the "
        "memoized/vectorized engine (identical trees, several times "
        "faster)",
    )
    parser.add_argument(
        "--synthesis-jobs",
        type=_positive_int,
        default=1,
        help="worker processes for FTQS candidate evaluation "
        "(identical trees for any count)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Fault-tolerant quasi-static scheduling (Izosimov et al., "
            "DATE 2008) — schedule synthesis, simulation and the "
            "paper's experiments."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a table/figure")
    exp.add_argument(
        "name",
        choices=["fig9a", "fig9b", "table1", "cc", "ablations", "sweeps"],
    )
    exp.add_argument(
        "--paper-scale",
        action="store_true",
        help="full §6 sizes (50 apps/size, 20k scenarios) — slow",
    )
    exp.add_argument("--apps", type=int, default=0, help="apps per size")
    _add_cache_options(exp)
    exp.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="journal completed evaluation units to DIR (a manifest "
        "plus an append-only JSONL, fsynced per unit) so a killed run "
        "can be resumed with --resume; the resumed run skips finished "
        "work and emits rows byte-identical to an uninterrupted run",
    )
    exp.add_argument(
        "--resume",
        action="store_true",
        help="resume from an existing --checkpoint DIR: journaled "
        "units are decoded instead of re-simulated (refuses a "
        "checkpoint whose experiment or workload fingerprint does "
        "not match)",
    )
    _add_chaos_option(exp)
    _add_engine_options(exp)
    _add_synthesis_options(exp)
    exp.set_defaults(func=_cmd_experiment)

    srv = sub.add_parser(
        "serve",
        help="run the scheduling service (JSON over HTTP)",
        description="Serve POST /v1/schedule and POST /v1/evaluate "
        "over HTTP, plus the /healthz, /readyz and /metrics probes. "
        "Responses of /v1/schedule are byte-identical to the files "
        "the 'schedule' sub-command writes. SIGTERM/Ctrl-C drains "
        "in-flight requests and exits 0.",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port (0 = pick an ephemeral port; the bound "
        "address is printed as 'serving on http://HOST:PORT')",
    )
    srv.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=4,
        help="scheduling/evaluation requests computed concurrently",
    )
    srv.add_argument(
        "--max-queue",
        type=_positive_int,
        default=16,
        help="requests allowed to wait for a worker; beyond that new "
        "requests are shed with 429 and a Retry-After hint",
    )
    srv.add_argument(
        "--request-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-request wall-clock deadline — an overdue request "
        "gets 504 and its computation is discarded (0 = no deadline)",
    )
    srv.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long a graceful shutdown waits for in-flight work",
    )
    _add_cache_options(srv)
    _add_chaos_option(srv)
    _add_engine_options(srv)
    _add_synthesis_options(srv)
    srv.set_defaults(func=_cmd_serve)

    demo = sub.add_parser("demo", help="run the Fig. 1 example")
    demo.add_argument("--schedules", type=int, default=8)
    demo.add_argument("--faults", type=int, default=1)
    demo.add_argument("--seed", type=int, default=1)
    demo.set_defaults(func=_cmd_demo)

    sched = sub.add_parser("schedule", help="synthesize a tree for an app")
    sched.add_argument("application", help="application JSON file")
    sched.add_argument("--schedules", type=int, default=16)
    sched.add_argument("--output", default=None)
    _add_synthesis_options(sched)
    sched.set_defaults(func=_cmd_schedule)

    sim = sub.add_parser("simulate", help="replay scenarios against a tree")
    sim.add_argument("application")
    sim.add_argument("tree")
    sim.add_argument("--scenarios", type=int, default=200)
    sim.add_argument("--seed", type=int, default=1)
    _add_chaos_option(sim)
    _add_engine_options(sim)
    sim.set_defaults(func=_cmd_simulate)

    export = sub.add_parser("export", help="render a tree as C tables")
    export.add_argument("application")
    export.add_argument("tree")
    export.add_argument("directory")
    export.add_argument("--symbol", default="app")
    export.set_defaults(func=_cmd_export)

    report = sub.add_parser("report", help="print a synthesis report")
    report.add_argument("application")
    report.add_argument("--schedules", type=int, default=8)
    report.add_argument("--scenarios", type=int, default=200)
    report.add_argument("--seed", type=int, default=1)
    _add_engine_options(report)
    _add_synthesis_options(report)
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
