"""Deadline and period assignment for generated workloads.

The paper generates applications that are schedulable but loaded
enough that soft processes compete for slack; deadlines/periods are
not published, so we derive them from worst-case bounds (DESIGN.md
note 7):

* a **hard-only bound** — the completion time of each hard process
  when the hard processes run alone in deadline-agnostic topological
  order at WCET with the full shared recovery demand — multiplied by a
  *laxity* factor gives its deadline.  Laxity >= 1 guarantees the
  application is schedulable (FTSS can always fall back to dropping
  every soft process);
* the **period** is the full worst-case load (all processes + shared
  recovery demand) scaled by a *pressure* factor: pressure >= 1 lets
  everything fit even in the worst case; pressure < 1 forces dropping
  exactly as in the paper's overload discussions (§3, Fig. 4c).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import ModelError
from repro.scheduling.fschedule import shared_recovery_demand


def hard_only_bounds(
    topo_order: Sequence[str],
    hard_names: Sequence[str],
    wcet: Dict[str, int],
    recovery_need: Dict[str, int],
    k: int,
) -> Dict[str, int]:
    """Worst-case completion of each hard process in a hard-only run.

    Hard processes execute in (the hard subsequence of) ``topo_order``
    back-to-back at WCET; after each, the shared recovery demand of
    ``k`` faults over the hard processes started so far is added.
    """
    hard_set = set(hard_names)
    bounds: Dict[str, int] = {}
    clock = 0
    needs: List[Tuple[int, int]] = []
    for name in topo_order:
        if name not in hard_set:
            continue
        clock += wcet[name]
        needs.append((recovery_need[name], k))
        bounds[name] = clock + shared_recovery_demand(needs, k)
    return bounds


def assign_deadlines(
    bounds: Dict[str, int],
    laxity: float,
    period: int,
) -> Dict[str, int]:
    """Deadline = ceil(bound × laxity), clipped into (bound, period]."""
    if laxity < 1.0:
        raise ModelError(f"laxity must be >= 1 for feasibility, got {laxity}")
    deadlines = {}
    for name, bound in bounds.items():
        deadline = int(math.ceil(bound * laxity))
        deadlines[name] = max(bound, min(deadline, period))
    return deadlines


def assign_period(
    total_wcet: int,
    max_recovery_need: int,
    k: int,
    pressure: float,
    min_period: int,
) -> int:
    """Period = worst-case load × pressure, at least ``min_period``.

    ``min_period`` must cover the largest hard deadline and the
    hard-only makespan so the application stays schedulable.
    """
    if pressure <= 0:
        raise ModelError(f"pressure must be positive, got {pressure}")
    load = total_wcet + k * max_recovery_need
    return max(min_period, int(math.ceil(load * pressure)))
