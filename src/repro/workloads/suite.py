"""Application generation: the paper's synthetic benchmark suites (§6).

:func:`generate_application` assembles a complete
:class:`~repro.model.Application` from the structure, timing, utility
and deadline generators, with all randomness flowing through one seed.
:func:`generate_suite` builds the 450-application collection of §6
(or a scaled-down version; the full size is a CLI flag away).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.model.application import Application
from repro.model.graph import ProcessGraph
from repro.model.process import Process, hard_process, soft_process
from repro.workloads.deadlines import (
    assign_deadlines,
    assign_period,
    hard_only_bounds,
)
from repro.workloads.exec_times import TimingSpec, draw_execution_times
from repro.workloads.random_dags import random_dag
from repro.workloads.utility_gen import step_utility_for_range


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs of the synthetic application generator.

    Defaults match the paper's §6 setup: WCET ~ U[10, 100] ms, BCET ~
    U[0, WCET], k = 3 faults, µ = 15 ms, half the processes soft.
    """

    n_processes: int = 30
    soft_ratio: float = 0.5
    k: int = 3
    mu: int = 15
    timing: TimingSpec = field(default_factory=TimingSpec)
    structure: str = "layered"
    deadline_laxity_range: Tuple[float, float] = (1.3, 2.2)
    period_pressure_range: Tuple[float, float] = (0.85, 1.05)
    utility_value_range: Tuple[int, int] = (20, 100)

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ModelError("need at least one process")
        if not 0.0 <= self.soft_ratio <= 1.0:
            raise ModelError("soft_ratio must be in [0, 1]")
        if self.k < 0 or self.mu < 0:
            raise ModelError("k and mu must be non-negative")


def generate_application(
    spec: WorkloadSpec = WorkloadSpec(),
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Application:
    """One random application following ``spec``.

    Construction order: DAG structure → execution times → hard/soft
    split → period and hard deadlines (from worst-case bounds, so the
    result is always schedulable by dropping) → soft utility functions
    scaled to each process's plausible completion range.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    dag = random_dag(spec.n_processes, rng, structure=spec.structure)
    node_order = list(range(spec.n_processes))
    times = draw_execution_times(node_order, rng, spec.timing)

    # Hard/soft split: sample without replacement.
    n_soft = int(round(spec.soft_ratio * spec.n_processes))
    n_soft = min(n_soft, spec.n_processes)
    soft_nodes = set(
        int(x)
        for x in rng.choice(spec.n_processes, size=n_soft, replace=False)
    )

    names = {node: f"P{node + 1}" for node in node_order}
    wcet = {names[n]: times[n][1] for n in node_order}
    bcet = {names[n]: times[n][0] for n in node_order}
    recovery_need = {names[n]: wcet[names[n]] + spec.mu for n in node_order}

    import networkx as nx

    topo = [names[n] for n in nx.topological_sort(dag)]
    hard_names = [names[n] for n in node_order if n not in soft_nodes]

    bounds = hard_only_bounds(topo, hard_names, wcet, recovery_need, spec.k)
    total_wcet = sum(wcet.values())
    max_need = max(recovery_need.values()) if recovery_need else 0
    pressure = float(rng.uniform(*spec.period_pressure_range))
    hard_makespan = max(bounds.values()) if bounds else 1
    laxity = float(rng.uniform(*spec.deadline_laxity_range))
    provisional_deadlines = {
        name: int(np.ceil(bound * laxity)) for name, bound in bounds.items()
    }
    min_period = max(
        [hard_makespan] + list(provisional_deadlines.values()) + [1]
    )
    period = assign_period(total_wcet, max_need, spec.k, pressure, min_period)
    deadlines = assign_deadlines(bounds, laxity, period)

    # Completion ranges for utility scaling: earliest = BCET critical
    # path into the process; latest = sum of AETs (everything runs at
    # average before it) clipped to the period.
    earliest: Dict[str, int] = {}
    for node in nx.topological_sort(dag):
        name = names[node]
        preds = [names[p] for p in dag.predecessors(node)]
        start = max((earliest[p] for p in preds), default=0)
        earliest[name] = start + bcet[name]
    total_aet = sum((bcet[n] + wcet[n]) // 2 for n in wcet)

    processes: List[Process] = []
    for node in node_order:
        name = names[node]
        if node in soft_nodes:
            latest = min(period, max(earliest[name] + 1, total_aet))
            utility = step_utility_for_range(
                earliest[name],
                latest,
                rng,
                max_value_range=spec.utility_value_range,
            )
            processes.append(
                soft_process(name, bcet[name], wcet[name], utility)
            )
        else:
            processes.append(
                hard_process(name, bcet[name], wcet[name], deadlines[name])
            )

    edges = [(names[u], names[v]) for u, v in dag.edges()]
    graph = ProcessGraph(processes, edges, name=f"G{spec.n_processes}")
    app = Application(graph, period=period, k=spec.k, mu=spec.mu)
    app.validate()
    return app


def generate_suite(
    sizes: Tuple[int, ...] = (10, 15, 20, 25, 30, 35, 40, 45, 50),
    apps_per_size: int = 50,
    soft_ratio: float = 0.5,
    k: int = 3,
    mu: int = 15,
    seed: int = 2008,
) -> Dict[int, List[Application]]:
    """The §6 suite: ``apps_per_size`` applications per size.

    The paper uses 50 per size (450 total); benches default to fewer
    and expose a flag for the full run.
    """
    rng = np.random.default_rng(seed)
    suite: Dict[int, List[Application]] = {}
    for size in sizes:
        spec = WorkloadSpec(
            n_processes=size, soft_ratio=soft_ratio, k=k, mu=mu
        )
        suite[size] = [
            generate_application(spec, rng=rng) for _ in range(apps_per_size)
        ]
    return suite
