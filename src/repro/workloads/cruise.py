"""The vehicle cruise controller (CC) real-life example (paper §6).

The paper's CC application has 32 processes on a single
microcontroller, nine of which — the ones "critically involved with
the actuators" — are hard; k = 2 transient faults are tolerated and µ
is 10% of each process's WCET.  The concrete graph is published only
in the licentiate thesis [8], which is not available to us, so we
reconstruct a functionally equivalent controller (DESIGN.md note 7):
a sensor → filtering → control-law → actuation pipeline for the hard
path, surrounded by soft processes for driver interface, diagnostics,
adaptation and communication.

The graph, execution times and utility functions below are fixed
(no randomness) so the CC experiment is exactly reproducible.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.model.application import Application
from repro.model.graph import ProcessGraph
from repro.model.process import Process, hard_process, soft_process
from repro.utility.functions import StepUtility
from repro.workloads.deadlines import assign_period, hard_only_bounds

#: (name, bcet, wcet, kind) — kind "H" hard, "S" soft.
CC_PROCESSES: List[Tuple[str, int, int, str]] = [
    # --- hard actuation path (9 processes) ---
    ("SpeedAcq", 6, 20, "H"),        # wheel-speed acquisition
    ("SpeedFilter", 8, 24, "H"),     # speed signal filtering
    ("SetpointMgr", 6, 18, "H"),     # target-speed management
    ("CtrlError", 4, 12, "H"),       # control error computation
    ("PIController", 10, 30, "H"),   # control law
    ("ThrottleCmd", 6, 16, "H"),     # throttle actuator command
    ("BrakeArbiter", 5, 14, "H"),    # brake override arbitration
    ("BrakeCmd", 6, 16, "H"),        # brake actuator command
    ("Watchdog", 3, 10, "H"),        # actuation watchdog
    # --- soft sensor refinement ---
    ("AccelEst", 8, 26, "S"),        # acceleration estimator
    ("SlopeEst", 10, 30, "S"),       # road-slope estimator
    ("FuelModel", 8, 28, "S"),       # fuel-consumption model
    # --- soft driver interface ---
    ("ButtonScan", 3, 10, "S"),      # button scanning
    ("LeverDebounce", 3, 10, "S"),   # stalk lever debouncing
    ("DisplaySpeed", 5, 16, "S"),    # speed display rendering
    ("DisplayStatus", 5, 16, "S"),   # status display rendering
    ("CruiseLight", 2, 8, "S"),      # indicator lamp control
    ("Chime", 2, 8, "S"),            # acoustic feedback
    ("HmiUpdate", 6, 20, "S"),       # HMI frame composition
    # --- soft control refinement ---
    ("GainSched", 8, 24, "S"),       # gain scheduling
    ("AdaptiveTune", 10, 32, "S"),   # adaptive parameter tuning
    ("JerkLimiter", 5, 16, "S"),     # comfort jerk limiting
    ("EconMode", 6, 20, "S"),        # economy-mode optimization
    # --- soft diagnostics ---
    ("DiagSensors", 6, 22, "S"),     # sensor plausibility checks
    ("DiagActuators", 6, 22, "S"),   # actuator feedback checks
    ("DtcLogger", 4, 14, "S"),       # diagnostic trouble codes
    ("HealthReport", 4, 14, "S"),    # health summary
    # --- soft communication / bookkeeping ---
    ("CanRx", 4, 12, "S"),           # CAN reception
    ("CanTx", 4, 12, "S"),           # CAN transmission
    ("Telemetry", 5, 18, "S"),       # telemetry packaging
    ("TripStats", 4, 14, "S"),       # trip statistics
    ("CalUpdate", 5, 18, "S"),       # calibration persistence
]

CC_EDGES: List[Tuple[str, str]] = [
    # hard control path
    ("SpeedAcq", "SpeedFilter"),
    ("SpeedFilter", "CtrlError"),
    ("SetpointMgr", "CtrlError"),
    ("CtrlError", "PIController"),
    ("PIController", "ThrottleCmd"),
    ("PIController", "BrakeArbiter"),
    ("BrakeArbiter", "BrakeCmd"),
    ("ThrottleCmd", "Watchdog"),
    ("BrakeCmd", "Watchdog"),
    # driver interface feeds the setpoint (stale values acceptable)
    ("ButtonScan", "LeverDebounce"),
    ("LeverDebounce", "SetpointMgr"),
    ("CanRx", "SetpointMgr"),
    ("CanRx", "BrakeArbiter"),
    # sensor refinement
    ("SpeedFilter", "AccelEst"),
    ("SpeedFilter", "SlopeEst"),
    ("AccelEst", "SlopeEst"),
    ("SpeedFilter", "FuelModel"),
    # control refinement
    ("AccelEst", "GainSched"),
    ("SlopeEst", "GainSched"),
    ("GainSched", "PIController"),
    ("GainSched", "AdaptiveTune"),
    ("CtrlError", "AdaptiveTune"),
    ("PIController", "JerkLimiter"),
    ("JerkLimiter", "ThrottleCmd"),
    ("FuelModel", "EconMode"),
    ("PIController", "EconMode"),
    ("AdaptiveTune", "CalUpdate"),
    # diagnostics
    ("SpeedAcq", "DiagSensors"),
    ("CanRx", "DiagSensors"),
    ("ThrottleCmd", "DiagActuators"),
    ("BrakeCmd", "DiagActuators"),
    ("DiagSensors", "DtcLogger"),
    ("DiagActuators", "DtcLogger"),
    ("DtcLogger", "HealthReport"),
    # HMI
    ("SpeedFilter", "DisplaySpeed"),
    ("SetpointMgr", "DisplayStatus"),
    ("SetpointMgr", "CruiseLight"),
    ("LeverDebounce", "Chime"),
    ("DisplaySpeed", "HmiUpdate"),
    ("DisplayStatus", "HmiUpdate"),
    ("CruiseLight", "HmiUpdate"),
    # communication / bookkeeping
    ("PIController", "CanTx"),
    ("HealthReport", "CanTx"),
    ("SpeedFilter", "TripStats"),
    ("CanTx", "Telemetry"),
    ("TripStats", "Telemetry"),
]

#: Relative importance of each soft function, used as the initial
#: utility value.  Control refinement and driver feedback rank above
#: statistics and persistence.
CC_UTILITY_WEIGHTS: Dict[str, int] = {
    "AccelEst": 60,
    "SlopeEst": 55,
    "FuelModel": 40,
    "ButtonScan": 70,
    "LeverDebounce": 70,
    "DisplaySpeed": 50,
    "DisplayStatus": 45,
    "CruiseLight": 30,
    "Chime": 25,
    "HmiUpdate": 55,
    "GainSched": 65,
    "AdaptiveTune": 45,
    "JerkLimiter": 60,
    "EconMode": 35,
    "DiagSensors": 50,
    "DiagActuators": 50,
    "DtcLogger": 30,
    "HealthReport": 25,
    "CanRx": 75,
    "CanTx": 55,
    "Telemetry": 20,
    "TripStats": 15,
    "CalUpdate": 15,
}

CC_K = 2
CC_DEADLINE_LAXITY = 1.6
CC_PERIOD_PRESSURE = 0.92


def _mu_of(wcet: int) -> int:
    """µ = 10% of the WCET (paper §6), at least one tick."""
    return max(1, int(math.ceil(wcet * 0.10)))


def cruise_controller(
    deadline_laxity: float = CC_DEADLINE_LAXITY,
    period_pressure: float = CC_PERIOD_PRESSURE,
) -> Application:
    """Build the 32-process cruise-controller application.

    ``deadline_laxity`` scales the hard deadlines above their hard-only
    worst-case bounds; ``period_pressure`` scales the period relative
    to the full worst-case load (< 1 forces dropping of some soft
    processes in the worst case, as in the paper's overload
    discussion).
    """
    timing = {name: (b, w) for name, b, w, _ in CC_PROCESSES}
    kinds = {name: kind for name, _, _, kind in CC_PROCESSES}
    names = [name for name, _, _, _ in CC_PROCESSES]
    wcet = {n: timing[n][1] for n in names}
    recovery_need = {n: wcet[n] + _mu_of(wcet[n]) for n in names}

    # Topological order for the hard-only bound: the declaration order
    # of CC_PROCESSES is not topological, so derive one.
    succ: Dict[str, List[str]] = {n: [] for n in names}
    indeg = {n: 0 for n in names}
    for src, dst in CC_EDGES:
        succ[src].append(dst)
        indeg[dst] += 1
    stack = sorted(n for n in names if indeg[n] == 0)
    topo: List[str] = []
    while stack:
        node = stack.pop(0)
        topo.append(node)
        for nxt in succ[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                stack.append(nxt)
                stack.sort()

    hard_names = [n for n in names if kinds[n] == "H"]
    bounds = hard_only_bounds(topo, hard_names, wcet, recovery_need, CC_K)
    total_wcet = sum(wcet.values())
    max_need = max(recovery_need.values())
    provisional = {
        n: int(math.ceil(b * deadline_laxity)) for n, b in bounds.items()
    }
    min_period = max(list(provisional.values()) + [max(bounds.values())])
    period = assign_period(
        total_wcet, max_need, CC_K, period_pressure, min_period
    )
    deadlines = {
        n: max(bounds[n], min(provisional[n], period)) for n in bounds
    }

    # Earliest completions (BCET critical path) to scale utilities.
    earliest: Dict[str, int] = {}
    pred: Dict[str, List[str]] = {n: [] for n in names}
    for src, dst in CC_EDGES:
        pred[dst].append(src)
    for node in topo:
        start = max((earliest[p] for p in pred[node]), default=0)
        earliest[node] = start + timing[node][0]

    processes: List[Process] = []
    for name in names:
        bcet_v, wcet_v = timing[name]
        mu = _mu_of(wcet_v)
        if kinds[name] == "H":
            processes.append(
                hard_process(
                    name,
                    bcet_v,
                    wcet_v,
                    deadlines[name],
                    recovery_overhead=mu,
                )
            )
        else:
            weight = CC_UTILITY_WEIGHTS[name]
            e = earliest[name]
            # Deterministic three-step decay over the plausible
            # completion range of the process.
            utility = StepUtility(
                weight,
                [
                    (int(e * 1.5) + 40, round(weight * 0.6)),
                    (int(e * 2.5) + 120, round(weight * 0.25)),
                    (int(e * 4.0) + 260, 0.0),
                ],
            )
            processes.append(
                soft_process(
                    name, bcet_v, wcet_v, utility, recovery_overhead=mu
                )
            )

    graph = ProcessGraph(processes, CC_EDGES, name="CC")
    app = Application(graph, period=period, k=CC_K, mu=0)
    app.validate()
    return app
