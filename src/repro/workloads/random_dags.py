"""Random task-graph structure generation (TGFF-style).

The paper evaluates on 450 generated applications with 10..50
processes (§6) but does not publish the generator.  We provide the two
standard structures of the embedded-scheduling literature:

* **layered** DAGs — processes are arranged in layers; edges connect
  earlier layers to later ones with a given density (the shape TGFF's
  series-parallel expansion tends to produce); and
* **fan-in/fan-out** DAGs — the classic TGFF growth process: repeatedly
  attach a fan-out of new nodes to a random frontier node, or join
  several frontier nodes into a fan-in node.

Both return a :class:`networkx.DiGraph` of anonymous node ids in
topological order; :mod:`repro.workloads.suite` attaches processes,
timing and utility to them.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx
import numpy as np

from repro.errors import ModelError


def layered_dag(
    n_nodes: int,
    rng: np.random.Generator,
    n_layers: Optional[int] = None,
    edge_probability: float = 0.3,
) -> nx.DiGraph:
    """A layered random DAG with ``n_nodes`` nodes.

    Nodes are split into layers (roughly sqrt(n) layers by default);
    each node gets at least one predecessor from the previous layer
    (so the graph is weakly connected) and extra edges from earlier
    layers with ``edge_probability``.
    """
    if n_nodes < 1:
        raise ModelError("need at least one node")
    if not 0.0 <= edge_probability <= 1.0:
        raise ModelError("edge probability must be in [0, 1]")
    if n_layers is None:
        n_layers = max(1, int(round(float(np.sqrt(n_nodes)))))
    n_layers = min(n_layers, n_nodes)

    # Distribute nodes over layers (every layer non-empty).
    layer_of: List[int] = []
    base = n_nodes // n_layers
    extra = n_nodes % n_layers
    for layer in range(n_layers):
        count = base + (1 if layer < extra else 0)
        layer_of.extend([layer] * count)

    graph = nx.DiGraph()
    layers: List[List[int]] = [[] for _ in range(n_layers)]
    for node in range(n_nodes):
        graph.add_node(node, layer=layer_of[node])
        layers[layer_of[node]].append(node)

    for node in range(n_nodes):
        layer = layer_of[node]
        if layer == 0:
            continue
        prev = layers[layer - 1]
        parent = int(rng.choice(prev))
        graph.add_edge(parent, node)
        earlier = [m for m in range(n_nodes) if layer_of[m] < layer]
        for candidate in earlier:
            if candidate == parent:
                continue
            if rng.random() < edge_probability / max(1, layer):
                graph.add_edge(candidate, node)
    return graph


def fanin_fanout_dag(
    n_nodes: int,
    rng: np.random.Generator,
    max_fan_out: int = 3,
    max_fan_in: int = 3,
) -> nx.DiGraph:
    """TGFF-style fan-in/fan-out growth to ``n_nodes`` nodes."""
    if n_nodes < 1:
        raise ModelError("need at least one node")
    graph = nx.DiGraph()
    graph.add_node(0)
    frontier: List[int] = [0]
    next_id = 1
    while next_id < n_nodes:
        if len(frontier) >= 2 and rng.random() < 0.4:
            # Fan-in: join several frontier nodes into a new node.
            count = int(rng.integers(2, min(max_fan_in, len(frontier)) + 1))
            picks = rng.choice(len(frontier), size=count, replace=False)
            parents = [frontier[int(i)] for i in picks]
            node = next_id
            next_id += 1
            graph.add_node(node)
            for parent in parents:
                graph.add_edge(parent, node)
            frontier = [f for f in frontier if f not in parents]
            frontier.append(node)
        else:
            # Fan-out: sprout children from a random frontier node.
            parent = frontier[int(rng.integers(len(frontier)))]
            count = int(rng.integers(1, max_fan_out + 1))
            count = min(count, n_nodes - next_id)
            new_nodes = []
            for _ in range(count):
                node = next_id
                next_id += 1
                graph.add_node(node)
                graph.add_edge(parent, node)
                new_nodes.append(node)
            frontier.remove(parent)
            frontier.extend(new_nodes)
        if not frontier:  # pragma: no cover - defensive
            frontier = [next_id - 1]
    return graph


def random_dag(
    n_nodes: int,
    rng: np.random.Generator,
    structure: str = "layered",
    **kwargs,
) -> nx.DiGraph:
    """Dispatch on ``structure`` ('layered' or 'fanin_fanout')."""
    if structure == "layered":
        return layered_dag(n_nodes, rng, **kwargs)
    if structure == "fanin_fanout":
        return fanin_fanout_dag(n_nodes, rng, **kwargs)
    raise ModelError(f"unknown DAG structure {structure!r}")
