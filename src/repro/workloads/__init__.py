"""Workload substrate: random DAG suites and the cruise controller."""

from repro.workloads.cruise import cruise_controller
from repro.workloads.deadlines import (
    assign_deadlines,
    assign_period,
    hard_only_bounds,
)
from repro.workloads.exec_times import (
    DEFAULT_TIMING,
    TimingSpec,
    draw_execution_times,
)
from repro.workloads.random_dags import fanin_fanout_dag, layered_dag, random_dag
from repro.workloads.suite import (
    WorkloadSpec,
    generate_application,
    generate_suite,
)
from repro.workloads.utility_gen import step_utility_for_range

__all__ = [
    "DEFAULT_TIMING",
    "TimingSpec",
    "WorkloadSpec",
    "assign_deadlines",
    "assign_period",
    "cruise_controller",
    "draw_execution_times",
    "fanin_fanout_dag",
    "generate_application",
    "generate_suite",
    "hard_only_bounds",
    "layered_dag",
    "random_dag",
    "step_utility_for_range",
]
