"""Execution-time assignment for generated workloads (paper §6).

The paper's setup: worst-case execution times uniformly varied between
10 and 100 ms, best-case execution times between 0 ms and the WCET,
completion times uniformly distributed in [BCET, WCET] (so the AET is
their midpoint — see DESIGN.md note 1 on the paper's typo).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class TimingSpec:
    """Parameters of the execution-time distribution."""

    wcet_min: int = 10
    wcet_max: int = 100
    bcet_fraction_min: float = 0.0
    bcet_fraction_max: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.wcet_min <= self.wcet_max:
            raise ModelError("need 0 < wcet_min <= wcet_max")
        if not (
            0.0 <= self.bcet_fraction_min <= self.bcet_fraction_max <= 1.0
        ):
            raise ModelError("bcet fractions must satisfy 0 <= lo <= hi <= 1")


DEFAULT_TIMING = TimingSpec()


def draw_execution_times(
    node_ids: Sequence[int],
    rng: np.random.Generator,
    spec: TimingSpec = DEFAULT_TIMING,
) -> Dict[int, Tuple[int, int]]:
    """Draw (BCET, WCET) for every node per the paper's distribution.

    WCET ~ U[wcet_min, wcet_max]; BCET ~ U[0, WCET] (restricted by the
    fraction bounds), with BCET at least 1 tick so a process always
    takes time.
    """
    times: Dict[int, Tuple[int, int]] = {}
    for node in node_ids:
        wcet = int(rng.integers(spec.wcet_min, spec.wcet_max + 1))
        lo = spec.bcet_fraction_min * wcet
        hi = spec.bcet_fraction_max * wcet
        bcet = int(rng.integers(int(np.floor(lo)), int(np.floor(hi)) + 1))
        bcet = max(1, min(bcet, wcet))
        times[node] = (bcet, wcet)
    return times
