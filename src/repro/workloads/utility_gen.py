"""Utility-function generation for soft processes of synthetic
workloads.

The paper does not publish how utility functions were generated for
the 450 applications; we follow the shape its worked examples use
(non-increasing step functions, Figs. 2/4/8) and scale the breakpoints
to each process's *plausible completion range* in the application, so
the functions actually discriminate between good and bad schedules:
a function that is flat over every reachable completion time would
make utility maximization trivial, and one that drops to zero before
the earliest possible completion would be dead weight.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ModelError
from repro.utility.functions import StepUtility


def step_utility_for_range(
    earliest: int,
    latest: int,
    rng: np.random.Generator,
    max_value_range: Tuple[int, int] = (20, 100),
    n_steps_range: Tuple[int, int] = (2, 4),
) -> StepUtility:
    """A random non-increasing step utility discriminating [earliest,
    latest].

    The initial value is drawn from ``max_value_range``; 2..4 step
    times are placed inside the completion range, with values
    decreasing toward zero (the last step may keep a small residual
    value, as in Fig. 4's U3 which retains 10 late).
    """
    if earliest < 0 or latest < earliest:
        raise ModelError(
            f"invalid completion range [{earliest}, {latest}]"
        )
    lo_value, hi_value = max_value_range
    initial = int(rng.integers(lo_value, hi_value + 1))
    n_steps = int(rng.integers(n_steps_range[0], n_steps_range[1] + 1))

    span = max(latest - earliest, n_steps + 1)
    raw_times = sorted(
        rng.choice(np.arange(1, span), size=n_steps, replace=False)
    )
    times = [earliest + int(t) for t in raw_times]

    # Strictly decreasing values from `initial` toward a small tail.
    fractions = sorted(
        (float(rng.uniform(0.0, 0.9)) for _ in range(n_steps)), reverse=True
    )
    values: List[float] = []
    last = float(initial)
    for fraction in fractions:
        value = min(last, round(initial * fraction))
        values.append(value)
        last = value
    if rng.random() < 0.5:
        values[-1] = 0.0
    steps = list(zip(times, values))
    return StepUtility(initial, steps)
