"""Time/utility functions for soft processes (paper §2.1).

A utility function ``U_i(t)`` maps the *completion time* of a soft
process to the value it contributes to the system.  The paper only
requires the function to be a non-increasing monotonic function of the
completion time; its examples (Figs. 2, 4, 8) use step functions.  We
provide:

* :class:`StepUtility` — piecewise-constant, right-continuous steps,
  exactly the shape of the paper's figures;
* :class:`LinearUtility` — linear decay clamped at zero, a common
  alternative in the time/utility-function literature;
* :class:`ConstantUtility` — constant until a cutoff, zero afterwards
  (a "firm" deadline);
* :class:`TabulatedUtility` — arbitrary sampled function with
  right-continuous step interpolation, for externally supplied data.

All functions validate the non-increasing contract on construction and
support exact equality and JSON-friendly encoding (see
:mod:`repro.io.json_io`).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Tuple

from repro.errors import UtilityError


class UtilityFunction(ABC):
    """Abstract non-increasing time/utility function."""

    @abstractmethod
    def value_at(self, t: int) -> float:
        """Utility produced when the process completes at time ``t``."""

    @abstractmethod
    def max_value(self) -> float:
        """The supremum of the function (its value at t = 0)."""

    @abstractmethod
    def horizon(self) -> int:
        """Earliest time after which the function stays at its minimum.

        Used by interval partitioning to bound the completion times
        worth tracing: beyond the horizon, further delay changes
        nothing.
        """

    @abstractmethod
    def to_dict(self) -> Dict:
        """JSON-encodable description (see :mod:`repro.io.json_io`)."""

    def breakpoints(self) -> List[int]:
        """Times ``t`` such that the value changes between t and t+1.

        For piecewise-constant functions this list is exact and
        interval partitioning over them is exact too; continuous
        functions (e.g. :class:`LinearUtility`) return an empty list
        and rely on the partitioner's sampling fallback.
        """
        return []

    def is_piecewise_constant(self) -> bool:
        """True when :meth:`breakpoints` exactly describes all changes."""
        return False

    def __call__(self, t: int) -> float:
        if t < 0:
            raise UtilityError(f"completion time must be non-negative, got {t}")
        return self.value_at(t)

    # ------------------------------------------------------------------
    # Validation helper shared by subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _check_non_increasing(points: Sequence[Tuple[int, float]]) -> None:
        last_t = -1
        last_v = math.inf
        for t, v in points:
            if t <= last_t:
                raise UtilityError(
                    f"breakpoints must be strictly increasing in time: "
                    f"{t} after {last_t}"
                )
            if v > last_v:
                raise UtilityError(
                    f"utility must be non-increasing: {v} after {last_v}"
                )
            if v < 0:
                raise UtilityError(f"utility values must be non-negative: {v}")
            last_t, last_v = t, v


class StepUtility(UtilityFunction):
    """Piecewise-constant utility, the paper's canonical shape.

    ``StepUtility(initial, [(t1, v1), (t2, v2), ...])`` is ``initial``
    on ``[0, t1]``, ``v1`` on ``(t1, t2]``, ..., and the last value
    afterwards.  Completion *at* a breakpoint still earns the value
    before the drop, matching Fig. 2a where completing at 60 ms earns
    20 (the level that holds up to 60).
    """

    def __init__(self, initial: float, steps: Sequence[Tuple[int, float]]):
        if initial < 0:
            raise UtilityError("initial utility must be non-negative")
        pts = [(int(t), float(v)) for t, v in steps]
        if pts and pts[0][0] < 0:
            raise UtilityError("step times must be non-negative")
        self._check_non_increasing(pts)
        if pts and pts[0][1] > initial:
            raise UtilityError("first step may not exceed the initial value")
        self._initial = float(initial)
        self._steps: List[Tuple[int, float]] = pts

    @property
    def initial(self) -> float:
        return self._initial

    @property
    def steps(self) -> List[Tuple[int, float]]:
        return list(self._steps)

    def value_at(self, t: int) -> float:
        value = self._initial
        for step_t, step_v in self._steps:
            if t > step_t:
                value = step_v
            else:
                break
        return value

    def max_value(self) -> float:
        return self._initial

    def horizon(self) -> int:
        return self._steps[-1][0] if self._steps else 0

    def breakpoints(self) -> List[int]:
        return [t for t, _ in self._steps]

    def is_piecewise_constant(self) -> bool:
        return True

    def to_dict(self) -> Dict:
        return {
            "type": "step",
            "initial": self._initial,
            "steps": [[t, v] for t, v in self._steps],
        }

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StepUtility)
            and self._initial == other._initial
            and self._steps == other._steps
        )

    def __hash__(self) -> int:
        return hash((self._initial, tuple(self._steps)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StepUtility({self._initial}, {self._steps})"


class LinearUtility(UtilityFunction):
    """Linear decay: ``max(0, u0 - slope * t)``."""

    def __init__(self, u0: float, slope: float):
        if u0 < 0:
            raise UtilityError("u0 must be non-negative")
        if slope < 0:
            raise UtilityError("slope must be non-negative (non-increasing)")
        self._u0 = float(u0)
        self._slope = float(slope)

    @property
    def u0(self) -> float:
        return self._u0

    @property
    def slope(self) -> float:
        return self._slope

    def value_at(self, t: int) -> float:
        return max(0.0, self._u0 - self._slope * t)

    def max_value(self) -> float:
        return self._u0

    def horizon(self) -> int:
        if self._slope == 0:
            return 0
        return int(math.ceil(self._u0 / self._slope))

    def to_dict(self) -> Dict:
        return {"type": "linear", "u0": self._u0, "slope": self._slope}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinearUtility)
            and self._u0 == other._u0
            and self._slope == other._slope
        )

    def __hash__(self) -> int:
        return hash((self._u0, self._slope))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearUtility({self._u0}, {self._slope})"


class ConstantUtility(UtilityFunction):
    """Constant value until ``cutoff`` (inclusive), zero afterwards.

    With ``cutoff=None`` the function is constant forever — the softest
    possible process, useful as a degenerate case in tests.
    """

    def __init__(self, value: float, cutoff: int = None):
        if value < 0:
            raise UtilityError("value must be non-negative")
        if cutoff is not None and cutoff < 0:
            raise UtilityError("cutoff must be non-negative")
        self._value = float(value)
        self._cutoff = cutoff

    @property
    def value(self) -> float:
        return self._value

    @property
    def cutoff(self) -> int:
        return self._cutoff

    def value_at(self, t: int) -> float:
        if self._cutoff is not None and t > self._cutoff:
            return 0.0
        return self._value

    def max_value(self) -> float:
        return self._value

    def horizon(self) -> int:
        return 0 if self._cutoff is None else self._cutoff

    def breakpoints(self) -> List[int]:
        return [] if self._cutoff is None else [self._cutoff]

    def is_piecewise_constant(self) -> bool:
        return True

    def to_dict(self) -> Dict:
        return {"type": "constant", "value": self._value, "cutoff": self._cutoff}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantUtility)
            and self._value == other._value
            and self._cutoff == other._cutoff
        )

    def __hash__(self) -> int:
        return hash((self._value, self._cutoff))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantUtility({self._value}, cutoff={self._cutoff})"


class TabulatedUtility(UtilityFunction):
    """Right-continuous step function through arbitrary samples.

    ``samples`` is a sequence of ``(t, value)`` pairs; the function
    holds each value from its sample time (inclusive) until the next
    sample.  Before the first sample time the first value applies.
    """

    def __init__(self, samples: Sequence[Tuple[int, float]]):
        if not samples:
            raise UtilityError("tabulated utility needs at least one sample")
        pts = sorted((int(t), float(v)) for t, v in samples)
        self._check_non_increasing(pts)
        self._samples: List[Tuple[int, float]] = pts

    @property
    def samples(self) -> List[Tuple[int, float]]:
        return list(self._samples)

    def value_at(self, t: int) -> float:
        value = self._samples[0][1]
        for sample_t, sample_v in self._samples:
            if t >= sample_t:
                value = sample_v
            else:
                break
        return value

    def max_value(self) -> float:
        return self._samples[0][1]

    def horizon(self) -> int:
        return self._samples[-1][0]

    def breakpoints(self) -> List[int]:
        # Value changes when t crosses each sample time: the function
        # holds sample value from t (inclusive), so the step is between
        # sample_t - 1 and sample_t.
        return [t - 1 for t, _ in self._samples if t > 0]

    def is_piecewise_constant(self) -> bool:
        return True

    def to_dict(self) -> Dict:
        return {"type": "tabulated", "samples": [[t, v] for t, v in self._samples]}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TabulatedUtility)
            and self._samples == other._samples
        )

    def __hash__(self) -> int:
        return hash(tuple(self._samples))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TabulatedUtility({self._samples})"


def utility_from_dict(data: Dict) -> UtilityFunction:
    """Inverse of :meth:`UtilityFunction.to_dict`."""
    kind = data.get("type")
    if kind == "step":
        return StepUtility(data["initial"], [tuple(p) for p in data["steps"]])
    if kind == "linear":
        return LinearUtility(data["u0"], data["slope"])
    if kind == "constant":
        return ConstantUtility(data["value"], data.get("cutoff"))
    if kind == "tabulated":
        return TabulatedUtility([tuple(p) for p in data["samples"]])
    raise UtilityError(f"unknown utility function type: {kind!r}")
