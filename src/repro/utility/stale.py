"""Stale-value coefficients (paper §2.1).

When a soft process is dropped, its consumers fall back to values from
a previous execution cycle ("stale" values).  The paper models the
resulting service degradation with a coefficient α_i multiplying the
utility function:

* α_i = 0 when P_i itself is dropped (its utility is lost entirely);
* otherwise α_i = (1 + Σ α_j over direct predecessors j) / (1 + |DP(P_i)|),

so a process whose inputs are all fresh has α = 1, and staleness decays
through the graph in inverse proportion to the number of inputs.  The
worked example of the paper: P3 with predecessors P1 (dropped) and P2
(completed) gets α_3 = (1 + 0 + 1) / (1 + 2) = 2/3, and its sole
successor P4 gets α_4 = (1 + 2/3) / (1 + 1) = 5/6.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Set

from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.graph import ProcessGraph


def stale_coefficients(
    graph: ProcessGraph,
    dropped: Iterable[str],
) -> Dict[str, float]:
    """Compute α for every process given the set of dropped processes.

    ``dropped`` may contain hard process names only in pathological
    inputs; hard processes are never dropped by the schedulers, and
    passing one here raises :class:`~repro.errors.ModelError` to catch
    such bugs early.

    Returns a map from process name to α ∈ [0, 1].  Hard processes are
    assigned α = 1 when executed (they carry no utility, but their
    freshness still propagates to soft successors reading their
    outputs).
    """
    dropped_set: Set[str] = set(dropped)
    for name in dropped_set:
        if name not in graph:
            raise ModelError(f"dropped process {name!r} not in graph")
        if graph[name].is_hard:
            raise ModelError(f"hard process {name!r} cannot be dropped")

    alphas: Dict[str, float] = {}
    for name in graph.topological_order():
        if name in dropped_set:
            alphas[name] = 0.0
            continue
        preds = graph.predecessors(name)
        if not preds:
            alphas[name] = 1.0
            continue
        alphas[name] = (1.0 + sum(alphas[p] for p in preds)) / (1.0 + len(preds))
    return alphas


def stale_coefficient(
    graph: ProcessGraph,
    name: str,
    dropped: Iterable[str],
) -> float:
    """α for a single process (convenience wrapper)."""
    return stale_coefficients(graph, dropped)[name]


def degraded_utility(
    graph: ProcessGraph,
    completion_times: Mapping[str, int],
    dropped: Iterable[str],
) -> float:
    """Overall utility U = Σ α_i × U_i(c_i) over executed soft processes.

    ``completion_times`` maps every *executed* process to its completion
    time; dropped processes must not appear in it.  This is the
    quantity the paper's experiments average over execution scenarios.
    """
    dropped_set = set(dropped)
    overlap = dropped_set & set(completion_times)
    if overlap:
        raise ModelError(
            f"processes both dropped and completed: {sorted(overlap)}"
        )
    executed_soft = [
        p for p in graph.soft_processes() if p.name not in dropped_set
    ]
    missing = [p.name for p in executed_soft if p.name not in completion_times]
    if missing:
        raise ModelError(
            f"executed soft processes lack completion times: {missing}"
        )
    alphas = stale_coefficients(graph, dropped_set)
    return sum(
        alphas[p.name] * p.utility_at(completion_times[p.name])
        for p in executed_soft
    )
