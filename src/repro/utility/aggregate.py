"""Utility aggregation over (partial) schedules and outcomes.

The schedulers repeatedly need the overall utility of a hypothetical
ordering under assumed execution times (average-case for optimization,
observed times for evaluation).  :class:`UtilityAccumulator` provides
an incremental view used inside the list scheduler, and
:func:`schedule_expected_utility` scores a complete ordering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.utility.stale import stale_coefficients

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.graph import ProcessGraph


def completion_times_for_order(
    graph: ProcessGraph,
    order: Sequence[str],
    durations: Mapping[str, int],
    start: int = 0,
) -> Dict[str, int]:
    """Back-to-back completion times of ``order`` on one processor.

    ``durations`` supplies the assumed execution time of each process
    (AET for optimization, observed for evaluation).  Dropped processes
    are simply absent from ``order``.
    """
    times: Dict[str, int] = {}
    clock = start
    for name in order:
        clock += durations[name]
        times[name] = clock
    return times


def schedule_expected_utility(
    graph: ProcessGraph,
    order: Sequence[str],
    durations: Mapping[str, int],
    dropped: Iterable[str] = (),
    start: int = 0,
    period: Optional[int] = None,
) -> float:
    """Overall utility of executing ``order`` back-to-back.

    Soft processes not in ``order`` and not in ``dropped`` are treated
    as dropped as well (they produce no utility in this hypothetical
    schedule).  When ``period`` is given, soft completions beyond the
    period contribute zero (the cycle is over; the paper treats work
    past T as useless), while hard processes are the schedulability
    analysis' concern, not this function's.
    """
    executed = set(order)
    dropped_all = set(dropped)
    for proc in graph.soft_processes():
        if proc.name not in executed:
            dropped_all.add(proc.name)
    alphas = stale_coefficients(graph, dropped_all)
    times = completion_times_for_order(graph, order, durations, start)
    total = 0.0
    for name in order:
        proc = graph[name]
        if not proc.is_soft:
            continue
        completion = times[name]
        if period is not None and completion > period:
            continue
        total += alphas[name] * proc.utility_at(completion)
    return total


class UtilityAccumulator:
    """Incremental utility bookkeeping for list schedulers.

    Tracks scheduled completion times and the dropped set; utility is
    recomputed lazily because stale coefficients of later processes
    depend on global dropping decisions.
    """

    def __init__(self, graph: ProcessGraph, period: Optional[int] = None):
        self._graph = graph
        self._period = period
        self._order: List[str] = []
        self._times: Dict[str, int] = {}
        self._dropped: set = set()

    @property
    def order(self) -> List[str]:
        return list(self._order)

    @property
    def dropped(self) -> List[str]:
        return sorted(self._dropped)

    def schedule(self, name: str, completion_time: int) -> None:
        self._order.append(name)
        self._times[name] = completion_time

    def drop(self, name: str) -> None:
        self._dropped.add(name)

    def utility(self) -> float:
        """Current overall utility of the scheduled prefix."""
        dropped_all = set(self._dropped)
        executed = set(self._order)
        for proc in self._graph.soft_processes():
            if proc.name not in executed and proc.name not in dropped_all:
                # Not yet decided; treat as absent for the prefix value.
                dropped_all.add(proc.name)
        alphas = stale_coefficients(self._graph, dropped_all)
        total = 0.0
        for name in self._order:
            proc = self._graph[name]
            if not proc.is_soft:
                continue
            t = self._times[name]
            if self._period is not None and t > self._period:
                continue
            total += alphas[name] * proc.utility_at(t)
        return total
