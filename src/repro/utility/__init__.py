"""Time/utility functions, stale-value propagation and aggregation."""

from repro.utility.aggregate import (
    UtilityAccumulator,
    completion_times_for_order,
    schedule_expected_utility,
)
from repro.utility.functions import (
    ConstantUtility,
    LinearUtility,
    StepUtility,
    TabulatedUtility,
    UtilityFunction,
    utility_from_dict,
)
from repro.utility.stale import (
    degraded_utility,
    stale_coefficient,
    stale_coefficients,
)

__all__ = [
    "ConstantUtility",
    "LinearUtility",
    "StepUtility",
    "TabulatedUtility",
    "UtilityAccumulator",
    "UtilityFunction",
    "completion_times_for_order",
    "degraded_utility",
    "schedule_expected_utility",
    "stale_coefficient",
    "stale_coefficients",
    "utility_from_dict",
]
