#!/usr/bin/env python
"""The vehicle cruise controller case study (paper §6).

Synthesizes schedules for the 32-process cruise controller (9 hard
processes on the actuation path, k = 2 transient faults, µ = 10% of
each WCET), compares FTQS / FTSS / FTSF on identical scenario sets and
prints the paper-style report plus one simulated faulty cycle.

Run:  python examples/cruise_controller.py
"""

from repro.analysis import render_gantt
from repro.evaluation.experiments.cc import CCConfig, run_cc
from repro.faults import ScenarioSampler
from repro.quasistatic import FTQSConfig, ftqs
from repro.runtime import simulate
from repro.scheduling import ftss
from repro.workloads import cruise_controller


def main() -> None:
    app = cruise_controller()
    print(f"cruise controller: {app}")
    print(f"hard processes: {sorted(p.name for p in app.hard)}")

    report = run_cc(CCConfig(max_schedules=16, n_scenarios=300))
    print()
    print(report.format())

    # One concrete faulty cycle, visualized.
    root = ftss(app)
    tree = ftqs(app, root, FTQSConfig(max_schedules=16))
    sampler = ScenarioSampler(app, seed=7)
    scenario = sampler.sample(faults=2)
    outcome = simulate(app, tree, scenario)
    print("\n--- one simulated cycle with 2 transient faults ---")
    print(f"faults hit: {scenario.faults}")
    print(render_gantt(app, outcome, width=70))
    assert outcome.met_all_hard_deadlines


if __name__ == "__main__":
    main()
