#!/usr/bin/env python
"""Multi-rate application: hyper-period merging (paper §2).

A fast 100 ms control graph (hard sampling + soft filtering) runs
alongside a slow 200 ms supervision graph (soft logging + hard
watchdog report).  The paper combines such graphs "into a hyper-graph
capturing all process activations for the hyper-period (LCM of all
periods)" — this example shows the merge, the shifted deadlines and
utility functions of later activations, and the full synthesis +
simulation pipeline over the merged application.

Run:  python examples/multirate_system.py
"""

from repro.analysis import render_gantt, render_tree
from repro.faults import ScenarioSampler
from repro.model import (
    ProcessGraph,
    application_from_graphs,
    hard_process,
    soft_process,
)
from repro.quasistatic import schedule_application
from repro.runtime import simulate
from repro.utility import StepUtility


def build_graphs():
    control = ProcessGraph(
        [
            hard_process("Sample", 8, 18, 60),
            hard_process("Control", 10, 22, 95),
            soft_process(
                "Filter", 6, 16, StepUtility(35, [(70, 15), (140, 0)])
            ),
        ],
        [("Sample", "Filter"), ("Sample", "Control")],
        name="control",
        period=100,
    )
    supervision = ProcessGraph(
        [
            soft_process(
                "Log", 10, 30, StepUtility(25, [(160, 10), (200, 0)])
            ),
            hard_process("Report", 6, 14, 195),
        ],
        [("Log", "Report")],
        name="supervision",
        period=200,
    )
    return control, supervision


def main() -> None:
    control, supervision = build_graphs()
    app = application_from_graphs([control, supervision], k=1, mu=5)
    print(f"merged application over the hyper-period: {app}")
    print(f"activations: {app.graph.process_names}")
    print(
        f"second control activation deadlines: "
        f"Sample#1 -> {app.process('Sample#1').deadline}, "
        f"Control#1 -> {app.process('Control#1').deadline}"
    )

    result = schedule_application(app, max_schedules=6)
    print(f"\nquasi-static tree ({result.summary()}):")
    print(render_tree(result.tree))

    sampler = ScenarioSampler(app, seed=3)
    scenario = sampler.sample(faults=1)
    outcome = simulate(app, result.tree, scenario)
    print(f"\none simulated hyper-period (fault in {scenario.faults}):")
    print(render_gantt(app, outcome, width=70))
    assert outcome.met_all_hard_deadlines


if __name__ == "__main__":
    main()
