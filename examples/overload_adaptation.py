#!/usr/bin/env python
"""Overload handling: dropping soft processes to protect hard ones.

Reproduces the paper's Fig. 4c argument: shrinking the period of the
Fig. 1 application from 300 to 250 makes it impossible to run both
soft processes in the worst fault scenario, so the synthesized
schedule must drop one — and it should drop P2 (utility 20 at the
achievable completion) rather than P3 (utility 40).

The script sweeps the period and shows how the schedule's content and
expected utility degrade as the system becomes more loaded, while the
hard process P1 always stays guaranteed.

Run:  python examples/overload_adaptation.py
"""

from repro.examples_support import paper_fig1_application
from repro.faults import ScenarioSampler, worst_case_scenario
from repro.faults.model import FaultScenario
from repro.runtime import simulate
from repro.scheduling import ftss


def main() -> None:
    print(f"{'period':>7}  {'scheduled order':<22} {'dropped':<12} "
          f"{'E[utility]':>10}  worst-case P1 ok")
    for period in (320, 300, 280, 260, 250, 240, 230, 220):
        app = paper_fig1_application(period=period)
        try:
            schedule = ftss(app)
        except Exception:
            schedule = None
        if schedule is None:
            print(f"{period:>7}  {'-- unschedulable --':<22}")
            continue
        # Validate the hard guarantee in the canonical worst case.
        scenario = worst_case_scenario(app, FaultScenario.of({"P1": 1}))
        result = simulate(app, schedule, scenario)
        ok = "yes" if result.met_all_hard_deadlines else "NO"
        print(
            f"{period:>7}  {' '.join(schedule.order):<22} "
            f"{','.join(sorted(schedule.dropped)) or '-':<12} "
            f"{schedule.expected_utility():>10.1f}  {ok}"
        )

    # The Fig. 4c head-to-head at T = 250.
    app = paper_fig1_application(period=250)
    schedule = ftss(app)
    print(
        f"\nAt T = 250 the synthesized schedule keeps "
        f"{[n for n in schedule.order if n != 'P1']} and drops "
        f"{sorted(schedule.dropped)} — the paper's S3 keeps P3 "
        f"(utility 40) over P2 (utility 20)."
    )

    # Average realized utility across random scenarios.
    sampler = ScenarioSampler(app, seed=3)
    total = 0.0
    runs = 300
    for scenario in sampler.sample_many(runs, faults=0):
        total += simulate(app, schedule, scenario).utility
    print(f"mean utility over {runs} random no-fault cycles: {total / runs:.1f}")


if __name__ == "__main__":
    main()
