#!/usr/bin/env python
"""Design-space exploration: how big should the quasi-static tree be?

The paper's Table 1 shows the trade-off FTQS is built around: each
additional precalculated schedule costs memory on the embedded target
and synthesis time off-line, but buys overall utility — with sharply
diminishing returns.  This script sweeps M on one 30-process
application, prints the utility/memory/time frontier and a crude
memory estimate of the serialized tree (what would ship to the
target).

Run:  python examples/tree_size_exploration.py
"""

import json
import time

from repro.evaluation import MonteCarloEvaluator
from repro.io import tree_to_dict
from repro.quasistatic import FTQSConfig, ftqs
from repro.scheduling import ftss
from repro.workloads import WorkloadSpec, generate_application


def main() -> None:
    # A loaded application (period pressure < 1) so the worst-case
    # root schedule must drop work that quasi-static switching can
    # recover — the regime the paper's Table 1 explores.
    app = generate_application(
        WorkloadSpec(
            n_processes=30,
            soft_ratio=0.5,
            period_pressure_range=(0.7, 0.9),
        ),
        seed=42,
    )
    print(f"application: {app}")
    root = ftss(app)
    # One evaluator serves the whole M sweep; the with-scope releases
    # its worker pools / scenario segments deterministically at the
    # end, matching the experiment drivers' lifecycle discipline.
    with MonteCarloEvaluator(
        app, n_scenarios=400, fault_counts=[0, 1, 2, 3], seed=5
    ) as evaluator:
        base = evaluator.evaluate(root)

        print(
            f"\n{'M':>4} {'nodes':>6} {'U(0f)%':>8} {'U(3f)%':>8} "
            f"{'build s':>8} {'tree kB':>8}"
        )
        for m in (1, 2, 4, 8, 13, 23, 34):
            start = time.perf_counter()
            plan = (
                root
                if m == 1
                else ftqs(app, root, FTQSConfig(max_schedules=m))
            )
            elapsed = time.perf_counter() - start
            outcome = evaluator.evaluate(plan)
            if m == 1:
                nodes, size_kb = 1, 0.0
            else:
                nodes = len(plan)
                size_kb = len(json.dumps(tree_to_dict(plan))) / 1024.0
            print(
                f"{m:>4} {nodes:>6} "
                f"{100 * outcome[0].mean_utility / base[0].mean_utility:>8.1f} "
                f"{100 * outcome[3].mean_utility / base[3].mean_utility:>8.1f} "
                f"{elapsed:>8.2f} {size_kb:>8.1f}"
            )

    print(
        "\nReading the frontier: the first handful of schedules buys "
        "most of the improvement (the paper reports +11% at M = 2 and "
        "+21% at M = 8, saturating at +26%); past that, memory and "
        "synthesis time keep growing for little return."
    )


if __name__ == "__main__":
    main()
