#!/usr/bin/env python
"""Fault-injection campaign on a generated application.

Generates a 20-process application with the paper's §6 parameters,
synthesizes FTQS/FTSS/FTSF plans, then replays an identical battery
of randomized fault scenarios (0..3 faults) against each and reports:

* mean utility per fault count and approach,
* how often the quasi-static scheduler switched schedules,
* the hard-deadline miss count (always zero — the guarantee).

Run:  python examples/fault_injection_demo.py
"""

from repro.evaluation import MonteCarloEvaluator, normalized_to
from repro.quasistatic import FTQSConfig, ftqs
from repro.scheduling import ftsf, ftss
from repro.workloads import WorkloadSpec, generate_application


def main() -> None:
    spec = WorkloadSpec(n_processes=20, soft_ratio=0.5, k=3, mu=15)
    app = generate_application(spec, seed=42)
    print(f"application: {app}")

    root = ftss(app)
    baseline = ftsf(app)
    tree = ftqs(app, root, FTQSConfig(max_schedules=12))
    print(
        f"plans: FTSS ({len(root)} scheduled / {len(root.dropped)} dropped), "
        f"FTSF ({len(baseline)} scheduled), "
        f"FTQS tree ({tree.different_schedules()} schedules)"
    )

    # Scope the evaluator so any worker pools / shared-memory scenario
    # segments are released when the comparison is done, matching the
    # experiment drivers' lifecycle discipline.
    with MonteCarloEvaluator(app, n_scenarios=500, seed=7) as evaluator:
        results = evaluator.compare(
            {"FTQS": tree, "FTSS": root, "FTSF": baseline}
        )

    print(f"\n{'approach':<8} {'faults':>6} {'mean U':>9} "
          f"{'switches':>9} {'misses':>7}")
    for approach in ("FTQS", "FTSS", "FTSF"):
        for faults, outcome in sorted(results[approach].items()):
            print(
                f"{approach:<8} {faults:>6} {outcome.mean_utility:>9.1f} "
                f"{outcome.mean_switches:>9.2f} "
                f"{outcome.deadline_misses:>7}"
            )
            assert outcome.ok, "hard deadline violated!"

    percents = normalized_to(results, "FTQS", reference_faults=0)
    print("\nnormalized to FTQS (no faults), %:")
    for approach in ("FTQS", "FTSS", "FTSF"):
        row = "  ".join(
            f"{faults}f={percent:5.1f}"
            for faults, percent in sorted(percents[approach].items())
        )
        print(f"  {approach:<6} {row}")


if __name__ == "__main__":
    main()
