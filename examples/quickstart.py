#!/usr/bin/env python
"""Quickstart: the paper's Fig. 1 application end to end.

Builds the three-process mixed hard/soft application of the paper's
running example, synthesizes the fault-tolerant quasi-static tree, and
simulates three situations:

1. the average case (the scheduler stays on the root schedule),
2. an early completion of P1 (the scheduler switches to the ordering
   that earns more utility),
3. a transient fault in P1 (the recovery slack absorbs the
   re-execution and the hard deadline still holds).

Run:  python examples/quickstart.py
"""

from repro import (
    Application,
    FaultScenario,
    ProcessGraph,
    StepUtility,
    hard_process,
    schedule_application,
    simulate,
    soft_process,
)
from repro.analysis import render_gantt
from repro.faults import average_case_scenario, scenario_with_times


def build_application() -> Application:
    """The paper's Fig. 1 application with the Fig. 4a utilities."""
    p1 = hard_process("P1", bcet=30, wcet=70, deadline=180, aet=50)
    p2 = soft_process(
        "P2", 30, 70, StepUtility(40, [(90, 20), (200, 10), (250, 0)]), aet=50
    )
    p3 = soft_process(
        "P3", 40, 80, StepUtility(40, [(130, 30), (150, 10), (220, 0)]), aet=60
    )
    graph = ProcessGraph(
        [p1, p2, p3], [("P1", "P2"), ("P1", "P3")], name="A"
    )
    return Application(graph, period=300, k=1, mu=10)


def main() -> None:
    app = build_application()
    print(f"application: {app}")

    result = schedule_application(app, max_schedules=8)
    print(f"quasi-static tree: {result.summary()}")
    print(f"root schedule order: {result.root_schedule.order}")

    print("\n--- average case (stays on the root schedule) ---")
    outcome = simulate(app, result.tree, average_case_scenario(app))
    print(render_gantt(app, outcome))

    print("\n--- P1 completes early (switches to the P2-first tail) ---")
    early = scenario_with_times(app, {"P1": 30, "P2": 50, "P3": 60})
    outcome = simulate(app, result.tree, early)
    print(render_gantt(app, outcome))

    print("\n--- transient fault in P1 (re-execution, deadline held) ---")
    faulty = scenario_with_times(
        app, {"P1": 60, "P2": 55, "P3": 70}, FaultScenario.of({"P1": 1})
    )
    outcome = simulate(app, result.tree, faulty)
    print(render_gantt(app, outcome))
    assert outcome.met_all_hard_deadlines


if __name__ == "__main__":
    main()
