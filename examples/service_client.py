#!/usr/bin/env python
"""A dependency-free client for the ``repro serve`` HTTP service.

Boots nothing itself — point it at a running service::

    repro serve --port 8080 --cache-backend memory &
    python examples/service_client.py http://127.0.0.1:8080

and it walks the full client protocol with nothing but the standard
library:

* submit the paper's Fig. 1 application to ``POST /v1/schedule`` twice
  (the repeat is served from the tree store — watch the
  ``X-Repro-Store`` header flip from ``miss`` to ``hit``);
* evaluate the returned tree via ``POST /v1/evaluate``;
* poll ``GET /metrics`` for the queue / synthesis / store counters;
* demonstrate well-behaved backpressure handling: on a ``429`` the
  client sleeps the server's ``Retry-After`` hint (plus jitter) and
  retries, instead of hammering an overloaded server.

Every error the service returns is a structured JSON document with a
stable ``error.code`` (see the README's taxonomy table), so real
clients branch on codes, never on message prose — exactly what
:func:`call` below does.
"""

import json
import random
import sys
import time
import urllib.error
import urllib.request

from repro.examples_support import paper_fig1_application
from repro.io.json_io import application_to_dict

#: 429/503 retry budget: enough to ride out a drain or a burst, small
#: enough that a genuinely dead server fails in seconds.
MAX_ATTEMPTS = 5


def call(base_url, path, document=None, timeout=60):
    """One service call → (status, parsed body, headers).

    Retries only the *retryable* taxonomy codes (``overloaded``,
    ``shutting-down``), honoring the server's ``Retry-After`` hint
    with a little jitter so a fleet of clients does not retry in
    lock-step.  Every other error returns immediately — a 400 will
    not get better by asking again.
    """
    data = (
        json.dumps(document).encode("utf-8")
        if document is not None
        else None
    )
    for attempt in range(1, MAX_ATTEMPTS + 1):
        request = urllib.request.Request(base_url + path, data=data)
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read()), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            body = json.loads(exc.read())
            code = body.get("error", {}).get("code")
            if code not in ("overloaded", "shutting-down"):
                return exc.code, body, dict(exc.headers)
            if attempt == MAX_ATTEMPTS:
                return exc.code, body, dict(exc.headers)
            delay = float(exc.headers.get("Retry-After", 1))
            delay *= 1.0 + 0.25 * random.random()
            print(
                f"  server says {code} — backing off {delay:.1f}s "
                f"(attempt {attempt}/{MAX_ATTEMPTS})"
            )
            time.sleep(delay)
    raise AssertionError("unreachable")


def main() -> int:
    base_url = (
        sys.argv[1] if len(sys.argv) > 1 else "http://127.0.0.1:8080"
    ).rstrip("/")

    status, body, _ = call(base_url, "/healthz")
    print(f"healthz: {status} {body}")
    status, body, _ = call(base_url, "/readyz")
    print(f"readyz:  {status} ready={body['ready']} {body['reasons']}")
    if status != 200:
        print("server is degraded or draining; proceeding anyway")

    payload = {
        "application": application_to_dict(paper_fig1_application()),
        "max_schedules": 8,
    }
    status, tree, headers = call(base_url, "/v1/schedule", payload)
    if status != 200:
        print(f"schedule failed: {status} {tree['error']}")
        return 1
    print(
        f"schedule: {status} store={headers['X-Repro-Store']} "
        f"nodes={headers['X-Repro-Tree-Nodes']} "
        f"schedules={headers['X-Repro-Tree-Schedules']}"
    )

    # The identical repeat: served from the tree store, byte-identical.
    status, _, headers = call(base_url, "/v1/schedule", payload)
    print(f"repeat:   {status} store={headers['X-Repro-Store']}")

    status, body, _ = call(
        base_url,
        "/v1/evaluate",
        {
            "application": payload["application"],
            "tree": tree,
            "scenarios": 200,
            "seed": 1,
        },
    )
    if status != 200:
        print(f"evaluate failed: {status} {body['error']}")
        return 1
    for faults, outcome in sorted(body["outcomes"].items()):
        print(
            f"evaluate: {faults} fault(s) → mean utility "
            f"{outcome['mean_utility']:.1f}, "
            f"{outcome['mean_switches']:.2f} switches/cycle "
            f"[{'ok' if outcome['ok'] else 'DEADLINE MISSES'}]"
        )

    status, metrics, _ = call(base_url, "/metrics")
    queue = metrics["queue"]
    synthesis = metrics["synthesis"]
    print(
        f"metrics:  {queue['completed']} completed / "
        f"{queue['rejected']} shed / {queue['expired']} expired; "
        f"synthesis built {synthesis['trees_built']} tree(s), "
        f"{synthesis['store_hits']} store hit(s)"
    )
    if metrics["store"] is not None:
        print(
            f"store:    [{metrics['store']['backend']}] "
            f"{metrics['store']['hits']} hits / "
            f"{metrics['store']['misses']} misses, "
            f"tripped={metrics['store']['tripped']}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
