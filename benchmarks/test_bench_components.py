"""Micro-benchmarks of the pipeline components.

These quantify the claims the macro experiments rest on:

* FTSS construction time scales with the application size (the basis
  of Table 1's runtime column);
* the quasi-static *online* decision — one arc scan per completion —
  costs microseconds, which is the paper's §1 argument against full
  online re-planning (measured side by side here);
* one Monte-Carlo simulation cycle is cheap enough to support the
  paper's 20,000-scenario evaluations.
"""

import pytest

from repro.evaluation.montecarlo import MonteCarloEvaluator
from repro.faults.injection import average_case_scenario
from repro.quasistatic.ftqs import FTQSConfig, ftqs
from repro.runtime.online import OnlineScheduler
from repro.runtime.replanner import run_replanning
from repro.scheduling.ftss import ftss
from repro.workloads.suite import WorkloadSpec, generate_application


@pytest.fixture(scope="module", params=[10, 30, 50])
def sized_app(request):
    return generate_application(
        WorkloadSpec(n_processes=request.param), seed=request.param
    )


def test_ftss_construction(benchmark, sized_app):
    """FTSS synthesis time per application size."""
    schedule = benchmark(ftss, sized_app)
    assert schedule is not None


def test_ftqs_tree_construction(benchmark):
    """FTQS tree construction (M = 8) on a 30-process application."""
    app = generate_application(WorkloadSpec(n_processes=30), seed=30)
    root = ftss(app)
    tree = benchmark.pedantic(
        ftqs,
        args=(app, root, FTQSConfig(max_schedules=8)),
        rounds=2,
        iterations=1,
    )
    assert tree.different_schedules() <= 8


def test_online_cycle(benchmark):
    """One full simulated operation cycle (quasi-static scheduler)."""
    app = generate_application(WorkloadSpec(n_processes=30), seed=30)
    root = ftss(app)
    tree = ftqs(app, root, FTQSConfig(max_schedules=8))
    scheduler = OnlineScheduler(app, tree, record_events=False)
    scenario = average_case_scenario(app)
    result = benchmark(scheduler.run, scenario)
    assert result.met_all_hard_deadlines


def test_online_replanning_cycle(benchmark):
    """The §1 straw man: one cycle with FTSS re-run at every
    completion.  Compare with test_online_cycle — the gap is the
    overhead quasi-static scheduling avoids."""
    app = generate_application(WorkloadSpec(n_processes=30), seed=30)
    scenario = average_case_scenario(app)
    outcome = benchmark.pedantic(
        run_replanning, args=(app, scenario), rounds=2, iterations=1
    )
    assert outcome.result.met_all_hard_deadlines


def test_montecarlo_throughput(benchmark):
    """200 paired scenarios against a static schedule."""
    app = generate_application(WorkloadSpec(n_processes=20), seed=20)
    root = ftss(app)
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=50, fault_counts=[0, 2], seed=1
    )
    outcomes = benchmark.pedantic(
        evaluator.evaluate, args=(root,), rounds=2, iterations=1
    )
    assert outcomes[0].ok
