"""Bench: regenerate Fig. 9a — no-fault utility of FTSF/FTSS/FTQS vs
application size, normalized to FTQS.

Paper shape: FTQS = 100%; FTSS trails by 11-18%; FTSF is the clear
loser (the paper reports it 20-70% below FTSS).
"""

import pytest

from repro.evaluation.experiments.fig9 import (
    Fig9Config,
    fig9a_rows,
    format_fig9,
    run_fig9,
)

DEFAULT = Fig9Config(apps_per_size=3, n_scenarios=100, max_schedules=8)


@pytest.fixture(scope="module")
def config(request):
    if request.config.getoption("--full-scale"):
        return Fig9Config.paper_scale()
    return DEFAULT


def test_fig9a(benchmark, config):
    rows = benchmark.pedantic(
        run_fig9, args=(config,), rounds=1, iterations=1
    )
    print()
    print(format_fig9(rows, panel="a"))

    panel = fig9a_rows(rows)
    ftqs = {r.size: r.utility_percent for r in panel if r.approach == "FTQS"}
    ftss = {r.size: r.utility_percent for r in panel if r.approach == "FTSS"}
    ftsf = {r.size: r.utility_percent for r in panel if r.approach == "FTSF"}
    # Shape assertions (who wins, and by roughly what order).
    for size in config.sizes:
        assert ftqs[size] == pytest.approx(100.0)
        assert ftss[size] <= 100.0 + 1e-6
        assert ftsf[size] <= ftss[size] + 5.0  # FTSF clearly not ahead
    mean_ftss = sum(ftss.values()) / len(ftss)
    mean_ftsf = sum(ftsf.values()) / len(ftsf)
    assert mean_ftsf < mean_ftss < 100.0
