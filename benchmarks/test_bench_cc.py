"""Bench: regenerate the cruise-controller case study (paper §6).

Paper numbers on their CC instance: 39 schedules give FTQS a 14%
no-fault improvement over FTSS and 81% over FTSF; utility drops by 4%
under one fault and 9% under two.  Our reconstructed CC (the original
graph is unpublished) must reproduce the shape: FTQS > FTSS >> FTSF,
with single-digit-percent degradation under faults.
"""

import pytest

from repro.evaluation.experiments.cc import CCConfig, run_cc

DEFAULT = CCConfig(max_schedules=39, n_scenarios=400)


@pytest.fixture(scope="module")
def config(request):
    if request.config.getoption("--full-scale"):
        return CCConfig.paper_scale()
    return DEFAULT


def test_cruise_controller(benchmark, config):
    report = benchmark.pedantic(
        run_cc, args=(config,), rounds=1, iterations=1
    )
    print()
    print(report.format())

    # Who wins, and in the right order of magnitude.
    assert report.ftqs_vs_ftss_percent > 3.0
    assert report.ftqs_vs_ftsf_percent > 30.0
    assert report.ftqs_vs_ftsf_percent > report.ftqs_vs_ftss_percent
    # Graceful degradation: single-digit-ish percentages, monotone.
    assert 0.0 <= report.degradation_1_fault_percent < 20.0
    assert (
        report.degradation_1_fault_percent
        <= report.degradation_2_faults_percent
        < 25.0
    )
    assert report.distinct_schedules <= config.max_schedules
