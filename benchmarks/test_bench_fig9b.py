"""Bench: regenerate Fig. 9b — utility under 0/1/2/3 faults vs
application size, normalized to FTQS (no faults).

Paper shape: FTQS degrades gracefully with the fault count (16% at 1
fault for 10 processes, shrinking to 3% at 50 processes — larger
applications absorb recoveries more easily) and stays above both
static alternatives even at 3 faults.
"""

import pytest

from repro.evaluation.experiments.fig9 import (
    Fig9Config,
    format_fig9,
    run_fig9,
)

DEFAULT = Fig9Config(apps_per_size=3, n_scenarios=100, max_schedules=8)


@pytest.fixture(scope="module")
def config(request):
    if request.config.getoption("--full-scale"):
        return Fig9Config.paper_scale()
    return DEFAULT


def test_fig9b(benchmark, config):
    rows = benchmark.pedantic(
        run_fig9, args=(config,), rounds=1, iterations=1
    )
    print()
    print(format_fig9(rows, panel="b"))

    def series(approach, faults):
        return {
            r.size: r.utility_percent
            for r in rows
            if r.approach == approach and r.faults == faults
        }

    ftqs = {f: series("FTQS", f) for f in (0, 1, 2, 3)}
    ftss3 = series("FTSS", 3)
    # Degradation direction, with a sampling/adaptivity tolerance: a
    # fault occasionally *helps* (it hands the runtime a free adaptive
    # drop of a marginal soft process), so per-size monotonicity is not
    # a strict invariant — but the trend must hold.
    tol = 6.0
    for size in config.sizes:
        assert ftqs[0][size] + tol >= ftqs[1][size]
        assert ftqs[1][size] + tol >= ftqs[2][size]
        assert ftqs[2][size] + tol >= ftqs[3][size]
        # FTQS at 3 faults still not behind static FTSS at 3 faults.
        assert ftqs[3][size] >= ftss3[size] - 5.0

    def mean(series_map):
        return sum(series_map.values()) / len(series_map)

    # Averaged over sizes the paper's ordering is strict.
    assert mean(ftqs[0]) > mean(ftqs[3])
    assert mean(ftqs[3]) >= mean(ftss3) - 1.0
