"""Bench: the design-choice ablations of DESIGN.md.

Measures what each FTSS/FTQS design choice contributes on a shared
30-process suite:

* ``no-dropping``   — disabling the S'/S'' dropping heuristic;
* ``private-slack`` — per-process instead of shared recovery slack;
* ``wcet-opt``      — optimizing utility at WCET instead of AET;
* ``no-intervals``  — naive always-switch instead of interval
  partitioning;
* ``online-replan`` — the §1 straw man: full FTSS re-run at every
  completion, with its per-cycle scheduling overhead.
"""

import pytest

from repro.evaluation.experiments.ablations import (
    AblationConfig,
    format_ablations,
    run_ablations,
)

DEFAULT = AblationConfig(
    n_apps=4,
    n_processes=30,
    n_scenarios=100,
    max_schedules=8,
    replanner_scenarios=5,
)


@pytest.fixture(scope="module")
def config(request):
    if request.config.getoption("--full-scale"):
        return AblationConfig(
            n_apps=20,
            n_processes=30,
            n_scenarios=2000,
            max_schedules=16,
            replanner_scenarios=20,
        )
    return DEFAULT


def test_ablations(benchmark, config):
    rows = benchmark.pedantic(
        run_ablations, args=(config,), rounds=1, iterations=1
    )
    print()
    print(format_ablations(rows))

    by_name = {r.name: r for r in rows}
    base = by_name["ftss-default"]
    assert base.utility_percent[0] == pytest.approx(100.0)
    # The full FTQS beats (or matches) plain FTSS.
    assert by_name["ftqs-default"].utility_percent[0] >= 100.0 - 1e-6
    # Interval partitioning matters: naive switching must not beat it.
    assert (
        by_name["no-intervals"].utility_percent[0]
        <= by_name["ftqs-default"].utility_percent[0] + 1.0
    )
    # The replanner is adaptive (high utility) but pays real per-cycle
    # scheduling time, unlike the quasi-static table lookups.
    if "online-replan" in by_name:
        row = by_name["online-replan"]
        assert row.overhead_ms is not None and row.overhead_ms > 0.1
