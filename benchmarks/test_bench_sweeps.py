"""Bench: the soft-ratio and fault-budget sweeps (extensions).

These characterize when quasi-static scheduling pays off:

* the FTQS advantage needs *soft* processes to adapt — with an almost
  all-hard mix the tree has nothing to reorder;
* the advantage also needs *uncertainty headroom*: with k = 0 there is
  no recovery slack to reclaim, while very large k makes the worst
  case so pessimistic that the root drops most soft work and early
  completions reclaim a lot of it.
"""

import math

import pytest

from repro.evaluation.experiments.sweeps import (
    SweepConfig,
    format_sweep,
    run_fault_budget_sweep,
    run_soft_ratio_sweep,
)

DEFAULT = SweepConfig(n_apps=3, n_processes=20, n_scenarios=80)


@pytest.fixture(scope="module")
def config(request):
    if request.config.getoption("--full-scale"):
        return SweepConfig(n_apps=15, n_processes=30, n_scenarios=2000)
    return DEFAULT


def test_soft_ratio_sweep(benchmark, config):
    rows = benchmark.pedantic(
        run_soft_ratio_sweep,
        kwargs={"config": config},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_sweep(rows, "soft ratio"))
    gains = {row.parameter: row.ftqs_vs_ftss_percent for row in rows}
    # FTQS never loses to its own root schedule.
    for gain in gains.values():
        assert math.isnan(gain) or gain >= 100.0 - 1e-6
    # Adaptivity needs soft processes: the advantage at the soft-rich
    # end is at least what the hard-dominated end achieves.
    assert gains[0.8] >= gains[0.2] - 2.0


def test_fault_budget_sweep(benchmark, config):
    rows = benchmark.pedantic(
        run_fault_budget_sweep,
        kwargs={"config": config},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_sweep(rows, "fault budget k"))
    by_k = {int(row.parameter): row for row in rows}
    for row in rows:
        gain = row.ftqs_vs_ftss_percent
        assert math.isnan(gain) or gain >= 100.0 - 1e-6
    # The generator scales the period with k's worst-case load, so the
    # dropped fraction stays in the same regime across k rather than
    # growing; what must grow is the construction cost (more fault
    # variants per position).
    assert by_k[4].build_seconds >= by_k[0].build_seconds
    # Quasi-static adaptation pays off at every k, including k = 0
    # (the pure Cortes-style completion-time tree).
    assert by_k[0].ftqs_vs_ftss_percent >= 100.0 - 1e-6
