"""Throughput benchmark: reference loop vs batched engine.

Measures scenarios/second of both Monte-Carlo engines on the
cruise-controller workload (the paper's real-life case study) over the
*same* scenario sets, asserts the results are bit-identical, and
asserts the batched engine clears a 5x speedup on the no-fault axis at
2,000 scenarios — the floor that makes the paper's 20,000-scenario
``--full-scale`` runs practical.  The mixed-fault axis (where faulted
soft processes route through the oracle) is reported without a floor:
its speedup depends on how many scenarios the fast path can keep.
"""

import time

import pytest

from repro.evaluation.montecarlo import MonteCarloEvaluator
from repro.quasistatic.ftqs import FTQSConfig, ftqs
from repro.scheduling.ftss import ftss
from repro.workloads.cruise import cruise_controller


@pytest.fixture(scope="module")
def cc_setup():
    app = cruise_controller()
    root = ftss(app)
    assert root is not None
    tree = ftqs(app, root, FTQSConfig(max_schedules=8))
    return app, root, tree


def _time_engine(evaluator, plan, engine, rounds=2):
    """Best-of-``rounds`` wall time (min damps scheduler noise on
    loaded boxes).  The batch cache is cleared before every batched
    round so each one pays the full end-to-end cost, packing included."""
    best = None
    outcomes = None
    for _ in range(rounds):
        evaluator._batches.clear()
        start = time.perf_counter()
        outcomes = evaluator.evaluate(plan, engine=engine)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return outcomes, best


def _report(label, n_scenarios, n_axes, t_ref, t_bat):
    total = n_scenarios * n_axes
    print(
        f"\n[{label}] reference {total / t_ref:,.0f} scen/s "
        f"({t_ref:.3f}s)  batched {total / t_bat:,.0f} scen/s "
        f"({t_bat:.3f}s)  speedup {t_ref / t_bat:.1f}x"
    )


def test_engine_speedup_no_fault_axis(cc_setup, full_scale):
    """>= 5x scenarios/sec on the cruise controller, 2,000 scenarios."""
    app, root, tree = cc_setup
    n = 20000 if full_scale else 2000
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[0], seed=11
    )
    for plan_label, plan in (("ftss", root), ("ftqs-8", tree)):
        by_reference, t_ref = _time_engine(evaluator, plan, "reference")
        by_batch, t_bat = _time_engine(evaluator, plan, "batched")
        assert by_reference[0].utilities == by_batch[0].utilities
        assert by_reference[0].mean_utility == by_batch[0].mean_utility
        _report(f"cc/{plan_label}/f=0", n, 1, t_ref, t_bat)
        speedup = t_ref / t_bat
        assert speedup >= 5.0, (
            f"batched engine only {speedup:.1f}x over the reference "
            f"loop on {plan_label} (floor: 5x)"
        )


def test_engine_speedup_mixed_fault_axes(cc_setup, full_scale):
    """Mixed 0/1/2-fault axes: identical results, reported speedup."""
    app, _, tree = cc_setup
    n = 20000 if full_scale else 1000
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[0, 1, 2], seed=11
    )
    by_reference, t_ref = _time_engine(evaluator, tree, "reference")
    by_batch, t_bat = _time_engine(evaluator, tree, "batched")
    for faults in (0, 1, 2):
        assert (
            by_reference[faults].utilities == by_batch[faults].utilities
        )
    _report("cc/ftqs-8/f=0,1,2", n, 3, t_ref, t_bat)
    # Oracle-heavy axes must not *lose* to the reference loop; allow a
    # timing-noise margin — the hard floor lives on the no-fault axis.
    assert t_bat < t_ref * 1.25
