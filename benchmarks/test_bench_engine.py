"""Throughput benchmark: reference loop vs batched vs kernel engine.

Measures scenarios/second of the Monte-Carlo engines on the
cruise-controller workload (the paper's real-life case study) over the
*same* scenario sets, asserts the results are bit-identical, and
asserts speedup floors that keep the paper's 20,000-scenario
``--full-scale`` runs practical: 5x on the no-fault axis and 3x on
every mixed-fault axis (k = 1, 2) for the batched engine, where
faulted soft processes resolve against the compiled §2.2 decision
tables instead of the reference loop.  The generated-C kernel axes
(``cc/.../kernel-vs-*``) time ``engine="kernel"`` against both the
reference loop and the batched engine with the scenario sets already
packed — both engines share the packing cost, which the batched axes
already measure end-to-end — and assert ≥ 2x over batched on the
mixed-fault axes (they are skipped, with the counted reason, on boxes
without a C compiler).  A persistent-pool ``compare()`` benchmark
checks that ``batched@processes:4`` beats an inline run on a
multi-plan workload, and a ``kernel-threads`` axis
(``cc/compare-kernel-threads``) that ``kernel@threads:4`` beats
``kernel@processes:4`` on the same workload — the GIL-free thread
sharding skips fork and shared-memory publication entirely (asserted
— and recorded in the trajectory — only when the box actually has
≥ 4 CPUs, so 1-CPU boxes cannot pollute the history).

Every measured axis is appended to ``BENCH_engine.json`` at the repo
root — a trajectory artifact: one entry per bench run, each axis row
carrying the ``cpu_count`` it was measured on, so throughput history
survives across sessions.

A tier-1 smoke slice is marked ``bench_smoke``
(``pytest -m bench_smoke``): seconds-long mixed-fault runs with loose
floors, so fast-path and kernel regressions fail fast without
``--full-scale``.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.evaluation.montecarlo import MonteCarloEvaluator
from repro.quasistatic.ftqs import FTQSConfig, ftqs
from repro.scheduling.ftss import ftss
from repro.workloads.cruise import cruise_controller

bench_smoke = pytest.mark.bench_smoke

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _cpus() -> int:
    """Effective CPU count (affinity-aware, so throttled containers
    report what they can actually use)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def cc_setup():
    app = cruise_controller()
    root = ftss(app)
    assert root is not None
    tree = ftqs(app, root, FTQSConfig(max_schedules=8))
    return app, root, tree


@pytest.fixture(scope="module")
def trajectory():
    """Collect per-axis rows; append one run entry to the artifact."""
    rows = []
    yield rows
    if not rows:
        return
    history = []
    if _ARTIFACT.exists():
        try:
            history = json.loads(_ARTIFACT.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "cpu_count": os.cpu_count(),
            "axes": rows,
        }
    )
    _ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def _time_engine(evaluator, plan, engine, rounds=3, repack=True):
    """Best-of-``rounds`` wall time (min damps scheduler noise on
    loaded boxes; three rounds because a single descheduling spike on
    a 1-CPU box routinely survives two and trips the ±20% trajectory
    gate).  With ``repack`` (the default) the batch cache is cleared
    before every round so each one pays the full end-to-end cost,
    packing included; the kernel axes pass ``repack=False`` to time
    the engines on already-packed scenario sets."""
    best = None
    outcomes = None
    for _ in range(rounds):
        if repack:
            evaluator._batches.clear()
        start = time.perf_counter()
        outcomes = evaluator.evaluate(plan, execution=engine)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return outcomes, best


def _report(label, n_scenarios, n_axes, t_ref, t_bat, rows=None):
    total = n_scenarios * n_axes
    print(
        f"\n[{label}] reference {total / t_ref:,.0f} scen/s "
        f"({t_ref:.3f}s)  batched {total / t_bat:,.0f} scen/s "
        f"({t_bat:.3f}s)  speedup {t_ref / t_bat:.1f}x"
    )
    if rows is not None:
        rows.append(
            {
                "label": label,
                "n_scenarios": total,
                "cpu_count": _cpus(),
                "reference_scen_per_s": total / t_ref,
                "batched_scen_per_s": total / t_bat,
                "speedup": t_ref / t_bat,
            }
        )


def _report_kernel(label, total, t_other, t_ker, other, rows):
    """One kernel comparison axis (vs ``other``) for the trajectory."""
    print(
        f"\n[{label}] {other} {total / t_other:,.0f} scen/s "
        f"({t_other:.3f}s)  kernel {total / t_ker:,.0f} scen/s "
        f"({t_ker:.3f}s)  speedup {t_other / t_ker:.1f}x"
    )
    rows.append(
        {
            "label": label,
            "n_scenarios": total,
            "cpu_count": _cpus(),
            f"{other}_scen_per_s": total / t_other,
            "kernel_scen_per_s": total / t_ker,
            "speedup": t_other / t_ker,
        }
    )


def test_engine_speedup_no_fault_axis(cc_setup, full_scale, trajectory):
    """>= 5x scenarios/sec on the cruise controller, 2,000 scenarios."""
    app, root, tree = cc_setup
    n = 20000 if full_scale else 2000
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[0], seed=11
    )
    for plan_label, plan in (("ftss", root), ("ftqs-8", tree)):
        by_reference, t_ref = _time_engine(evaluator, plan, "reference")
        by_batch, t_bat = _time_engine(evaluator, plan, "batched")
        assert by_reference[0].utilities == by_batch[0].utilities
        assert by_reference[0].mean_utility == by_batch[0].mean_utility
        assert by_batch[0].fallbacks == 0
        _report(f"cc/{plan_label}/f=0", n, 1, t_ref, t_bat, trajectory)
        speedup = t_ref / t_bat
        assert speedup >= 5.0, (
            f"batched engine only {speedup:.1f}x over the reference "
            f"loop on {plan_label} (floor: 5x)"
        )


@pytest.mark.parametrize("faults", [1, 2])
def test_engine_speedup_single_fault_axes(
    cc_setup, full_scale, trajectory, faults
):
    """Mixed-fault axes (k = 1, 2): >= 3x via the §2.2 tables.

    Before the compiled decision tables these axes crawled (~1.3x):
    every soft-faulted scenario took the pure-Python oracle.  The
    floor pins the table path's gain.
    """
    app, _, tree = cc_setup
    n = 20000 if full_scale else 2000
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[faults], seed=11
    )
    by_reference, t_ref = _time_engine(evaluator, tree, "reference")
    by_batch, t_bat = _time_engine(evaluator, tree, "batched")
    assert by_reference[faults].utilities == by_batch[faults].utilities
    assert by_batch[faults].fallbacks == 0
    _report(f"cc/ftqs-8/f={faults}", n, 1, t_ref, t_bat, trajectory)
    speedup = t_ref / t_bat
    assert speedup >= 3.0, (
        f"batched engine only {speedup:.1f}x over the reference loop "
        f"on the f={faults} axis (floor: 3x)"
    )


def test_engine_speedup_mixed_fault_axes(cc_setup, full_scale, trajectory):
    """Combined 0/1/2-fault run: identical results, >= 3x overall."""
    app, _, tree = cc_setup
    n = 20000 if full_scale else 1000
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[0, 1, 2], seed=11
    )
    by_reference, t_ref = _time_engine(evaluator, tree, "reference")
    by_batch, t_bat = _time_engine(evaluator, tree, "batched")
    for faults in (0, 1, 2):
        assert (
            by_reference[faults].utilities == by_batch[faults].utilities
        )
        assert by_batch[faults].fallbacks == 0
    _report("cc/ftqs-8/f=0,1,2", n, 3, t_ref, t_bat, trajectory)
    speedup = t_ref / t_bat
    assert speedup >= 3.0, (
        f"batched engine only {speedup:.1f}x on the mixed axes "
        "(floor: 3x)"
    )


@pytest.fixture(scope="module")
def kernel_ready(cc_setup):
    """Skip the kernel axes (with the counted reason) when no kernel
    can be built on this box; warms the artifact cache otherwise."""
    from repro.runtime.engine.kernel import KernelSimulator

    app, _, tree = cc_setup
    simulator = KernelSimulator(app, tree)
    if simulator.engine_used != "kernel":
        pytest.skip(
            f"kernel engine unavailable ({simulator.fallback_reason})"
        )


@pytest.mark.parametrize("faults", [1, 2])
def test_kernel_speedup_single_fault_axes(
    cc_setup, full_scale, trajectory, kernel_ready, faults
):
    """Generated-C kernel on the mixed-fault axes: >= 2x over batched.

    The kernel walks each scenario once in C instead of stepping
    cohort arrays through NumPy dispatch, so its edge grows with the
    decision work per scenario — these are the axes the ROADMAP's
    compile-the-core item targeted.
    """
    app, _, tree = cc_setup
    n = 20000 if full_scale else 2000
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[faults], seed=11
    )
    evaluator.evaluate(tree, execution="batched")  # pack once, warm caches
    by_reference, t_ref = _time_engine(
        evaluator, tree, "reference", repack=False
    )
    by_batch, t_bat = _time_engine(evaluator, tree, "batched", repack=False)
    by_kernel, t_ker = _time_engine(evaluator, tree, "kernel", repack=False)
    assert by_reference[faults].utilities == by_kernel[faults].utilities
    assert by_batch[faults].utilities == by_kernel[faults].utilities
    assert by_kernel[faults].fallbacks == 0
    _report_kernel(
        f"cc/ftqs-8/f={faults}/kernel-vs-ref",
        n, t_ref, t_ker, "reference", trajectory,
    )
    _report_kernel(
        f"cc/ftqs-8/f={faults}/kernel-vs-batched",
        n, t_bat, t_ker, "batched", trajectory,
    )
    assert t_ker * 2.0 <= t_bat, (
        f"kernel only {t_bat / t_ker:.1f}x over batched on the "
        f"f={faults} axis (floor: 2x)"
    )
    assert t_ker * 10.0 <= t_ref, (
        f"kernel only {t_ref / t_ker:.1f}x over the reference loop on "
        f"the f={faults} axis (floor: 10x)"
    )


def test_kernel_speedup_mixed_fault_axes(
    cc_setup, full_scale, trajectory, kernel_ready
):
    """Combined 0/1/2-fault kernel run: identical results, >= 2x."""
    app, _, tree = cc_setup
    n = 20000 if full_scale else 1000
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[0, 1, 2], seed=11
    )
    evaluator.evaluate(tree, execution="batched")  # pack once, warm caches
    by_batch, t_bat = _time_engine(evaluator, tree, "batched", repack=False)
    by_kernel, t_ker = _time_engine(evaluator, tree, "kernel", repack=False)
    for faults in (0, 1, 2):
        assert by_batch[faults].utilities == by_kernel[faults].utilities
        assert by_kernel[faults].fallbacks == 0
    _report_kernel(
        "cc/ftqs-8/f=0,1,2/kernel-vs-batched",
        n * 3, t_bat, t_ker, "batched", trajectory,
    )
    assert t_ker * 2.0 <= t_bat, (
        f"kernel only {t_bat / t_ker:.1f}x over batched on the mixed "
        "axes (floor: 2x)"
    )


def test_parallel_compare_workload(cc_setup, full_scale, trajectory):
    """Per-plan compare(): jobs=4 must beat jobs=1 (on a >= 4-CPU box).

    The workload the persistent pool exists for: many small per-plan
    evaluations over the same scenario sets.  On boxes without 4 CPUs
    the timing is reported but not asserted — process parallelism
    cannot win without cores.
    """
    app, root, tree = cc_setup
    plans = {
        "ftss": root,
        "ftqs-2": ftqs(app, root, FTQSConfig(max_schedules=2)),
        "ftqs-4": ftqs(app, root, FTQSConfig(max_schedules=4)),
        "ftqs-8": tree,
    }
    n = 20000 if full_scale else 2000
    with MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[0, 1, 2], seed=11,
        execution="batched",
    ) as evaluator:
        start = time.perf_counter()
        serial = evaluator.compare(plans)
        t_serial = time.perf_counter() - start

        parallel = evaluator.executor("batched@processes:4")
        parallel.evaluate(root)  # warm the pool outside the timing
        start = time.perf_counter()
        sharded = parallel.compare(plans)
        t_sharded = time.perf_counter() - start

    for name in plans:
        for faults in (0, 1, 2):
            assert (
                serial[name][faults].utilities
                == sharded[name][faults].utilities
            )
    total = n * 3 * len(plans)
    print(
        f"\n[cc/compare x{len(plans)}] jobs=1 {total / t_serial:,.0f} "
        f"scen/s ({t_serial:.3f}s)  jobs=4 {total / t_sharded:,.0f} "
        f"scen/s ({t_sharded:.3f}s)"
    )
    # sched_getaffinity respects cgroup/affinity limits; cpu_count()
    # reports the host and would assert on throttled containers.
    cpus = _cpus()
    if cpus < 4:
        # Neither gate nor record: a jobs comparison measured without
        # the cores to parallelize (speedups like 0.43 on a 1-CPU box)
        # is noise that would pollute the trajectory history.
        print(f"[cc/compare-jobs] skipped on a {cpus}-CPU box")
        return
    trajectory.append(
        {
            "label": "cc/compare-jobs",
            "n_scenarios": total,
            "cpu_count": cpus,
            "jobs1_scen_per_s": total / t_serial,
            "jobs4_scen_per_s": total / t_sharded,
            "speedup": t_serial / t_sharded,
        }
    )
    assert t_sharded < t_serial, (
        f"jobs=4 ({t_sharded:.3f}s) did not beat jobs=1 "
        f"({t_serial:.3f}s) on a {cpus}-CPU box"
    )


def test_kernel_threads_beat_processes_compare_workload(
    cc_setup, full_scale, trajectory, kernel_ready
):
    """kernel@threads:4 must beat kernel@processes:4 (on a >= 4-CPU
    box) — the ``kernel-threads`` axis.

    The ROADMAP's GIL-free multi-core item: the kernel's ``ctypes``
    call releases the GIL for the whole batch, so thread sharding gets
    the same core budget as process sharding while skipping fork,
    shared-memory publication and result pickling entirely.  Skipped
    (neither asserted nor recorded) without the cores to parallelize.
    """
    from repro.runtime.engine.threads import (
        reset_thread_stats,
        thread_stats,
    )

    cpus = _cpus()
    if cpus < 4:
        pytest.skip(
            f"threads-vs-processes needs >= 4 CPUs, have {cpus}"
        )
    app, root, tree = cc_setup
    plans = {
        "ftss": root,
        "ftqs-2": ftqs(app, root, FTQSConfig(max_schedules=2)),
        "ftqs-4": ftqs(app, root, FTQSConfig(max_schedules=4)),
        "ftqs-8": tree,
    }
    n = 20000 if full_scale else 2000
    reset_thread_stats()
    with MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[0, 1, 2], seed=11,
        execution="kernel",
    ) as evaluator:
        threaded = evaluator.executor("kernel@threads:4")
        processes = evaluator.executor("kernel@processes:4")
        # Warm both pools (and the compiled per-shard kernels) outside
        # the timed region.
        threaded.evaluate(root)
        processes.evaluate(root)

        start = time.perf_counter()
        by_threads = threaded.compare(plans)
        t_threads = time.perf_counter() - start

        start = time.perf_counter()
        by_processes = processes.compare(plans)
        t_processes = time.perf_counter() - start

    assert thread_stats().fallbacks == {}, (
        f"threaded axis fell back: {thread_stats().summary()}"
    )
    for name in plans:
        for faults in (0, 1, 2):
            assert (
                by_threads[name][faults].utilities
                == by_processes[name][faults].utilities
            )
    total = n * 3 * len(plans)
    print(
        f"\n[cc/compare-kernel-threads x{len(plans)}] processes:4 "
        f"{total / t_processes:,.0f} scen/s ({t_processes:.3f}s)  "
        f"threads:4 {total / t_threads:,.0f} scen/s ({t_threads:.3f}s)"
    )
    trajectory.append(
        {
            "label": "cc/compare-kernel-threads",
            "n_scenarios": total,
            "cpu_count": cpus,
            "threads4_scen_per_s": total / t_threads,
            "processes4_scen_per_s": total / t_processes,
            "speedup": t_processes / t_threads,
        }
    )
    assert t_threads < t_processes, (
        f"kernel@threads:4 ({t_threads:.3f}s) did not beat "
        f"kernel@processes:4 ({t_processes:.3f}s) on a {cpus}-CPU box"
    )


@bench_smoke
def test_engine_smoke_throughput(cc_setup):
    """Seconds-long tier-1 slice: mixed-fault table path >= 2x.

    A deliberately loose floor on a small scenario count — it exists
    to fail fast when the fast path regresses (e.g. scenarios start
    leaking to the oracle), not to measure peak throughput.
    """
    app, _, tree = cc_setup
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=400, fault_counts=[0, 1, 2], seed=23
    )
    by_reference, t_ref = _time_engine(evaluator, tree, "reference")
    by_batch, t_bat = _time_engine(evaluator, tree, "batched")
    for faults in (0, 1, 2):
        assert (
            by_reference[faults].utilities == by_batch[faults].utilities
        )
        assert by_batch[faults].fallbacks == 0
    _report("cc/ftqs-8/smoke", 400, 3, t_ref, t_bat)
    assert t_bat * 2.0 <= t_ref, (
        f"smoke slice speedup collapsed to {t_ref / t_bat:.1f}x "
        "(floor: 2x) — fast-path coverage regression?"
    )


@bench_smoke
def test_kernel_smoke_throughput(cc_setup, kernel_ready):
    """Seconds-long tier-1 kernel slice: >= 2x over batched, identical.

    Exists to fail fast when the generated-C path regresses — either
    its speed (scenarios leaking to the oracle residual, a codegen
    pessimization) or its bit identity with the batched engine.
    """
    app, _, tree = cc_setup
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=400, fault_counts=[0, 1, 2], seed=23
    )
    evaluator.evaluate(tree, execution="batched")  # pack once, warm caches
    by_batch, t_bat = _time_engine(evaluator, tree, "batched", repack=False)
    by_kernel, t_ker = _time_engine(evaluator, tree, "kernel", repack=False)
    for faults in (0, 1, 2):
        assert by_batch[faults].utilities == by_kernel[faults].utilities
        assert by_kernel[faults].fallbacks == 0
    print(
        f"\n[cc/ftqs-8/smoke/kernel] batched {400 * 3 / t_bat:,.0f} "
        f"scen/s ({t_bat:.3f}s)  kernel {400 * 3 / t_ker:,.0f} scen/s "
        f"({t_ker:.3f}s)  speedup {t_bat / t_ker:.1f}x"
    )
    assert t_ker * 2.0 <= t_bat, (
        f"kernel smoke slice only {t_bat / t_ker:.1f}x over batched "
        "(floor: 2x) — generated-C path regression?"
    )
