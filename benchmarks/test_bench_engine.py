"""Throughput benchmark: reference loop vs batched engine.

Measures scenarios/second of both Monte-Carlo engines on the
cruise-controller workload (the paper's real-life case study) over the
*same* scenario sets, asserts the results are bit-identical, and
asserts speedup floors that keep the paper's 20,000-scenario
``--full-scale`` runs practical: 5x on the no-fault axis and 3x on
every mixed-fault axis (k = 1, 2), where faulted soft processes
resolve against the compiled §2.2 decision tables instead of the
reference loop.  A persistent-pool ``compare()`` benchmark checks that
``jobs=4`` beats ``jobs=1`` on a multi-plan workload (asserted only
when the box actually has ≥ 4 CPUs).

Every measured axis is appended to ``BENCH_engine.json`` at the repo
root — a trajectory artifact: one entry per bench run, so throughput
history survives across sessions.

A tier-1 smoke slice is marked ``bench_smoke``
(``pytest -m bench_smoke``): a seconds-long mixed-fault run with a
loose floor, so fast-path regressions fail fast without
``--full-scale``.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.evaluation.montecarlo import MonteCarloEvaluator
from repro.quasistatic.ftqs import FTQSConfig, ftqs
from repro.scheduling.ftss import ftss
from repro.workloads.cruise import cruise_controller

bench_smoke = pytest.mark.bench_smoke

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


@pytest.fixture(scope="module")
def cc_setup():
    app = cruise_controller()
    root = ftss(app)
    assert root is not None
    tree = ftqs(app, root, FTQSConfig(max_schedules=8))
    return app, root, tree


@pytest.fixture(scope="module")
def trajectory():
    """Collect per-axis rows; append one run entry to the artifact."""
    rows = []
    yield rows
    if not rows:
        return
    history = []
    if _ARTIFACT.exists():
        try:
            history = json.loads(_ARTIFACT.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "cpu_count": os.cpu_count(),
            "axes": rows,
        }
    )
    _ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def _time_engine(evaluator, plan, engine, rounds=2):
    """Best-of-``rounds`` wall time (min damps scheduler noise on
    loaded boxes).  The batch cache is cleared before every batched
    round so each one pays the full end-to-end cost, packing included."""
    best = None
    outcomes = None
    for _ in range(rounds):
        evaluator._batches.clear()
        start = time.perf_counter()
        outcomes = evaluator.evaluate(plan, engine=engine)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return outcomes, best


def _report(label, n_scenarios, n_axes, t_ref, t_bat, rows=None):
    total = n_scenarios * n_axes
    print(
        f"\n[{label}] reference {total / t_ref:,.0f} scen/s "
        f"({t_ref:.3f}s)  batched {total / t_bat:,.0f} scen/s "
        f"({t_bat:.3f}s)  speedup {t_ref / t_bat:.1f}x"
    )
    if rows is not None:
        rows.append(
            {
                "label": label,
                "n_scenarios": total,
                "reference_scen_per_s": total / t_ref,
                "batched_scen_per_s": total / t_bat,
                "speedup": t_ref / t_bat,
            }
        )


def test_engine_speedup_no_fault_axis(cc_setup, full_scale, trajectory):
    """>= 5x scenarios/sec on the cruise controller, 2,000 scenarios."""
    app, root, tree = cc_setup
    n = 20000 if full_scale else 2000
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[0], seed=11
    )
    for plan_label, plan in (("ftss", root), ("ftqs-8", tree)):
        by_reference, t_ref = _time_engine(evaluator, plan, "reference")
        by_batch, t_bat = _time_engine(evaluator, plan, "batched")
        assert by_reference[0].utilities == by_batch[0].utilities
        assert by_reference[0].mean_utility == by_batch[0].mean_utility
        assert by_batch[0].fallbacks == 0
        _report(f"cc/{plan_label}/f=0", n, 1, t_ref, t_bat, trajectory)
        speedup = t_ref / t_bat
        assert speedup >= 5.0, (
            f"batched engine only {speedup:.1f}x over the reference "
            f"loop on {plan_label} (floor: 5x)"
        )


@pytest.mark.parametrize("faults", [1, 2])
def test_engine_speedup_single_fault_axes(
    cc_setup, full_scale, trajectory, faults
):
    """Mixed-fault axes (k = 1, 2): >= 3x via the §2.2 tables.

    Before the compiled decision tables these axes crawled (~1.3x):
    every soft-faulted scenario took the pure-Python oracle.  The
    floor pins the table path's gain.
    """
    app, _, tree = cc_setup
    n = 20000 if full_scale else 2000
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[faults], seed=11
    )
    by_reference, t_ref = _time_engine(evaluator, tree, "reference")
    by_batch, t_bat = _time_engine(evaluator, tree, "batched")
    assert by_reference[faults].utilities == by_batch[faults].utilities
    assert by_batch[faults].fallbacks == 0
    _report(f"cc/ftqs-8/f={faults}", n, 1, t_ref, t_bat, trajectory)
    speedup = t_ref / t_bat
    assert speedup >= 3.0, (
        f"batched engine only {speedup:.1f}x over the reference loop "
        f"on the f={faults} axis (floor: 3x)"
    )


def test_engine_speedup_mixed_fault_axes(cc_setup, full_scale, trajectory):
    """Combined 0/1/2-fault run: identical results, >= 3x overall."""
    app, _, tree = cc_setup
    n = 20000 if full_scale else 1000
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[0, 1, 2], seed=11
    )
    by_reference, t_ref = _time_engine(evaluator, tree, "reference")
    by_batch, t_bat = _time_engine(evaluator, tree, "batched")
    for faults in (0, 1, 2):
        assert (
            by_reference[faults].utilities == by_batch[faults].utilities
        )
        assert by_batch[faults].fallbacks == 0
    _report("cc/ftqs-8/f=0,1,2", n, 3, t_ref, t_bat, trajectory)
    speedup = t_ref / t_bat
    assert speedup >= 3.0, (
        f"batched engine only {speedup:.1f}x on the mixed axes "
        "(floor: 3x)"
    )


def test_parallel_compare_workload(cc_setup, full_scale, trajectory):
    """Per-plan compare(): jobs=4 must beat jobs=1 (on a >= 4-CPU box).

    The workload the persistent pool exists for: many small per-plan
    evaluations over the same scenario sets.  On boxes without 4 CPUs
    the timing is reported but not asserted — process parallelism
    cannot win without cores.
    """
    app, root, tree = cc_setup
    plans = {
        "ftss": root,
        "ftqs-2": ftqs(app, root, FTQSConfig(max_schedules=2)),
        "ftqs-4": ftqs(app, root, FTQSConfig(max_schedules=4)),
        "ftqs-8": tree,
    }
    n = 20000 if full_scale else 2000
    with MonteCarloEvaluator(
        app, n_scenarios=n, fault_counts=[0, 1, 2], seed=11,
        engine="batched",
    ) as evaluator:
        start = time.perf_counter()
        serial = evaluator.compare(plans)
        t_serial = time.perf_counter() - start

        parallel = evaluator.parallel("batched", 4)
        parallel.evaluate(root)  # warm the pool outside the timing
        start = time.perf_counter()
        sharded = parallel.compare(plans)
        t_sharded = time.perf_counter() - start

    for name in plans:
        for faults in (0, 1, 2):
            assert (
                serial[name][faults].utilities
                == sharded[name][faults].utilities
            )
    total = n * 3 * len(plans)
    print(
        f"\n[cc/compare x{len(plans)}] jobs=1 {total / t_serial:,.0f} "
        f"scen/s ({t_serial:.3f}s)  jobs=4 {total / t_sharded:,.0f} "
        f"scen/s ({t_sharded:.3f}s)"
    )
    trajectory.append(
        {
            "label": "cc/compare-jobs",
            "n_scenarios": total,
            "jobs1_scen_per_s": total / t_serial,
            "jobs4_scen_per_s": total / t_sharded,
            "speedup": t_serial / t_sharded,
        }
    )
    # sched_getaffinity respects cgroup/affinity limits; cpu_count()
    # reports the host and would assert on throttled containers.
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert t_sharded < t_serial, (
            f"jobs=4 ({t_sharded:.3f}s) did not beat jobs=1 "
            f"({t_serial:.3f}s) on a {cpus}-CPU box"
        )


@bench_smoke
def test_engine_smoke_throughput(cc_setup):
    """Seconds-long tier-1 slice: mixed-fault table path >= 2x.

    A deliberately loose floor on a small scenario count — it exists
    to fail fast when the fast path regresses (e.g. scenarios start
    leaking to the oracle), not to measure peak throughput.
    """
    app, _, tree = cc_setup
    evaluator = MonteCarloEvaluator(
        app, n_scenarios=400, fault_counts=[0, 1, 2], seed=23
    )
    by_reference, t_ref = _time_engine(evaluator, tree, "reference")
    by_batch, t_bat = _time_engine(evaluator, tree, "batched")
    for faults in (0, 1, 2):
        assert (
            by_reference[faults].utilities == by_batch[faults].utilities
        )
        assert by_batch[faults].fallbacks == 0
    _report("cc/ftqs-8/smoke", 400, 3, t_ref, t_bat)
    assert t_bat * 2.0 <= t_ref, (
        f"smoke slice speedup collapsed to {t_ref / t_bat:.1f}x "
        "(floor: 2x) — fast-path coverage regression?"
    )
