#!/usr/bin/env python
"""Bench-trajectory regression gate.

The benchmark suites append one entry per run to the ``BENCH_*.json``
trajectory artifacts at the repo root (``BENCH_engine.json`` from
``benchmarks/test_bench_engine.py``, ``BENCH_synthesis.json`` from
``benchmarks/test_bench_synthesis.py``).  This script parses those
trajectories and fails (exit code 1) when an *asserted-floor* metric
of the freshly appended entry regressed more than ``--threshold``
(default 20%) against the prior trajectory baseline for the same axis
label.

The default baseline is the **median of the last** ``--window``
**prior entries** (not the all-time best): trajectory entries come
from heterogeneous machines and load conditions, and measured
same-box run-to-run noise on the speedup axes already exceeds 20% —
a best-ever ratchet would flap and, once one lucky-fast entry lands,
never decay.  ``--baseline best`` selects the strict all-time-best
comparison for hand audits.

An asserted-floor metric is the ``speedup`` of an axis whose label
contains neither ``"jobs"`` nor ``"threads"`` — that covers the
engine axes (``cc/ftqs-8/f=N``) and the generated-C kernel axes
(``cc/ftqs-8/f=N/kernel-vs-ref`` and ``.../kernel-vs-batched``).
The CPU-bound comparison axes (``cc/compare-jobs``,
``cc/compare-kernel-threads``, ``table1/jobs4-vs-jobs1``) depend on
how many CPUs the box has and are gated inside the benches
themselves, so a trajectory comparison across heterogeneous machines
would be noise, not signal: they are *skipped*, never gated, and any
historical comparison row recorded on a box with fewer than
``MIN_JOBS_CPUS`` CPUs (each row carries the ``cpu_count`` it was
measured on) is dropped from baselines outright.

Usage (also wired into CI)::

    python benchmarks/check_trajectory.py BENCH_engine.json
    python benchmarks/check_trajectory.py BENCH_*.json --threshold 0.25

Exit codes: 0 = no regression (or not enough history), 1 = regression
detected, 2 = missing, unreadable or malformed trajectory file.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: The metric asserted with a floor by the bench suites.
FLOOR_METRIC = "speedup"

#: Below this CPU count a CPU-bound comparison measurement (jobs or
#: threads) is noise — parallelism cannot win without cores — and is
#: skipped.
MIN_JOBS_CPUS = 4


def is_floor_axis(label: str) -> bool:
    """True when ``label``'s speedup is floor-asserted by the benches.

    Axes comparing worker counts or sharding modes (``jobs`` or
    ``threads`` in the label) are CPU-bound and gated inside the
    benches themselves, never by the trajectory.
    """
    return "jobs" not in label and "threads" not in label


def is_skipped_row(label: str, row: dict) -> bool:
    """True for CPU-bound comparison rows measured on a too-small box.

    Older entries predate the per-axis ``cpu_count`` field; those are
    kept (the benches of that era only appended the row after passing
    their own >= 4-CPU gate).
    """
    if is_floor_axis(label):
        return False
    cpus = row.get("cpu_count")
    return isinstance(cpus, int) and cpus < MIN_JOBS_CPUS


def prior_values(history: List[dict], label: str) -> List[float]:
    """All prior ``FLOOR_METRIC`` values for ``label``, oldest first."""
    values = []
    for entry in history:
        for row in entry.get("axes", []):
            if row.get("label") != label or is_skipped_row(label, row):
                continue
            value = row.get(FLOOR_METRIC)
            if isinstance(value, (int, float)):
                values.append(float(value))
    return values


def baseline_of(
    history: List[dict], label: str, mode: str, window: int
) -> Tuple[float, str] | None:
    """The comparison baseline for ``label``: ``(value, description)``.

    ``median`` (the default) takes the median of the last ``window``
    prior values — robust to one lucky-fast outlier entry; ``best``
    takes the all-time maximum.  Returns ``None`` when no prior entry
    measured the axis (a new axis has no baseline).
    """
    values = prior_values(history, label)
    if not values:
        return None
    if mode == "best":
        return max(values), f"best of {len(values)}"
    recent = values[-window:]
    return (
        statistics.median(recent),
        f"median of last {len(recent)}",
    )


def check_file(
    path: Path, threshold: float, mode: str, window: int
) -> List[str]:
    """Regression messages for one trajectory file (empty = clean)."""
    try:
        history = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        print(f"error: cannot parse trajectory {path}: {error}", file=sys.stderr)
        raise SystemExit(2) from error
    if not isinstance(history, list) or not all(
        isinstance(entry, dict) for entry in history
    ):
        print(
            f"error: {path} is not a list of trajectory entries",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if len(history) < 2:
        print(f"{path.name}: {len(history)} entry(ies), nothing to compare")
        return []
    latest = history[-1]
    prior = history[:-1]
    failures: List[str] = []
    checked = 0
    for row in latest.get("axes", []):
        label = row.get("label")
        value = row.get(FLOOR_METRIC)
        if not isinstance(label, str):
            continue
        if not is_floor_axis(label):
            cpus = row.get("cpu_count")
            where = f"on a {cpus}-CPU box" if cpus else "no cpu_count"
            print(
                f"{path.name}: {label}: CPU-bound comparison axis "
                f"({where}), skipped — gated in the bench itself"
            )
            continue
        if not isinstance(value, (int, float)):
            continue
        result = baseline_of(prior, label, mode, window)
        if result is None:
            print(f"{path.name}: {label}: new axis, no prior baseline")
            continue
        baseline, description = result
        checked += 1
        floor = baseline * (1.0 - threshold)
        status = "ok" if value >= floor else "REGRESSED"
        print(
            f"{path.name}: {label}: {FLOOR_METRIC} {value:.2f}x vs "
            f"{baseline:.2f}x ({description}, floor {floor:.2f}x) {status}"
        )
        if value < floor:
            failures.append(
                f"{path.name}: {label}: {FLOOR_METRIC} {value:.2f}x fell "
                f">{threshold:.0%} below the prior {description} "
                f"baseline {baseline:.2f}x"
            )
    if checked == 0:
        print(f"{path.name}: no floor-asserted axes in the latest entry")
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a floor-asserted bench metric regressed "
        "against the prior trajectory baseline (median of the last "
        "--window entries by default, --baseline best for the "
        "all-time-best ratchet)"
    )
    parser.add_argument(
        "trajectories",
        nargs="+",
        type=Path,
        help="BENCH_*.json trajectory files to check",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="allowed fractional regression vs the prior baseline "
        "(default: 0.2 = 20%%)",
    )
    parser.add_argument(
        "--baseline",
        choices=("median", "best"),
        default="median",
        help="baseline: median of the last --window prior entries "
        "(default; robust to outlier runs) or the all-time best",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=8,
        help="how many recent prior entries feed the median baseline "
        "(default: 8)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.threshold < 1.0:
        parser.error("--threshold must be in [0, 1)")
    if args.window < 1:
        parser.error("--window must be >= 1")
    missing = [path for path in args.trajectories if not path.exists()]
    if missing:
        # Fail closed: a renamed/deleted trajectory must not silently
        # disable the gate (CI names exactly the files it expects).
        for path in missing:
            print(f"error: trajectory {path} does not exist", file=sys.stderr)
        return 2
    failures: Dict[Path, List[str]] = {}
    for path in args.trajectories:
        messages = check_file(path, args.threshold, args.baseline, args.window)
        if messages:
            failures[path] = messages
    if failures:
        print("\nbench-trajectory regressions:", file=sys.stderr)
        for messages in failures.values():
            for message in messages:
                print(f"  {message}", file=sys.stderr)
        return 1
    print("trajectory gate: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
