"""Benchmark options.

``--full-scale`` switches every experiment bench to the paper's §6
parameters (450 applications, 20,000 scenarios per fault count, the
full Table 1 M sweep).  The default scales are chosen so the whole
benchmark suite finishes in minutes while preserving the paper's
qualitative shapes.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench_smoke: seconds-long engine-throughput slice safe for "
        "tier 1 (select with `pytest -m bench_smoke`)",
    )


def pytest_addoption(parser):
    parser.addoption(
        "--full-scale",
        action="store_true",
        default=False,
        help="run experiment benches at the paper's full §6 scale (slow)",
    )


@pytest.fixture(scope="session")
def full_scale(request):
    return request.config.getoption("--full-scale")
