"""Design-time throughput benchmark: reference FTQS vs the fast
synthesis engine.

Measures tree-construction wall time on the Table 1 synthesis axis —
a 30-process, k = 3 application swept over the paper's tree sizes M —
asserting the trees are identical and that the fast engine clears a
**3x single-job floor** on the sweep aggregate (measured ~4-6x: the
memoized tail scheduler and the incremental similarity pay off more
the larger M gets).  A ``jobs=4`` axis exercises the parallel
candidate layer (equality always asserted; the speed comparison only
on boxes with >= 4 CPUs, like the engine bench).

Every measured axis is appended to ``BENCH_synthesis.json`` at the
repo root — a trajectory artifact mirroring ``BENCH_engine.json``.

A tier-1 smoke slice is marked ``bench_smoke``: a seconds-long cruise
controller build with a loose 2x floor, so synthesis regressions fail
fast without ``--synthesis-full``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.quasistatic.ftqs import FTQSConfig, ftqs_reference
from repro.quasistatic.synthesis import SynthesisEngine, ftqs_fast
from repro.scheduling.ftss import ftss
from repro.workloads.cruise import cruise_controller
from repro.workloads.suite import WorkloadSpec, generate_application

# One tree-identity definition for the whole repo: the differential
# suite owns it (the repo root is on sys.path via the root conftest).
from tests.test_synthesis_differential import assert_trees_identical

bench_smoke = pytest.mark.bench_smoke

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_synthesis.json"


@pytest.fixture(scope="module")
def table1_app():
    """One Table 1-style application (30 processes, half soft, k=3)."""
    rng = np.random.default_rng(2008)
    spec = WorkloadSpec(n_processes=30, soft_ratio=0.5, k=3, mu=15)
    while True:
        app = generate_application(spec, rng=rng)
        root = ftss(app)
        if root is not None:
            return app, root


@pytest.fixture(scope="module")
def trajectory():
    """Collect per-axis rows; append one run entry to the artifact."""
    rows = []
    yield rows
    if not rows:
        return
    history = []
    if _ARTIFACT.exists():
        try:
            history = json.loads(_ARTIFACT.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "cpu_count": os.cpu_count(),
            "axes": rows,
        }
    )
    _ARTIFACT.write_text(json.dumps(history, indent=2) + "\n")


def _best_of(builder, rounds=3):
    """Best-of-``rounds`` wall time; every round rebuilds from cold
    state (a fresh engine per call), so memo warm-up cannot flatter
    the measurement.  Three rounds, not two: a single descheduling
    spike on a 1-CPU box routinely survives two rounds and trips the
    ±20% trajectory gate."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = builder()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_synthesis_speedup_table1_axis(table1_app, synthesis_full, trajectory):
    """Table 1 M sweep: identical trees, >= 3x aggregate single-job."""
    app, root = table1_app
    tree_sizes = (2, 8, 13, 23, 34, 79, 89) if synthesis_full else (2, 8, 34, 89)
    t_ref_total = 0.0
    t_fast_total = 0.0
    for m in tree_sizes:
        config = FTQSConfig(max_schedules=m)
        reference, t_ref = _best_of(lambda: ftqs_reference(app, root, config))
        fast, t_fast = _best_of(lambda: ftqs_fast(app, root, config))
        assert_trees_identical(reference, fast, f"bench M={m}")
        t_ref_total += t_ref
        t_fast_total += t_fast
        print(
            f"\n[synthesis/table1/M={m}] reference {t_ref:.3f}s  "
            f"fast {t_fast:.3f}s  speedup {t_ref / t_fast:.1f}x"
        )
        trajectory.append(
            {
                "label": f"table1/M={m}",
                "reference_seconds": t_ref,
                "fast_seconds": t_fast,
                "speedup": t_ref / t_fast,
            }
        )
    speedup = t_ref_total / t_fast_total
    print(
        f"\n[synthesis/table1/aggregate] reference {t_ref_total:.3f}s  "
        f"fast {t_fast_total:.3f}s  speedup {speedup:.1f}x"
    )
    trajectory.append(
        {
            "label": "table1/aggregate",
            "reference_seconds": t_ref_total,
            "fast_seconds": t_fast_total,
            "speedup": speedup,
        }
    )
    assert speedup >= 3.0, (
        f"fast synthesis only {speedup:.1f}x over the reference on the "
        f"Table 1 axis (floor: 3x)"
    )


def test_synthesis_parallel_candidate_layer(table1_app, trajectory):
    """jobs=4 candidate sharding: identical tree; faster on >= 4 CPUs.

    The pool is spawned outside the timed window (the persistent-pool
    amortization a sweep enjoys); each round still builds with cold
    memos via a fresh engine.
    """
    app, root = table1_app
    config = FTQSConfig(max_schedules=34)

    def build_jobs4():
        with SynthesisEngine(app, config, jobs=4) as engine:
            engine._ensure_pool()  # spawn outside the timed build
            start = time.perf_counter()
            tree = engine.build(root)
            return tree, time.perf_counter() - start

    t_serial = None
    t_sharded = None
    serial = sharded = None
    for _ in range(2):
        serial, elapsed = _best_of(
            lambda: ftqs_fast(app, root, config), rounds=1
        )
        t_serial = elapsed if t_serial is None else min(t_serial, elapsed)
        sharded, elapsed = build_jobs4()
        t_sharded = elapsed if t_sharded is None else min(t_sharded, elapsed)
    assert_trees_identical(serial, sharded, "bench jobs=4")
    print(
        f"\n[synthesis/table1/jobs] jobs=1 {t_serial:.3f}s  "
        f"jobs=4 {t_sharded:.3f}s"
    )
    # sched_getaffinity respects cgroup/affinity limits; cpu_count()
    # reports the host and would assert on throttled containers.
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    trajectory.append(
        {
            "label": "table1/jobs4-vs-jobs1",
            "jobs1_seconds": t_serial,
            "jobs4_seconds": t_sharded,
            "cpu_count": cpus,
            "speedup": t_serial / t_sharded,
        }
    )
    if cpus >= 4:
        assert t_sharded < t_serial, (
            f"jobs=4 ({t_sharded:.3f}s) did not beat jobs=1 "
            f"({t_serial:.3f}s) on a {cpus}-CPU box"
        )


@bench_smoke
def test_synthesis_smoke_throughput():
    """Seconds-long tier-1 slice: cruise-controller build >= 2x.

    A deliberately loose floor — it exists to fail fast when the fast
    path regresses (memo broken, vectorized partitioning bypassed),
    not to measure peak speedup.
    """
    app = cruise_controller()
    root = ftss(app)
    assert root is not None
    config = FTQSConfig(max_schedules=8)
    reference, t_ref = _best_of(lambda: ftqs_reference(app, root, config))
    fast, t_fast = _best_of(lambda: ftqs_fast(app, root, config))
    assert_trees_identical(reference, fast, "smoke cc M=8")
    print(
        f"\n[synthesis/cc/smoke] reference {t_ref:.3f}s  fast {t_fast:.3f}s  "
        f"speedup {t_ref / t_fast:.1f}x"
    )
    assert t_fast * 2.0 <= t_ref, (
        f"smoke slice speedup collapsed to {t_ref / t_fast:.1f}x "
        "(floor: 2x) — fast-path regression?"
    )
