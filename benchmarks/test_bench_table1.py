"""Bench: regenerate Table 1 — utility (normalized to FTSS) and
construction runtime as the quasi-static tree size M grows.

Paper shape: utility rises steeply for the first few nodes (+11% at
M = 2, +21% at M = 8 in the no-fault column), then saturates (+26% at
M = 89), while the construction runtime keeps growing with M.
"""

import pytest

from repro.evaluation.experiments.table1 import (
    Table1Config,
    format_table1,
    run_table1,
)

DEFAULT = Table1Config(
    tree_sizes=(1, 2, 8, 13, 23, 34),
    n_apps=3,
    n_scenarios=100,
)


@pytest.fixture(scope="module")
def config(request):
    if request.config.getoption("--full-scale"):
        return Table1Config.paper_scale()
    return DEFAULT


def test_table1(benchmark, config):
    rows = benchmark.pedantic(
        run_table1, args=(config,), rounds=1, iterations=1
    )
    print()
    print(format_table1(rows))

    assert rows[0].nodes == 1
    assert rows[0].utility_percent[0] == pytest.approx(100.0)
    # Utility never decreases along the sweep (paired scenarios,
    # switch-only-if-better), and the largest tree strictly improves
    # over the single f-schedule.
    for earlier, later in zip(rows, rows[1:]):
        assert (
            later.utility_percent[0] >= earlier.utility_percent[0] - 1.0
        )
    assert rows[-1].utility_percent[0] > 100.0
    # Construction cost grows with M (the paper's runtime column).
    assert rows[-1].runtime_seconds >= rows[0].runtime_seconds
