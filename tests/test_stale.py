"""Stale-value coefficient tests — the §2.1 formula and its worked
examples."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.model.graph import ProcessGraph
from repro.model.process import hard_process, soft_process
from repro.utility.functions import ConstantUtility
from repro.utility.stale import (
    degraded_utility,
    stale_coefficient,
    stale_coefficients,
)


def _soft(name):
    return soft_process(name, 1, 2, ConstantUtility(10))


def _chain_graph():
    """P1 -> P3, P2 -> P3, P3 -> P4 (the paper's §2.1 example)."""
    return ProcessGraph(
        [_soft("P1"), _soft("P2"), _soft("P3"), _soft("P4")],
        [("P1", "P3"), ("P2", "P3"), ("P3", "P4")],
    )


def test_paper_example_alpha3_is_two_thirds():
    # P1 dropped, P2 and P3 executed: α3 = (1 + 0 + 1) / (1 + 2) = 2/3.
    graph = _chain_graph()
    assert stale_coefficient(graph, "P3", dropped=["P1"]) == pytest.approx(2 / 3)


def test_paper_example_alpha4_is_five_sixths():
    # P4, sole successor of P3: α4 = (1 + 2/3) / (1 + 1) = 5/6.
    graph = _chain_graph()
    assert stale_coefficient(graph, "P4", dropped=["P1"]) == pytest.approx(5 / 6)


def test_no_drops_gives_all_ones():
    graph = _chain_graph()
    alphas = stale_coefficients(graph, dropped=[])
    assert all(a == 1.0 for a in alphas.values())


def test_dropped_process_has_zero_alpha():
    graph = _chain_graph()
    assert stale_coefficient(graph, "P1", dropped=["P1"]) == 0.0


def test_source_process_alpha_is_one():
    graph = _chain_graph()
    assert stale_coefficient(graph, "P2", dropped=["P1"]) == 1.0


def test_hard_predecessor_counts_as_fresh():
    graph = ProcessGraph(
        [hard_process("H", 1, 2, 10), _soft("S")],
        [("H", "S")],
    )
    assert stale_coefficient(graph, "S", dropped=[]) == 1.0


def test_dropping_hard_process_rejected():
    graph = ProcessGraph(
        [hard_process("H", 1, 2, 10), _soft("S")],
        [("H", "S")],
    )
    with pytest.raises(ModelError):
        stale_coefficients(graph, dropped=["H"])


def test_unknown_dropped_name_rejected():
    graph = _chain_graph()
    with pytest.raises(ModelError):
        stale_coefficients(graph, dropped=["nope"])


def test_degraded_utility_paper_arithmetic():
    graph = _chain_graph()
    # All soft utilities are constant 10; P1 dropped.
    value = degraded_utility(
        graph,
        completion_times={"P2": 5, "P3": 9, "P4": 13},
        dropped=["P1"],
    )
    assert value == pytest.approx(10 + (2 / 3) * 10 + (5 / 6) * 10)


def test_degraded_utility_rejects_overlap():
    graph = _chain_graph()
    with pytest.raises(ModelError):
        degraded_utility(graph, {"P1": 5}, dropped=["P1"])


def test_degraded_utility_rejects_missing_times():
    graph = _chain_graph()
    with pytest.raises(ModelError):
        degraded_utility(graph, {"P2": 5}, dropped=["P1"])


@given(drop_mask=st.lists(st.booleans(), min_size=4, max_size=4))
def test_alphas_always_in_unit_interval(drop_mask):
    graph = _chain_graph()
    names = ["P1", "P2", "P3", "P4"]
    dropped = [n for n, d in zip(names, drop_mask) if d]
    alphas = stale_coefficients(graph, dropped)
    assert all(0.0 <= a <= 1.0 for a in alphas.values())
    for name in dropped:
        assert alphas[name] == 0.0


@given(
    n=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_alpha_propagation_monotone(n, seed):
    """Dropping more processes never increases any coefficient."""
    import numpy as np

    rng = np.random.default_rng(seed)
    procs = [_soft(f"P{i}") for i in range(n)]
    edges = [
        (f"P{i}", f"P{j}")
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < 0.4
    ]
    graph = ProcessGraph(procs, edges)
    names = [p.name for p in procs]
    smaller = [nm for nm in names[: n // 2] if rng.random() < 0.5]
    larger = smaller + [names[-1]] if names[-1] not in smaller else smaller
    a_small = stale_coefficients(graph, smaller)
    a_large = stale_coefficients(graph, larger)
    for name in names:
        assert a_large[name] <= a_small[name] + 1e-12
