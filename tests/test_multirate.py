"""End-to-end tests of multi-rate applications (hyper-period merging
feeding the full synthesis + simulation pipeline)."""

import pytest

from repro.faults import ScenarioSampler, average_case_scenario
from repro.model import (
    ProcessGraph,
    application_from_graphs,
    hard_process,
    soft_process,
)
from repro.quasistatic import schedule_application
from repro.runtime import simulate
from repro.scheduling import ftss
from repro.utility import StepUtility


@pytest.fixture
def multirate_app():
    """A 100 ms control graph plus a 200 ms logging graph."""
    g1 = ProcessGraph(
        [
            hard_process("H", 10, 25, 90),
            soft_process(
                "S", 10, 20, StepUtility(30, [(60, 10), (120, 0)])
            ),
        ],
        [("H", "S")],
        name="fast",
        period=100,
    )
    g2 = ProcessGraph(
        [
            soft_process(
                "L", 20, 40, StepUtility(50, [(150, 20), (200, 0)])
            )
        ],
        [],
        name="slow",
        period=200,
    )
    return application_from_graphs([g1, g2], k=1, mu=5)


class TestMergedStructure:
    def test_hyperperiod_and_instances(self, multirate_app):
        assert multirate_app.period == 200
        names = set(multirate_app.graph.process_names)
        assert names == {"H#0", "S#0", "H#1", "S#1", "L#0"}

    def test_second_instance_deadline_shifted(self, multirate_app):
        assert multirate_app.process("H#0").deadline == 90
        assert multirate_app.process("H#1").deadline == 190

    def test_instance_chaining_enforced(self, multirate_app):
        graph = multirate_app.graph
        # Instance 1 of the fast graph cannot start before instance 0
        # finished (chaining edge from the previous sink).
        assert "H#1" in graph.descendants("S#0")

    def test_shifted_utility_of_second_instance(self, multirate_app):
        s1 = multirate_app.process("S#1")
        s0 = multirate_app.process("S#0")
        # Released 100 ticks later: same value, shifted in time.
        assert s1.utility_at(150) == s0.utility_at(50)
        assert s1.utility_at(170) == s0.utility_at(70)


class TestMergedScheduling:
    def test_ftss_schedules_all_instances(self, multirate_app):
        schedule = ftss(multirate_app)
        assert schedule is not None
        assert set(schedule.order) == set(
            multirate_app.graph.process_names
        )
        assert schedule.is_schedulable()
        # Both hard activations keep their (shifted) deadlines.
        completions = schedule.worst_case_completions()
        assert completions["H#0"] <= 90
        assert completions["H#1"] <= 190

    def test_instances_execute_in_order(self, multirate_app):
        schedule = ftss(multirate_app)
        result = simulate(
            multirate_app, schedule, average_case_scenario(multirate_app)
        )
        assert result.met_all_hard_deadlines
        assert (
            result.completion_times["H#0"] < result.completion_times["H#1"]
        )

    def test_quasistatic_pipeline(self, multirate_app):
        result = schedule_application(multirate_app, max_schedules=4)
        sampler = ScenarioSampler(multirate_app, seed=2)
        for faults in (0, 1):
            for scenario in sampler.sample_many(25, faults=faults):
                outcome = simulate(multirate_app, result.tree, scenario)
                assert outcome.met_all_hard_deadlines
                assert outcome.makespan <= multirate_app.period
