"""Tests for the markdown synthesis report."""

import pytest

from repro.analysis.report import synthesis_report
from repro.errors import UnschedulableError


class TestSynthesisReport:
    @pytest.fixture(scope="class")
    def report(self, request):
        from repro.examples_support import paper_fig1_application

        return synthesis_report(
            paper_fig1_application(), max_schedules=4, n_scenarios=60
        )

    def test_artifacts_present(self, report):
        assert report.root is not None
        assert report.tree is not None
        assert "FTQS" in report.utilities
        assert "FTSS" in report.utilities

    def test_markdown_sections(self, report):
        text = report.to_markdown()
        assert "# Schedule synthesis report" in text
        assert "## Root f-schedule (FTSS)" in text
        assert "## Quasi-static tree (FTQS)" in text
        assert "## Evaluation" in text
        assert "P1" in text

    def test_markdown_table_rows(self, report):
        text = report.to_markdown()
        assert "| FTQS |" in text
        assert "| FTSS |" in text

    def test_arcs_listed(self, report):
        text = report.to_markdown()
        if sum(len(n.arcs) for n in report.tree.nodes()):
            assert "after `" in text

    def test_unschedulable_raises(self):
        from repro.model.application import Application
        from repro.model.graph import ProcessGraph
        from repro.model.process import hard_process

        graph = ProcessGraph(
            [hard_process("H", 90, 120, 125)], [], period=400
        )
        app = Application(graph, period=400, k=2, mu=10)
        with pytest.raises(UnschedulableError):
            synthesis_report(app)

    def test_overload_annotation(self, cc_app):
        report = synthesis_report(cc_app, max_schedules=2, n_scenarios=30)
        assert "overloaded" in report.to_markdown()
