"""Golden tests: every worked numeric example of the paper.

Each test names the figure/section it reproduces; together they pin
the implementation to the paper's semantics (utility model, stale
values, recovery arithmetic, static-vs-quasi-static behaviour).
"""

import pytest

from repro.examples_support import (
    paper_fig1_application,
    paper_fig2_utilities,
    paper_fig3_recovery,
    paper_fig8_application,
)
from repro.faults.injection import average_case_scenario, scenario_with_times
from repro.faults.model import FaultScenario
from repro.quasistatic.ftqs import FTQSConfig, ftqs
from repro.runtime.online import simulate
from repro.scheduling.dropping import dropping_gain
from repro.scheduling.fschedule import (
    FSchedule,
    ScheduledEntry,
    shared_recovery_demand,
)
from repro.scheduling.ftss import ftss
from repro.scheduling.schedulability import candidate_schedule


class TestFig2UtilityExamples:
    """§2.1: Ua(60) = 20; Ub(50) + Uc(110) = 15 + 10 = 25."""

    def test_panel_a(self):
        fns = paper_fig2_utilities()
        assert fns["Ua"](60) == 20

    def test_panel_b(self):
        fns = paper_fig2_utilities()
        assert fns["Ub"](50) + fns["Uc"](110) == 25


class TestFig3Recovery:
    """§2.2: P1 (30 ms) with k = 2 and µ = 5 occupies 100 ms worst
    case: three executions plus two recovery overheads."""

    def test_worst_case_occupation(self):
        wcet, mu, k = paper_fig3_recovery()
        assert (k + 1) * wcet + k * mu == 100
        assert wcet + shared_recovery_demand([(wcet + mu, k)], k) == 100


class TestSection21StaleValues:
    """§2.1 worked α propagation (tested in depth in test_stale)."""

    def test_fig8_alpha_two_thirds(self):
        app = paper_fig8_application()
        from repro.utility.stale import stale_coefficient

        assert stale_coefficient(
            app.graph, "P4", dropped=["P2"]
        ) == pytest.approx(2 / 3)


class TestFig4StaticScheduling:
    """§3: the S1/S2 comparison at average times and the early case."""

    def test_s1_average_utility_30(self):
        app = paper_fig1_application()
        s1 = FSchedule(
            app,
            [
                ScheduledEntry("P1", 1),
                ScheduledEntry("P2", 0),
                ScheduledEntry("P3", 0),
            ],
        )
        result = simulate(app, s1, average_case_scenario(app))
        assert result.completion_times == {"P1": 50, "P2": 100, "P3": 160}
        assert result.utility == 30.0

    def test_s2_average_utility_60(self):
        app = paper_fig1_application()
        s2 = FSchedule(
            app,
            [
                ScheduledEntry("P1", 1),
                ScheduledEntry("P3", 0),
                ScheduledEntry("P2", 0),
            ],
        )
        result = simulate(app, s2, average_case_scenario(app))
        assert result.completion_times == {"P1": 50, "P3": 110, "P2": 160}
        assert result.utility == 60.0

    def test_early_p1_favours_s1_with_70(self):
        """Fig. 4b5: P1 at 30 -> S1 ordering earns U2(80) + U3(140) =
        40 + 30 = 70."""
        app = paper_fig1_application()
        s1 = FSchedule(
            app,
            [
                ScheduledEntry("P1", 1),
                ScheduledEntry("P2", 0),
                ScheduledEntry("P3", 0),
            ],
        )
        scenario = scenario_with_times(app, {"P1": 30, "P2": 50, "P3": 60})
        result = simulate(app, s1, scenario)
        assert result.completion_times == {"P1": 30, "P2": 80, "P3": 140}
        assert result.utility == 70.0

    def test_recovery_slack_keeps_p1_deadline(self):
        """§3: with a recovery slack of 70 + 10, P1 meets its 180 ms
        deadline in both orderings."""
        app = paper_fig1_application()
        for order in (["P1", "P2", "P3"], ["P1", "P3", "P2"]):
            sched = FSchedule(
                app,
                [ScheduledEntry(order[0], 1)]
                + [ScheduledEntry(n, 0) for n in order[1:]],
            )
            assert sched.worst_case_completions()["P1"] == 150 <= 180
            assert sched.is_schedulable()

    def test_fig4c_overload_drops_one_soft(self):
        """With T = 250 (Fig. 4c) both soft processes cannot survive
        the worst case; the paper drops P2 and keeps P3 (schedule S3,
        utility 40 at 100 ms)."""
        app = paper_fig1_application(period=250)
        worst = FSchedule(
            app,
            [
                ScheduledEntry("P1", 1),
                ScheduledEntry("P3", 0),
                ScheduledEntry("P2", 0),
            ],
        )
        # Fig. 4c1: the full set exceeds T = 250 in the worst case.
        assert not worst.is_schedulable()
        s3 = FSchedule(
            app,
            [ScheduledEntry("P1", 1), ScheduledEntry("P3", 0)],
        )
        s4 = FSchedule(
            app,
            [ScheduledEntry("P1", 1), ScheduledEntry("P2", 0)],
        )
        assert s3.is_schedulable() and s4.is_schedulable()
        # Fig. 4c3/c4: S3's utility U3(100) = 40 beats S4's U2(100) = 20.
        scenario = scenario_with_times(app, {"P1": 40, "P2": 60, "P3": 60})
        assert simulate(app, s3, scenario).utility == 40.0
        assert simulate(app, s4, scenario).utility == 20.0


class TestFig5QuasiStatic:
    """§3: the quasi-static tree adapts the soft ordering to the
    observed completion time of P1 and to faults."""

    def test_switch_on_early_completion(self):
        app = paper_fig1_application()
        root = ftss(app)
        tree = ftqs(app, root, FTQSConfig(max_schedules=6))
        # Early P1 -> the P2-first tail wins (utility 70 > 60).
        early = scenario_with_times(app, {"P1": 30, "P2": 50, "P3": 60})
        result = simulate(app, tree, early)
        assert result.switches
        assert result.utility == 70.0
        # Average P1 -> stay with the root (P3 first, utility 60).
        average = simulate(app, tree, average_case_scenario(app))
        assert average.utility == 60.0

    def test_fault_in_p1_still_meets_deadline(self):
        """Fig. 5 group 2: a fault in P1 consumes the recovery slack;
        the hard deadline holds and soft processes still earn what the
        late completion allows."""
        app = paper_fig1_application()
        root = ftss(app)
        tree = ftqs(app, root, FTQSConfig(max_schedules=8))
        scenario = scenario_with_times(
            app,
            {"P1": 70, "P2": 70, "P3": 80},
            FaultScenario.of({"P1": 1}),
        )
        result = simulate(app, tree, scenario)
        assert result.met_all_hard_deadlines
        # P1/2 completes at 70 + 10 + 70 = 150 <= 180.
        assert result.completion_times["P1"] == 150


class TestFig8FTSS:
    """§5.2's worked example: the dropping decision and S2H."""

    def test_dropping_comparison_80_vs_50(self):
        app = paper_fig8_application()
        keep, drop = dropping_gain(
            app, "P2", ["P2", "P3", "P4"], now=30, dropped=[]
        )
        assert keep == pytest.approx(80.0)
        assert drop == pytest.approx(50.0)

    def test_s2h_schedulable_before_220(self):
        app = paper_fig8_application()
        s2h = candidate_schedule(
            app,
            prefix=[ScheduledEntry("P1", 2)],
            candidate="P2",
            fault_budget=2,
        )
        assert s2h.order == ["P1", "P2", "P5"]
        assert s2h.worst_case_completions()["P5"] <= 220
        assert s2h.is_schedulable()

    def test_ftss_keeps_p2(self):
        """Since keeping P2 wins (80 > 50), FTSS must not drop it."""
        app = paper_fig8_application()
        schedule = ftss(app)
        assert schedule is not None
        assert "P2" in schedule.order

    def test_full_application_guarantees(self):
        app = paper_fig8_application()
        schedule = ftss(app)
        for target, count in (("P1", 2), ("P5", 2), ("P1", 1)):
            scenario = scenario_with_times(
                app,
                {p.name: p.wcet for p in app.processes},
                FaultScenario.of({target: count}),
            )
            result = simulate(app, schedule, scenario)
            assert result.met_all_hard_deadlines
