"""Unit tests for the process graph substrate."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.model.graph import ProcessGraph
from repro.model.process import hard_process, soft_process
from repro.utility.functions import ConstantUtility


def _soft(name):
    return soft_process(name, 1, 2, ConstantUtility(10))


def _diamond():
    """P1 -> {P2, P3} -> P4."""
    return ProcessGraph(
        [_soft("P1"), _soft("P2"), _soft("P3"), _soft("P4")],
        [("P1", "P2"), ("P1", "P3"), ("P2", "P4"), ("P3", "P4")],
        name="diamond",
    )


def test_basic_accessors():
    graph = _diamond()
    assert len(graph) == 4
    assert "P1" in graph and "P9" not in graph
    assert graph["P2"].name == "P2"
    assert sorted(graph.process_names) == ["P1", "P2", "P3", "P4"]
    assert ("P1", "P2") in graph.edges


def test_successors_predecessors():
    graph = _diamond()
    assert sorted(graph.successors("P1")) == ["P2", "P3"]
    assert sorted(graph.predecessors("P4")) == ["P2", "P3"]
    assert graph.predecessors("P1") == []


def test_sources_sinks_polar():
    graph = _diamond()
    assert graph.sources() == ["P1"]
    assert graph.sinks() == ["P4"]
    assert graph.is_polar()


def test_non_polar_detection():
    graph = ProcessGraph([_soft("A"), _soft("B")], [])
    assert not graph.is_polar()


def test_polarized_adds_dummies():
    graph = ProcessGraph([_soft("A"), _soft("B")], [], period=100)
    polar = graph.polarized()
    assert polar.is_polar()
    assert len(polar) == 4
    assert set(polar.successors("__source__")) == {"A", "B"}
    assert set(polar.predecessors("__sink__")) == {"A", "B"}


def test_polarized_name_collision_rejected():
    graph = ProcessGraph([_soft("__source__")], [])
    with pytest.raises(GraphError):
        graph.polarized()


def test_topological_order_valid():
    graph = _diamond()
    order = graph.topological_order()
    position = {n: i for i, n in enumerate(order)}
    for src, dst in graph.edges:
        assert position[src] < position[dst]


def test_cycle_rejected_at_construction():
    with pytest.raises(GraphError):
        ProcessGraph(
            [_soft("A"), _soft("B")], [("A", "B"), ("B", "A")]
        )


def test_cycle_rejected_on_add_edge():
    graph = ProcessGraph([_soft("A"), _soft("B")], [("A", "B")])
    with pytest.raises(GraphError):
        graph.add_edge("B", "A")


def test_self_loop_rejected():
    graph = ProcessGraph([_soft("A")], [])
    with pytest.raises(GraphError):
        graph.add_edge("A", "A")


def test_duplicate_edge_rejected():
    graph = ProcessGraph([_soft("A"), _soft("B")], [("A", "B")])
    with pytest.raises(GraphError):
        graph.add_edge("A", "B")


def test_duplicate_process_rejected():
    with pytest.raises(GraphError):
        ProcessGraph([_soft("A"), _soft("A")], [])


def test_unknown_edge_endpoint_rejected():
    with pytest.raises(GraphError):
        ProcessGraph([_soft("A")], [("A", "Z")])


def test_ancestors_descendants():
    graph = _diamond()
    assert graph.ancestors("P4") == {"P1", "P2", "P3"}
    assert graph.descendants("P1") == {"P2", "P3", "P4"}
    assert graph.ancestors("P1") == set()


def test_hard_soft_partition():
    graph = ProcessGraph(
        [hard_process("H", 1, 2, 10), _soft("S")], [("H", "S")]
    )
    assert [p.name for p in graph.hard_processes()] == ["H"]
    assert [p.name for p in graph.soft_processes()] == ["S"]


def test_subgraph():
    graph = _diamond()
    sub = graph.subgraph(["P1", "P2", "P4"])
    assert len(sub) == 3
    assert ("P1", "P2") in sub.edges
    assert ("P2", "P4") in sub.edges
    assert ("P3", "P4") not in [tuple(e) for e in sub.edges]


def test_subgraph_unknown_name_rejected():
    with pytest.raises(GraphError):
        _diamond().subgraph(["P1", "nope"])


def test_relabelled():
    graph = _diamond()
    renamed = graph.relabelled({"P1": "Q1"})
    assert "Q1" in renamed and "P1" not in renamed
    assert sorted(renamed.successors("Q1")) == ["P2", "P3"]


def test_networkx_round_trip():
    graph = _diamond()
    nx_graph = graph.to_networkx()
    assert isinstance(nx_graph, nx.DiGraph)
    back = ProcessGraph.from_networkx(nx_graph, name="diamond")
    assert sorted(back.process_names) == sorted(graph.process_names)
    assert sorted(back.edges) == sorted(graph.edges)


def test_from_networkx_requires_process_attribute():
    bad = nx.DiGraph()
    bad.add_node("X")
    with pytest.raises(GraphError):
        ProcessGraph.from_networkx(bad)
