"""Validation of the expected-utility model inside interval
partitioning: the analytic expectation must track a Monte-Carlo
estimate of the same quantity."""

import numpy as np
import pytest

from repro.quasistatic.intervals import TailProfile, TailTerm, tail_profile
from repro.scheduling.ftss import ftss
from repro.utility.functions import LinearUtility, StepUtility


def _mc_expected(app, schedule, from_position, tc, rng, runs=4000):
    """Monte-Carlo estimate of the tail's expected utility at tc."""
    from repro.utility.stale import stale_coefficients

    alphas = stale_coefficients(app.graph, schedule.all_dropped)
    entries = schedule.entries[from_position:]
    total = 0.0
    for _ in range(runs):
        clock = tc
        for entry in entries:
            proc = app.process(entry.name)
            clock += int(rng.integers(proc.bcet, proc.wcet + 1))
            if proc.is_soft and clock <= app.period:
                total += alphas[entry.name] * proc.utility_at(clock)
    return total / runs


class TestExpectedAgainstMonteCarlo:
    @pytest.mark.parametrize("tc", [30, 50, 80, 120])
    def test_fig1_tail(self, fig1_app, tc):
        schedule = ftss(fig1_app)
        profile = tail_profile(fig1_app, schedule, from_position=1)
        rng = np.random.default_rng(1)
        analytic = profile.expected(tc)
        empirical = _mc_expected(fig1_app, schedule, 1, tc, rng)
        # Normal/uniform model vs truth: a few percent of the scale.
        assert analytic == pytest.approx(empirical, abs=4.0)

    def test_generated_app_tail(self, small_app):
        """Generated applications declare AET = (BCET + WCET) / 2, the
        mean of the sampling distribution, so the analytic expectation
        must track the empirical one.  (The Fig. 8 example pins P1's
        AET off-midpoint to match the paper's worked numbers, so it is
        deliberately *not* used here.)"""
        schedule = ftss(small_app)
        assert schedule is not None
        position = max(0, len(schedule.entries) // 2)
        profile = tail_profile(small_app, schedule, from_position=position)
        scale = max(
            1.0, sum(t.alpha * t.fn.max_value() for t in profile.terms)
        )
        rng = np.random.default_rng(2)
        for tc in (0, small_app.period // 4, small_app.period // 2):
            analytic = profile.expected(tc)
            empirical = _mc_expected(small_app, schedule, position, tc, rng)
            assert analytic == pytest.approx(empirical, abs=0.06 * scale)


class TestExpectedProperties:
    def test_expected_non_increasing_in_tc(self, fig1_app):
        schedule = ftss(fig1_app)
        profile = tail_profile(fig1_app, schedule, from_position=1)
        values = [profile.expected(tc) for tc in range(30, 200, 5)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_expected_bounded_by_max(self, fig1_app):
        schedule = ftss(fig1_app)
        profile = tail_profile(fig1_app, schedule, from_position=1)
        bound = sum(t.alpha * t.fn.max_value() for t in profile.terms)
        for tc in (0, 30, 100, 250):
            assert 0.0 <= profile.expected(tc) <= bound + 1e-9

    def test_single_process_exact_uniform(self):
        """One tail process: expectation over the uniform duration is
        computed exactly."""
        fn = StepUtility(30, [(100, 0)])
        term = TailTerm(
            alpha=1.0, fn=fn, mean=50.0, variance=400 / 12.0,
            lo_sum=40, hi_sum=60, count=1,
        )
        profile = TailProfile(terms=(term,), period=1000)
        # tc = 45: completion uniform on [85, 105); value 30 while
        # <= 100, i.e. for 16 of 20 mass -> 24 (within model accuracy
        # of the continuous-uniform approximation).
        assert profile.expected(45) == pytest.approx(
            30 * (100 - 85) / 20, abs=2.0
        )
        # All mass before the breakpoint.
        assert profile.expected(20) == pytest.approx(30.0)
        # All mass after.
        assert profile.expected(200) == pytest.approx(0.0)

    def test_linear_utility_uses_quantiles(self):
        fn = LinearUtility(100, 1.0)
        term = TailTerm(
            alpha=1.0, fn=fn, mean=50.0, variance=100.0,
            lo_sum=20, hi_sum=80, count=2,
        )
        profile = TailProfile(terms=(term,), period=1000)
        # E[100 - (tc + S)] = 100 - tc - 50 at tc = 10 -> ~40.
        assert profile.expected(10) == pytest.approx(40.0, abs=3.0)

    def test_point_utility_unchanged(self, fig1_app):
        """The AET point evaluation (used by FTSS semantics) remains
        available alongside the expectation."""
        schedule = ftss(fig1_app)
        profile = tail_profile(fig1_app, schedule, from_position=1)
        # Root is P1, P3, P2: tail from position 1 at tc = 50 is the
        # paper's average case, worth 60.
        assert profile.utility(50) == 60.0
