"""Hypothesis property tests for the f-schedule timing analysis."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.quasistatic.intervals import rebased
from repro.scheduling.fschedule import shared_recovery_demand
from repro.scheduling.ftss import ftss
from repro.scheduling.slack import minimum_slack
from repro.workloads.suite import WorkloadSpec, generate_application

_slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

needs_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=4),
    ),
    max_size=10,
)


class TestSharedRecoveryDemandProperties:
    @given(needs=needs_strategy, budget=st.integers(0, 6))
    def test_monotone_in_budget(self, needs, budget):
        assert shared_recovery_demand(
            needs, budget
        ) <= shared_recovery_demand(needs, budget + 1)

    @given(
        needs=needs_strategy,
        budget=st.integers(0, 6),
        extra_cost=st.integers(1, 500),
        extra_cap=st.integers(1, 4),
    )
    def test_monotone_in_needs(self, needs, budget, extra_cost, extra_cap):
        base = shared_recovery_demand(needs, budget)
        more = shared_recovery_demand(
            needs + [(extra_cost, extra_cap)], budget
        )
        assert more >= base

    @given(needs=needs_strategy, budget=st.integers(0, 6))
    def test_bounded_by_budget_times_max(self, needs, budget):
        demand = shared_recovery_demand(needs, budget)
        if needs:
            assert demand <= budget * max(cost for cost, _ in needs)
        else:
            assert demand == 0

    @given(needs=needs_strategy, budget=st.integers(0, 6))
    def test_never_exceeds_private_reservation(self, needs, budget):
        private = sum(cost * min(cap, budget) for cost, cap in needs)
        assert shared_recovery_demand(needs, budget) <= private


class TestWorstCaseProperties:
    @_slow
    @given(seed=st.integers(0, 400))
    def test_completions_monotone_along_order(self, seed):
        app = generate_application(WorkloadSpec(n_processes=10), seed=seed)
        schedule = ftss(app)
        assert schedule is not None
        completions = schedule.worst_case_completions()
        values = [completions[name] for name in schedule.order]
        assert values == sorted(values)

    @_slow
    @given(seed=st.integers(0, 400))
    def test_worst_dominates_expected(self, seed):
        app = generate_application(WorkloadSpec(n_processes=10), seed=seed)
        schedule = ftss(app)
        worst = schedule.worst_case_completions()
        expected = schedule.expected_completions()
        for name in schedule.order:
            assert worst[name] >= expected[name]

    @_slow
    @given(seed=st.integers(0, 400), shift=st.integers(0, 200))
    def test_rebase_shifts_uniformly(self, seed, shift):
        app = generate_application(WorkloadSpec(n_processes=8), seed=seed)
        schedule = ftss(app)
        base = schedule.worst_case_completions()
        moved = rebased(schedule, schedule.start_time + shift)
        shifted = moved.worst_case_completions()
        for name in schedule.order:
            assert shifted[name] == base[name] + shift

    @_slow
    @given(seed=st.integers(0, 400))
    def test_minimum_slack_consistency(self, seed):
        app = generate_application(WorkloadSpec(n_processes=8), seed=seed)
        schedule = ftss(app)
        slack = minimum_slack(schedule)
        assert slack >= 0
        # Shifting by exactly the slack stays feasible; one more tick
        # breaks it.
        assert rebased(schedule, schedule.start_time + slack).is_schedulable()
        assert not rebased(
            schedule, schedule.start_time + slack + 1
        ).is_schedulable()
