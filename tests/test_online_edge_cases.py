"""Additional edge-case tests of the online scheduler and runtime
bookkeeping."""

import pytest

from repro.faults.injection import (
    average_case_scenario,
    scenario_with_times,
)
from repro.faults.model import FaultScenario
from repro.model.application import Application
from repro.model.graph import ProcessGraph
from repro.model.process import hard_process, soft_process
from repro.quasistatic.ftqs import FTQSConfig, ftqs
from repro.runtime.online import OnlineScheduler, simulate
from repro.runtime.trace import EventKind
from repro.scheduling.fschedule import FSchedule
from repro.scheduling.ftss import ftss
from repro.utility.functions import ConstantUtility, StepUtility


class TestDropSemantics:
    def test_drop_event_recorded(self):
        # First attempt (completing at 15) earns 10, but a retry after
        # the fault (completing at 35 > 20) earns nothing — so no
        # re-execution is allotted and the fault drops the process.
        graph = ProcessGraph(
            [soft_process("S", 10, 20, StepUtility(10, [(20, 0)]))],
            [],
            period=100,
        )
        app = Application(graph, period=100, k=1, mu=5)
        schedule = ftss(app)
        assert "S" in schedule.order
        scenario = scenario_with_times(
            app, {"S": 15}, FaultScenario.of({"S": 1})
        )
        result = simulate(app, schedule, scenario)
        drops = result.events_of_kind(EventKind.DROP)
        assert len(drops) == 1
        assert drops[0].process == "S"

    def test_statically_dropped_never_executes(self):
        """A soft process the schedule excluded must neither run nor
        appear in completion times."""
        graph = ProcessGraph(
            [
                hard_process("H", 40, 80, 200),
                soft_process("S1", 40, 90, StepUtility(40, [(150, 0)])),
                soft_process("S2", 40, 90, StepUtility(10, [(150, 0)])),
            ],
            [],
            period=220,
        )
        app = Application(graph, period=220, k=1, mu=10)
        schedule = ftss(app)
        assert schedule.dropped  # overload forces a drop
        result = simulate(app, schedule, average_case_scenario(app))
        for name in schedule.dropped:
            assert name in result.dropped
            assert name not in result.completion_times

    def test_drop_degrades_consumer_alpha(self):
        """Runtime drop of a producer degrades its consumer's earned
        utility via the stale coefficient."""
        # Retrying Prod would delay Cons past its 45-tick value cliff,
        # so dropping (stale input for Cons, alpha = 1/2) wins; without
        # the fault, keeping Prod is clearly better.
        graph = ProcessGraph(
            [
                soft_process("Prod", 10, 20, StepUtility(10, [(20, 0)])),
                soft_process("Cons", 10, 20, StepUtility(30, [(45, 5)])),
            ],
            [("Prod", "Cons")],
            period=300,
        )
        app = Application(graph, period=300, k=1, mu=5)
        schedule = ftss(app)
        assert "Prod" in schedule
        scenario = scenario_with_times(
            app, {"Prod": 15, "Cons": 15}, FaultScenario.of({"Prod": 1})
        )
        result = simulate(app, schedule, scenario)
        assert "Prod" in result.dropped
        # Cons completes at 30: alpha 1/2 x 30 = 15.
        assert result.utility == pytest.approx(15.0)


class TestSwitchBoundaries:
    def test_no_switch_outside_interval(self, fig1_app):
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, FTQSConfig(max_schedules=4))
        arcs = tree.root.arcs_for("P1")
        if not arcs:
            pytest.skip("no arc generated")
        hi = max(a.hi for a in arcs)
        scenario = scenario_with_times(
            fig1_app, {"P1": min(70, hi + 1), "P2": 50, "P3": 60}
        )
        if scenario.duration_of("P1", 0) <= hi:
            pytest.skip("cannot exceed the window with valid times")
        result = simulate(fig1_app, tree, scenario)
        assert result.switches == ()

    def test_switch_exactly_at_bounds(self, fig1_app):
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, FTQSConfig(max_schedules=4))
        arcs = tree.root.arcs_for("P1")
        if not arcs:
            pytest.skip("no arc generated")
        arc = arcs[0]
        for tc in (arc.lo, arc.hi):
            if not 30 <= tc <= 70:
                continue  # not a reachable P1 duration
            scenario = scenario_with_times(
                fig1_app, {"P1": tc, "P2": 50, "P3": 60}
            )
            result = simulate(fig1_app, tree, scenario)
            assert arc.target in result.switches


class TestSchedulerReuse:
    def test_scheduler_instance_is_stateless_between_runs(self, fig1_app):
        schedule = ftss(fig1_app)
        scheduler = OnlineScheduler(fig1_app, schedule)
        first = scheduler.run(average_case_scenario(fig1_app))
        second = scheduler.run(average_case_scenario(fig1_app))
        assert first.completion_times == second.completion_times
        assert first.utility == second.utility

    def test_empty_schedule_runs(self):
        graph = ProcessGraph(
            [soft_process("S", 10, 20, ConstantUtility(5))],
            [],
            period=100,
        )
        app = Application(graph, period=100, k=0, mu=0)
        empty = FSchedule(app, [])
        result = simulate(app, empty, average_case_scenario(app))
        assert result.completion_times == {}
        assert result.utility == 0.0
        assert "S" in result.dropped
