"""Tests for the tree renderer and the expansion-order selection."""

import pytest

from repro.analysis.treeview import render_tree
from repro.quasistatic.ftqs import FTQSConfig, ftqs
from repro.quasistatic.similarity import (
    find_most_similar_unexpanded,
    similarity_to_tree,
)
from repro.quasistatic.tree import QSTree
from repro.scheduling.ftss import ftss


class TestRenderTree:
    def test_single_node(self, fig1_app):
        tree = QSTree(ftss(fig1_app))
        text = render_tree(tree)
        assert "[0]" in text
        assert "P1+1" in text

    def test_arcs_and_children(self, fig1_app):
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, FTQSConfig(max_schedules=6))
        text = render_tree(tree)
        assert "after P1 in [" in text
        # Every node appears.
        for node in tree.nodes():
            assert f"[{node.node_id}]" in text

    def test_truncation(self, cc_app):
        root = ftss(cc_app)
        tree = QSTree(root)
        text = render_tree(tree, max_entries=4)
        assert "total)" in text

    def test_fault_annotation(self):
        from repro.workloads.suite import WorkloadSpec, generate_application

        for seed in range(40):
            app = generate_application(
                WorkloadSpec(n_processes=10), seed=seed
            )
            root = ftss(app)
            if root is None:
                continue
            tree = ftqs(app, root, FTQSConfig(max_schedules=8))
            if any(n.assumed_faults for n in tree.nodes()):
                text = render_tree(tree)
                assert "assumes" in text
                return
        pytest.skip("no fault child found in the search budget")


class TestExpansionOrder:
    def test_no_unexpanded_returns_none(self, fig1_app):
        tree = QSTree(ftss(fig1_app))
        tree.root.expanded = True
        assert find_most_similar_unexpanded(tree, 0) is None

    def test_unexpanded_root_found(self, fig1_app):
        tree = QSTree(ftss(fig1_app))
        assert find_most_similar_unexpanded(tree, 0) is tree.root

    def test_layer_filter(self, fig1_app):
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, FTQSConfig(max_schedules=2))
        # Layer 99 has no nodes at all.
        assert find_most_similar_unexpanded(tree, 99) is None

    def test_similarity_to_tree_bounds(self, fig1_app):
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, FTQSConfig(max_schedules=6))
        for node in tree.nodes():
            value = similarity_to_tree(tree, node)
            assert 0.0 <= value <= 1.0

    def test_picks_most_similar(self, fig1_app):
        """Among unexpanded candidates, the one most similar to the
        existing tree is selected."""
        root = ftss(fig1_app)
        tree = QSTree(root)
        same = ftss(
            fig1_app, fault_budget=1, start_time=50, prior_completed=["P1"]
        )
        different = ftss(
            fig1_app,
            fault_budget=1,
            start_time=200,
            prior_completed=["P1"],
        )
        a = tree.add_child(tree.root_id, same, "P1", 0, layer=1)
        b = tree.add_child(tree.root_id, different, "P1", 0, layer=1)
        pick = find_most_similar_unexpanded(tree, 1)
        assert pick in (a, b)
        assert similarity_to_tree(tree, pick) >= similarity_to_tree(
            tree, a if pick is b else b
        ) - 1e-12
