"""Unit tests for the process model (paper §2)."""

import pytest

from repro.errors import TimingError, UtilityError
from repro.model.process import (
    Process,
    ProcessKind,
    hard_process,
    soft_process,
)
from repro.utility.functions import ConstantUtility, StepUtility


def test_hard_process_basics():
    proc = hard_process("P1", bcet=10, wcet=30, deadline=100)
    assert proc.is_hard and not proc.is_soft
    assert proc.kind is ProcessKind.HARD
    assert proc.deadline == 100
    assert proc.utility is None


def test_soft_process_basics():
    proc = soft_process("P2", 10, 30, ConstantUtility(5))
    assert proc.is_soft and not proc.is_hard
    assert proc.deadline is None
    assert proc.utility_at(1000) == 5.0


def test_aet_defaults_to_midpoint():
    proc = hard_process("P", bcet=10, wcet=30, deadline=50)
    assert proc.aet == 20


def test_aet_explicit_value_kept():
    proc = hard_process("P", bcet=10, wcet=30, deadline=50, aet=25)
    assert proc.aet == 25


def test_aet_outside_range_rejected():
    with pytest.raises(TimingError):
        hard_process("P", bcet=10, wcet=30, deadline=50, aet=40)


def test_bcet_above_wcet_rejected():
    with pytest.raises(TimingError):
        hard_process("P", bcet=40, wcet=30, deadline=50)


def test_zero_wcet_rejected():
    with pytest.raises(TimingError):
        hard_process("P", bcet=0, wcet=0, deadline=50)


def test_negative_bcet_rejected():
    with pytest.raises(TimingError):
        hard_process("P", bcet=-1, wcet=30, deadline=50)


def test_empty_name_rejected():
    with pytest.raises(TimingError):
        hard_process("", bcet=1, wcet=2, deadline=5)


def test_hard_without_deadline_rejected():
    with pytest.raises(TimingError):
        Process(name="P", bcet=1, wcet=2, kind=ProcessKind.HARD)


def test_hard_with_utility_rejected():
    with pytest.raises(UtilityError):
        Process(
            name="P",
            bcet=1,
            wcet=2,
            kind=ProcessKind.HARD,
            deadline=10,
            utility=ConstantUtility(1),
        )


def test_soft_without_utility_rejected():
    with pytest.raises(UtilityError):
        Process(name="P", bcet=1, wcet=2, kind=ProcessKind.SOFT)


def test_soft_with_deadline_rejected():
    with pytest.raises(TimingError):
        Process(
            name="P",
            bcet=1,
            wcet=2,
            kind=ProcessKind.SOFT,
            deadline=10,
            utility=ConstantUtility(1),
        )


def test_negative_deadline_rejected():
    with pytest.raises(TimingError):
        hard_process("P", bcet=1, wcet=2, deadline=0)


def test_negative_recovery_overhead_rejected():
    with pytest.raises(TimingError):
        hard_process("P", bcet=1, wcet=2, deadline=5, recovery_overhead=-1)


def test_hard_utility_at_is_zero():
    proc = hard_process("P", bcet=1, wcet=2, deadline=5)
    assert proc.utility_at(3) == 0.0


def test_soft_utility_evaluates_step():
    utility = StepUtility(40, [(100, 20)])
    proc = soft_process("P", 1, 2, utility)
    assert proc.utility_at(100) == 40.0
    assert proc.utility_at(101) == 20.0
