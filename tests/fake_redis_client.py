"""A tiny in-repo stand-in for ``fakeredis``.

The store's backend-conformance suite runs against
:class:`~repro.pipeline.store.redis_backend.RedisBackend` even when
neither a Redis server nor the ``fakeredis`` package is available:
this client implements exactly the command subset the backend uses —
``get``/``set(ex=)``/``delete``/``incr``/``zadd``/``zrem``/``zrange``/
``zcard``/``sadd``/``smembers``/``scan_iter``/``ttl``/``ping`` and a
generic ``pipeline`` — over plain dicts.

Two testing affordances real servers lack:

* :meth:`FakeRedisClient.advance` moves a manual clock, so TTL-expiry
  tests never sleep;
* :attr:`FakeRedisClient.fail_reads` makes every ``get`` raise
  ``ConnectionError`` (an ``OSError``), the error-injection hook the
  degrade-to-miss conformance tests use.

Replies are bytes, like a default (non-``decode_responses``) redis-py
client, so the backend's normalization paths are exercised.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Dict, Iterator, List, Optional, Set, Tuple


def _name(key) -> str:
    if isinstance(key, bytes):
        return key.decode("utf-8")
    return str(key)


def _payload(value) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    return str(value).encode("utf-8")


class _Pipeline:
    """Queue commands, run them in order on ``execute()``.

    A faithful-enough model of a non-transactional redis-py pipeline:
    every queued call resolves against the same client state, replies
    come back as one list.
    """

    def __init__(self, client: "FakeRedisClient"):
        self._client = client
        self._ops: List[Tuple[str, tuple, dict]] = []

    def __getattr__(self, command: str):
        def queue(*args, **kwargs) -> "_Pipeline":
            self._ops.append((command, args, kwargs))
            return self

        return queue

    def execute(self) -> list:
        ops, self._ops = self._ops, []
        return [
            getattr(self._client, command)(*args, **kwargs)
            for command, args, kwargs in ops
        ]


class FakeRedisClient:
    def __init__(self):
        self._strings: Dict[str, bytes] = {}
        self._expiry: Dict[str, float] = {}
        self._zsets: Dict[str, Dict[str, float]] = {}
        self._sets: Dict[str, Set[str]] = {}
        self._counters: Dict[str, int] = {}
        self.now = 0.0
        self.fail_reads = False
        self.closed = False

    # ------------------------------------------------------------------
    # Test affordances
    # ------------------------------------------------------------------
    def advance(self, seconds: float) -> None:
        """Move the TTL clock forward (no sleeping in tests)."""
        self.now += seconds

    def _alive(self, key: str) -> bool:
        expiry = self._expiry.get(key)
        if expiry is not None and self.now >= expiry:
            self._strings.pop(key, None)
            self._expiry.pop(key, None)
        return key in self._strings

    # ------------------------------------------------------------------
    # Strings
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return True

    def get(self, key) -> Optional[bytes]:
        if self.fail_reads:
            raise ConnectionError("injected read fault")
        key = _name(key)
        if not self._alive(key):
            return None
        return self._strings[key]

    def set(self, key, value, ex: Optional[int] = None) -> bool:
        key = _name(key)
        self._strings[key] = _payload(value)
        if ex is None:
            self._expiry.pop(key, None)
        else:
            self._expiry[key] = self.now + ex
        return True

    def delete(self, *keys) -> int:
        removed = 0
        for key in map(_name, keys):
            if self._alive(key):
                removed += 1
            self._strings.pop(key, None)
            self._expiry.pop(key, None)
            if self._zsets.pop(key, None) is not None:
                removed += 1
            if self._sets.pop(key, None) is not None:
                removed += 1
            if self._counters.pop(key, None) is not None:
                removed += 1
        return removed

    def incr(self, key) -> int:
        key = _name(key)
        self._counters[key] = self._counters.get(key, 0) + 1
        return self._counters[key]

    def ttl(self, key) -> int:
        key = _name(key)
        if not self._alive(key):
            return -2
        expiry = self._expiry.get(key)
        if expiry is None:
            return -1
        return max(0, int(expiry - self.now))

    def scan_iter(self, match: str = "*") -> Iterator[bytes]:
        for key in sorted(self._strings):
            if self._alive(key) and fnmatchcase(key, match):
                yield key.encode("utf-8")

    # ------------------------------------------------------------------
    # Sorted sets / sets
    # ------------------------------------------------------------------
    def zadd(self, key, mapping: Dict[str, float]) -> int:
        zset = self._zsets.setdefault(_name(key), {})
        added = sum(1 for member in mapping if _name(member) not in zset)
        for member, score in mapping.items():
            zset[_name(member)] = float(score)
        return added

    def zrem(self, key, *members) -> int:
        zset = self._zsets.get(_name(key), {})
        removed = 0
        for member in map(_name, members):
            if zset.pop(member, None) is not None:
                removed += 1
        return removed

    def zcard(self, key) -> int:
        return len(self._zsets.get(_name(key), {}))

    def zrange(self, key, start: int, stop: int) -> List[bytes]:
        zset = self._zsets.get(_name(key), {})
        ordered = sorted(zset, key=lambda member: (zset[member], member))
        stop = len(ordered) if stop == -1 else stop + 1
        return [member.encode("utf-8") for member in ordered[start:stop]]

    def sadd(self, key, *members) -> int:
        group = self._sets.setdefault(_name(key), set())
        added = sum(1 for member in map(_name, members) if member not in group)
        group.update(map(_name, members))
        return added

    def smembers(self, key) -> Set[bytes]:
        return {
            member.encode("utf-8")
            for member in self._sets.get(_name(key), set())
        }

    # ------------------------------------------------------------------
    # Pipeline / lifecycle
    # ------------------------------------------------------------------
    def pipeline(self) -> _Pipeline:
        return _Pipeline(self)

    def close(self) -> None:
        self.closed = True
