"""Unit tests for the fault model, scenario enumeration and injection."""


import numpy as np
import pytest

from repro.errors import ModelError, RuntimeModelError
from repro.faults.injection import (
    ExecutionScenario,
    ScenarioSampler,
    average_case_scenario,
    best_case_scenario,
    scenario_with_times,
    worst_case_scenario,
)
from repro.faults.model import FaultScenario
from repro.faults.scenarios import (
    count_scenarios,
    enumerate_scenarios,
    sample_scenario,
    sample_scenarios,
)


class TestFaultScenario:
    def test_none_scenario(self):
        scenario = FaultScenario.none()
        assert scenario.total_faults == 0
        assert scenario.failures_of("P1") == 0
        assert scenario.within_budget(0)

    def test_of_mapping(self):
        scenario = FaultScenario.of({"P1": 2, "P2": 1})
        assert scenario.total_faults == 3
        assert scenario.failures_of("P1") == 2
        assert scenario.failures_of("P2") == 1
        assert scenario.within_budget(3)
        assert not scenario.within_budget(2)

    def test_of_kwargs(self):
        scenario = FaultScenario.of(P1=1)
        assert scenario.failures_of("P1") == 1

    def test_zero_count_rejected(self):
        with pytest.raises(ModelError):
            FaultScenario.of({"P1": 0})

    def test_restrict_to(self):
        scenario = FaultScenario.of({"P1": 1, "P2": 2})
        restricted = scenario.restrict_to(["P2"])
        assert restricted.failures_of("P1") == 0
        assert restricted.failures_of("P2") == 2

    def test_hashable_and_deterministic(self):
        a = FaultScenario.of({"P1": 1, "P2": 2})
        b = FaultScenario.of({"P2": 2, "P1": 1})
        assert a == b
        assert hash(a) == hash(b)


class TestEnumeration:
    def test_counts_match_formula(self):
        names = ["A", "B", "C"]
        for k in range(4):
            scenarios = list(enumerate_scenarios(names, k))
            assert len(scenarios) == count_scenarios(3, k)

    def test_exact_filter(self):
        names = ["A", "B"]
        exact2 = list(enumerate_scenarios(names, 2, exact=2))
        # Multisets of size 2 over 2 processes: AA, AB, BB.
        assert len(exact2) == 3
        assert all(s.total_faults == 2 for s in exact2)

    def test_exponential_growth_motivates_pruning(self):
        # The §3 claim: scenario count explodes with processes and k.
        assert count_scenarios(50, 3) > 20_000
        assert count_scenarios(50, 3) > count_scenarios(10, 3)

    def test_invalid_args_rejected(self):
        with pytest.raises(ModelError):
            list(enumerate_scenarios(["A"], -1))
        with pytest.raises(ModelError):
            list(enumerate_scenarios(["A"], 1, exact=5))

    def test_budget_respected(self):
        for scenario in enumerate_scenarios(["A", "B"], 2):
            assert scenario.within_budget(2)


class TestSampling:
    def test_sample_exact_faults(self, rng):
        scenario = sample_scenario(["A", "B", "C"], 3, rng)
        assert scenario.total_faults == 3

    def test_sample_zero(self, rng):
        assert sample_scenario(["A"], 0, rng) == FaultScenario.none()

    def test_sample_no_processes_rejected(self, rng):
        with pytest.raises(ModelError):
            sample_scenario([], 1, rng)

    def test_sample_many(self, rng):
        scenarios = sample_scenarios(["A", "B"], 2, 50, rng)
        assert len(scenarios) == 50
        assert all(s.total_faults == 2 for s in scenarios)

    def test_determinism_by_seed(self):
        a = sample_scenarios(["A", "B"], 2, 10, np.random.default_rng(3))
        b = sample_scenarios(["A", "B"], 2, 10, np.random.default_rng(3))
        assert a == b


class TestExecutionScenario:
    def test_duration_per_attempt(self):
        scenario = ExecutionScenario({"P1": (10, 20, 30)})
        assert scenario.duration_of("P1", 0) == 10
        assert scenario.duration_of("P1", 1) == 20
        assert scenario.duration_of("P1", 5) == 30  # reuses the last

    def test_unknown_process_rejected(self):
        scenario = ExecutionScenario({"P1": (10,)})
        with pytest.raises(RuntimeModelError):
            scenario.duration_of("P9", 0)

    def test_fails_respects_pattern(self):
        scenario = ExecutionScenario(
            {"P1": (10,)}, FaultScenario.of({"P1": 2})
        )
        assert scenario.fails("P1", 0)
        assert scenario.fails("P1", 1)
        assert not scenario.fails("P1", 2)

    def test_fixed_time_scenarios(self, fig1_app):
        avg = average_case_scenario(fig1_app)
        worst = worst_case_scenario(fig1_app)
        best = best_case_scenario(fig1_app)
        assert avg.duration_of("P1", 0) == 50
        assert worst.duration_of("P1", 0) == 70
        assert best.duration_of("P1", 0) == 30

    def test_out_of_range_time_rejected(self, fig1_app):
        with pytest.raises(ModelError):
            scenario_with_times(fig1_app, {"P1": 500})


class TestScenarioSampler:
    def test_durations_within_bounds(self, fig1_app):
        sampler = ScenarioSampler(fig1_app, seed=5)
        scenario = sampler.sample(faults=1)
        for proc in fig1_app.processes:
            for attempt in range(2):
                duration = scenario.duration_of(proc.name, attempt)
                assert proc.bcet <= duration <= proc.wcet
        assert scenario.faults.total_faults == 1

    def test_over_budget_rejected(self, fig1_app):
        sampler = ScenarioSampler(fig1_app, seed=5)
        with pytest.raises(ModelError):
            sampler.sample(faults=fig1_app.k + 1)

    def test_seed_determinism(self, fig1_app):
        a = ScenarioSampler(fig1_app, seed=5).sample_many(5, faults=1)
        b = ScenarioSampler(fig1_app, seed=5).sample_many(5, faults=1)
        assert [s.faults for s in a] == [s.faults for s in b]
        assert [s.durations for s in a] == [s.durations for s in b]

    def test_seed_and_rng_mutually_exclusive(self, fig1_app, rng):
        with pytest.raises(ModelError):
            ScenarioSampler(fig1_app, seed=1, rng=rng)

    def test_mean_duration_near_aet(self, fig1_app):
        """Uniform draws should average near (BCET + WCET) / 2."""
        sampler = ScenarioSampler(fig1_app, seed=11)
        scenarios = sampler.sample_many(400, faults=0)
        values = [s.duration_of("P1", 0) for s in scenarios]
        assert abs(float(np.mean(values)) - 50.0) < 3.0
