"""The content-addressed tree store and the pipeline's synthesize path.

What the store guarantees: identical (application, root, config)
inputs reload the identical tree (zero builds), different inputs get
different addresses, and a corrupted entry silently degrades to a
rebuild — never a crash, never a wrong tree.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.evaluation.experiments.table1 import Table1Config, run_table1
from repro.evaluation.montecarlo import MonteCarloEvaluator
from repro.pipeline import TreeStore, fingerprint, synthesize_tree
from repro.quasistatic.ftqs import FTQSConfig, ftqs
from repro.quasistatic.synthesis import SynthesisStats
from repro.scheduling.ftss import ftss
from test_json_io import assert_trees_identical

CONFIG = FTQSConfig(max_schedules=6)


@pytest.fixture
def store(tmp_path):
    return TreeStore(str(tmp_path / "cache"))


class TestFingerprint:
    def test_stable_across_rebuilds(self, fig1_app):
        from repro.examples_support import paper_fig1_application

        root = ftss(fig1_app)
        twin_app = paper_fig1_application()
        twin_root = ftss(twin_app)
        # Value-identical inputs → same address, regardless of object
        # identity.
        assert fingerprint(fig1_app, root, CONFIG) == fingerprint(
            twin_app, twin_root, CONFIG
        )

    def test_sensitive_to_config(self, fig1_app):
        root = ftss(fig1_app)
        assert fingerprint(fig1_app, root, CONFIG) != fingerprint(
            fig1_app, root, FTQSConfig(max_schedules=7)
        )
        # The embedded FTSS config is part of the address too.
        from repro.scheduling.ftss import FTSSConfig

        ablated = FTQSConfig(
            max_schedules=6, ftss=FTSSConfig(drop_heuristic=False)
        )
        assert fingerprint(fig1_app, root, CONFIG) != fingerprint(
            fig1_app, root, ablated
        )

    def test_sensitive_to_application(self, fig1_app, fig8_app):
        root1 = ftss(fig1_app)
        root8 = ftss(fig8_app)
        assert fingerprint(fig1_app, root1, CONFIG) != fingerprint(
            fig8_app, root8, CONFIG
        )


class TestStoreHitMiss:
    def test_miss_then_hit(self, store, fig1_app):
        root = ftss(fig1_app)
        assert store.get(fig1_app, root, CONFIG) is None
        assert (store.hits, store.misses) == (0, 1)
        tree = ftqs(fig1_app, root, CONFIG)
        store.put(fig1_app, root, CONFIG, tree)
        cached = store.get(fig1_app, root, CONFIG)
        assert cached is not None
        assert (store.hits, store.misses) == (1, 1)
        assert_trees_identical(tree, cached)

    def test_corrupted_entry_falls_back_to_miss(self, store, fig1_app):
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        path = store.put(fig1_app, root, CONFIG, tree)
        with open(path, "w") as handle:
            handle.write('{"version": 1, "root": 0, "nodes": [{"truncated')
        assert store.get(fig1_app, root, CONFIG) is None
        assert store.misses == 1
        # A rebuild overwrites the torn entry and the store recovers.
        store.put(fig1_app, root, CONFIG, tree)
        recovered = store.get(fig1_app, root, CONFIG)
        assert recovered is not None
        assert_trees_identical(tree, recovered)

    def test_semantically_corrupt_entry_is_a_miss(self, store, fig1_app):
        """Valid JSON, invalid tree record — also degrades to a miss."""
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        path = store.put(fig1_app, root, CONFIG, tree)
        with open(path, "w") as handle:
            json.dump({"version": 1, "root": 0, "nodes": []}, handle)
        assert store.get(fig1_app, root, CONFIG) is None

    def test_entries_are_files_under_root(self, store, fig1_app):
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        path = store.put(fig1_app, root, CONFIG, tree)
        assert os.path.dirname(path) == store.root
        assert len(store) == 1
        # No temp files left behind by the atomic write.
        assert all(
            name.endswith(".json") for name in os.listdir(store.root)
        )


class TestSynthesizeTree:
    def test_second_call_skips_the_build(self, store, fig1_app):
        root = ftss(fig1_app)
        first = SynthesisStats()
        tree = synthesize_tree(
            fig1_app, root, CONFIG, stats=first, store=store
        )
        assert (first.store_hits, first.store_misses) == (0, 1)
        assert first.trees_built == 1
        second = SynthesisStats()
        cached = synthesize_tree(
            fig1_app, root, CONFIG, stats=second, store=store
        )
        assert (second.store_hits, second.store_misses) == (1, 0)
        assert second.trees_built == 0  # zero FTQS builds on a hit
        assert_trees_identical(tree, cached)

    def test_cached_tree_evaluates_bit_identically(self, store, fig1_app):
        """Store-loaded trees replay scenarios bit-identically."""
        root = ftss(fig1_app)
        fresh = synthesize_tree(fig1_app, root, CONFIG, store=store)
        cached = synthesize_tree(fig1_app, root, CONFIG, store=store)
        with MonteCarloEvaluator(
            fig1_app,
            n_scenarios=40,
            fault_counts=[0, 1],
            seed=11,
            engine="batched",
        ) as evaluator:
            results = evaluator.compare({"fresh": fresh, "cached": cached})
        for faults in (0, 1):
            assert (
                results["cached"][faults].utilities
                == results["fresh"][faults].utilities
            )
            assert (
                results["cached"][faults].mean_switches
                == results["fresh"][faults].mean_switches
            )


class TestDriverLevelCaching:
    """A repeated experiment run is a 100%-hit, zero-build run."""

    CONFIG = Table1Config(
        tree_sizes=(1, 2, 4), n_apps=1, n_processes=12, n_scenarios=30,
        seed=3,
    )

    def test_second_table1_run_is_fully_cached(self, store):
        first = SynthesisStats()
        rows = run_table1(self.CONFIG, stats=first, store=store)
        assert first.trees_built > 0
        assert first.store_hits == 0
        assert first.store_misses == first.trees_built

        second = SynthesisStats()
        again = run_table1(self.CONFIG, stats=second, store=store)
        assert second.trees_built == 0  # zero FTQS builds
        assert second.store_misses == 0
        assert second.store_hits == first.store_misses  # 100% hits

        # Cached-tree evaluation is bit-identical: every reported cell
        # matches the fresh-build run exactly.
        for row, twin in zip(rows, again):
            assert twin.nodes == row.nodes
            assert twin.utility_percent == row.utility_percent
            assert twin.n_apps == row.n_apps