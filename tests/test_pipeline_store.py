"""The content-addressed tree store and the pipeline's synthesize path.

What the store guarantees — on **every** backend (filesystem,
in-memory LRU, Redis): identical (application, root, config) inputs
reload the identical tree (zero builds), different inputs get
different addresses, and a corrupted or error-raising entry degrades
to a counted miss — never a crash, never a wrong tree.  The
conformance suite below is parametrized over all three backends; the
Redis leg runs against ``fakeredis`` when installed and an in-repo
command-subset stub otherwise, plus (in nightly CI) a real server via
``REPRO_REDIS_URL``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import RuntimeModelError
from repro.evaluation.experiments.table1 import Table1Config, run_table1
from repro.evaluation.montecarlo import MonteCarloEvaluator
from repro.pipeline import TreeStore, fingerprint, synthesize_tree
from repro.pipeline.store import (
    FilesystemBackend,
    MemoryBackend,
    RedisBackend,
    application_tag,
)
from repro.quasistatic.ftqs import FTQSConfig, ftqs
from repro.quasistatic.synthesis import SynthesisStats
from repro.scheduling.ftss import ftss
from fake_redis_client import FakeRedisClient
from test_json_io import assert_trees_identical

CONFIG = FTQSConfig(max_schedules=6)
BACKENDS = ("fs", "memory", "redis")


def _redis_client():
    """A fakeredis client when installed, the in-repo stub otherwise."""
    try:
        import fakeredis

        return fakeredis.FakeStrictRedis()
    except ImportError:
        from fake_redis_client import FakeRedisClient

        return FakeRedisClient()


def make_store(kind: str, tmp_path) -> TreeStore:
    if kind == "fs":
        return TreeStore(str(tmp_path / "cache"))
    if kind == "memory":
        return TreeStore(backend=MemoryBackend())
    return TreeStore(backend=RedisBackend(client=_redis_client()))


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    return make_store(request.param, tmp_path)


def _break_reads(store: TreeStore, key: str, monkeypatch) -> None:
    """Make the next get of ``key`` raise a backend read error.

    Exercises each backend's real degradation path where possible: the
    filesystem entry is replaced by a directory (``IsADirectoryError``,
    the class of ``OSError`` that used to abort whole runs), the stub
    Redis client injects a ``ConnectionError`` into its pipelined GET;
    backends without a natural fault hook get their raw ``_get``
    monkeypatched to raise ``PermissionError``.
    """
    backend = store.backend
    if isinstance(backend, FilesystemBackend):
        path = backend.path_for(key)
        if os.path.exists(path):
            os.unlink(path)
        os.makedirs(path)
        return
    client = getattr(backend, "client", None)
    if client is not None and hasattr(client, "fail_reads"):
        client.fail_reads = True
        return

    def raising_get(_key):
        raise PermissionError("injected read fault")

    monkeypatch.setattr(backend, "_get", raising_get)


class TestFingerprint:
    def test_stable_across_rebuilds(self, fig1_app):
        from repro.examples_support import paper_fig1_application

        root = ftss(fig1_app)
        twin_app = paper_fig1_application()
        twin_root = ftss(twin_app)
        # Value-identical inputs → same address, regardless of object
        # identity.
        assert fingerprint(fig1_app, root, CONFIG) == fingerprint(
            twin_app, twin_root, CONFIG
        )

    def test_sensitive_to_config(self, fig1_app):
        root = ftss(fig1_app)
        assert fingerprint(fig1_app, root, CONFIG) != fingerprint(
            fig1_app, root, FTQSConfig(max_schedules=7)
        )
        # The embedded FTSS config is part of the address too.
        from repro.scheduling.ftss import FTSSConfig

        ablated = FTQSConfig(
            max_schedules=6, ftss=FTSSConfig(drop_heuristic=False)
        )
        assert fingerprint(fig1_app, root, CONFIG) != fingerprint(
            fig1_app, root, ablated
        )

    def test_sensitive_to_application(self, fig1_app, fig8_app):
        root1 = ftss(fig1_app)
        root8 = ftss(fig8_app)
        assert fingerprint(fig1_app, root1, CONFIG) != fingerprint(
            fig8_app, root8, CONFIG
        )

    def test_application_tag_shared_across_configs(self, fig1_app, fig8_app):
        assert application_tag(fig1_app) == application_tag(fig1_app)
        assert application_tag(fig1_app) != application_tag(fig8_app)


class TestStoreConstruction:
    def test_exactly_one_of_root_or_backend(self, tmp_path):
        with pytest.raises(RuntimeModelError):
            TreeStore()
        with pytest.raises(RuntimeModelError):
            TreeStore(str(tmp_path), backend=MemoryBackend())


class TestBackendConformance:
    """The same contract on fs, memory and redis."""

    def test_miss_then_hit_round_trips_identically(self, store, fig1_app):
        root = ftss(fig1_app)
        assert store.get(fig1_app, root, CONFIG) is None
        assert (store.hits, store.misses) == (0, 1)
        tree = ftqs(fig1_app, root, CONFIG)
        store.put(fig1_app, root, CONFIG, tree)
        cached = store.get(fig1_app, root, CONFIG)
        assert cached is not None
        assert (store.hits, store.misses) == (1, 1)
        assert_trees_identical(tree, cached)

    def test_metrics_measure_traffic_and_latency(self, store, fig1_app):
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        store.put(fig1_app, root, CONFIG, tree)
        store.get(fig1_app, root, CONFIG)
        metrics = store.metrics
        assert metrics.puts == 1
        assert metrics.bytes_written > 0
        assert metrics.bytes_read == metrics.bytes_written
        assert metrics.get_seconds >= 0.0
        assert metrics.put_seconds >= 0.0
        assert metrics.gets == metrics.hits + metrics.misses == 1

    def test_corrupted_entry_falls_back_to_counted_miss(
        self, store, fig1_app
    ):
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        store.put(fig1_app, root, CONFIG, tree)
        key = fingerprint(fig1_app, root, CONFIG)
        store.backend.put(key, b'{"version": 1, "root": 0, "nodes": [{"torn')
        assert store.get(fig1_app, root, CONFIG) is None
        assert store.misses == 1
        assert store.metrics.corrupted == 1
        # A rebuild overwrites the torn entry and the store recovers.
        store.put(fig1_app, root, CONFIG, tree)
        recovered = store.get(fig1_app, root, CONFIG)
        assert recovered is not None
        assert_trees_identical(tree, recovered)

    def test_semantically_corrupt_entry_is_a_miss(self, store, fig1_app):
        """Valid JSON, invalid tree record — also degrades to a miss."""
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        store.put(fig1_app, root, CONFIG, tree)
        key = fingerprint(fig1_app, root, CONFIG)
        store.backend.put(
            key,
            json.dumps({"version": 1, "root": 0, "nodes": []}).encode(),
        )
        assert store.get(fig1_app, root, CONFIG) is None
        assert store.metrics.corrupted == 1

    def test_read_error_degrades_to_counted_miss(
        self, store, fig1_app, monkeypatch
    ):
        """Regression: a PermissionError/IsADirectoryError/connection
        fault on a cache entry used to abort the whole experiment run;
        now it is a miss counted under ``errors``."""
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        store.put(fig1_app, root, CONFIG, tree)
        _break_reads(store, fingerprint(fig1_app, root, CONFIG), monkeypatch)
        assert store.get(fig1_app, root, CONFIG) is None
        metrics = store.metrics
        assert metrics.errors == 1
        assert metrics.misses == 1
        assert metrics.hits == 0

    def test_delete_and_keys(self, store, fig1_app):
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        key = fingerprint(fig1_app, root, CONFIG)
        assert store.backend.delete(key) is False
        store.put(fig1_app, root, CONFIG, tree)
        assert store.backend.keys() == [key]
        assert len(store) == 1
        assert store.backend.delete(key) is True
        assert len(store) == 0
        assert store.get(fig1_app, root, CONFIG) is None
        assert store.metrics.deletes == 1

    def test_purge_application_drops_all_its_trees(self, store, fig1_app):
        if isinstance(store.backend, FilesystemBackend):
            pytest.skip("the fs backend keeps no tag index")
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        store.put(fig1_app, root, CONFIG, tree)
        other = ftqs(fig1_app, root, FTQSConfig(max_schedules=4))
        store.put(fig1_app, root, FTQSConfig(max_schedules=4), other)
        assert len(store) == 2
        assert store.purge_application(fig1_app) == 2
        assert len(store) == 0

    def test_repeat_synthesize_is_all_hits_zero_builds(
        self, store, fig1_app
    ):
        root = ftss(fig1_app)
        first = SynthesisStats()
        tree = synthesize_tree(
            fig1_app, root, CONFIG, stats=first, store=store
        )
        assert (first.store_hits, first.store_misses) == (0, 1)
        assert first.trees_built == 1
        second = SynthesisStats()
        cached = synthesize_tree(
            fig1_app, root, CONFIG, stats=second, store=store
        )
        assert (second.store_hits, second.store_misses) == (1, 0)
        assert second.trees_built == 0  # zero FTQS builds on a hit
        assert_trees_identical(tree, cached)

    def test_cached_tree_evaluates_bit_identically(self, store, fig1_app):
        """Store-loaded trees replay scenarios bit-identically."""
        root = ftss(fig1_app)
        fresh = synthesize_tree(fig1_app, root, CONFIG, store=store)
        cached = synthesize_tree(fig1_app, root, CONFIG, store=store)
        with MonteCarloEvaluator(
            fig1_app,
            n_scenarios=40,
            fault_counts=[0, 1],
            seed=11,
            execution="batched",
        ) as evaluator:
            results = evaluator.compare({"fresh": fresh, "cached": cached})
        for faults in (0, 1):
            assert (
                results["cached"][faults].utilities
                == results["fresh"][faults].utilities
            )
            assert (
                results["cached"][faults].mean_switches
                == results["fresh"][faults].mean_switches
            )


class TestFilesystemBackend:
    """The fs-specific robustness fixes, pinned as regressions."""

    @pytest.fixture
    def store(self, tmp_path):
        return make_store("fs", tmp_path)

    def test_entries_are_files_under_root(self, store, fig1_app):
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        path = store.put(fig1_app, root, CONFIG, tree)
        assert os.path.dirname(path) == store.root
        assert len(store) == 1
        # No temp files left behind by the atomic write.
        assert all(
            name.endswith(".json") for name in os.listdir(store.root)
        )

    def test_entry_replaced_by_directory_is_counted_miss(
        self, store, fig1_app
    ):
        """Regression (issue 6): an IsADirectoryError on open() used
        to propagate out of TreeStore.get and kill the run."""
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        path = store.put(fig1_app, root, CONFIG, tree)
        os.unlink(path)
        os.makedirs(path)
        assert store.get(fig1_app, root, CONFIG) is None
        assert store.metrics.errors == 1
        assert store.misses == 1

    def test_failed_overwrite_degrades_to_uncached_build(
        self, store, fig1_app
    ):
        """A put that cannot persist (entry squatted by a directory)
        returns None and counts an error — the run keeps its tree."""
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        path = store.put(fig1_app, root, CONFIG, tree)
        os.unlink(path)
        os.makedirs(path)
        assert store.put(fig1_app, root, CONFIG, tree) is None
        assert store.metrics.errors == 1
        # No temp droppings from the failed atomic replace.
        assert not any(
            name.endswith(".tmp") for name in os.listdir(store.root)
        )

    def test_stale_tmp_files_swept_on_open(self, tmp_path, fig1_app):
        """Regression (issue 6): temp files of a run killed between
        mkstemp and os.replace leaked into the cache dir forever."""
        first = make_store("fs", tmp_path)
        root = ftss(fig1_app)
        tree = ftqs(fig1_app, root, CONFIG)
        first.put(fig1_app, root, CONFIG, tree)
        stale = os.path.join(first.root, "tmpdead42.tmp")
        with open(stale, "w") as handle:
            handle.write('{"half": ')
        reopened = make_store("fs", tmp_path)
        assert reopened.backend.swept_temp_files == 1
        assert not os.path.exists(stale)
        assert len(reopened) == 1  # the real entry survived the sweep
        assert reopened.get(fig1_app, root, CONFIG) is not None

    def test_len_and_keys_never_count_tmp_files(self, store, fig1_app):
        stale = os.path.join(store.root, "tmplive1.tmp")
        with open(stale, "w") as handle:
            handle.write("{}")
        assert len(store) == 0
        assert store.backend.keys() == []


class TestMemoryBackend:
    def test_capacity_validated(self):
        with pytest.raises(RuntimeModelError):
            MemoryBackend(capacity=0)

    def test_lru_eviction_respects_recency(self):
        backend = MemoryBackend(capacity=2)
        backend.put("a", b"A")
        backend.put("b", b"B")
        assert backend.get("a") == b"A"  # touch: a is now most recent
        backend.put("c", b"C")
        assert backend.evictions == 1
        assert backend.get("b") is None  # b was least recently used
        assert backend.get("a") == b"A"
        assert backend.get("c") == b"C"
        assert len(backend) == 2

    def test_overwrite_does_not_grow_past_capacity(self):
        backend = MemoryBackend(capacity=2)
        backend.put("a", b"A")
        backend.put("a", b"A2")
        backend.put("b", b"B")
        assert backend.evictions == 0
        assert backend.get("a") == b"A2"

    def test_purge_tag(self):
        backend = MemoryBackend()
        backend.put("a", b"A", tags=("app1",))
        backend.put("b", b"B", tags=("app1",))
        backend.put("c", b"C", tags=("app2",))
        assert backend.purge_tag("app1") == 2
        assert backend.keys() == ["c"]
        assert backend.purge_tag("app1") == 0


class TestRedisBackend:
    """Redis semantics against fakeredis or the in-repo stub."""

    def test_requires_redis_package_without_client(self, monkeypatch):
        """Importable always; constructible without client= only when
        redis-py is installed."""
        from repro.pipeline.store import redis_backend as module

        monkeypatch.setattr(module, "_redis", None)
        with pytest.raises(RuntimeModelError, match="redis"):
            RedisBackend()

    def test_parameter_validation(self):
        with pytest.raises(RuntimeModelError):
            RedisBackend(client=_redis_client(), ttl_seconds=0)
        with pytest.raises(RuntimeModelError):
            RedisBackend(client=_redis_client(), capacity=0)

    def test_capacity_eviction_is_lru(self):
        backend = RedisBackend(client=_redis_client(), capacity=2)
        backend.put("a", b"A")
        backend.put("b", b"B")
        assert backend.get("a") == b"A"  # pipelined touch refreshes a
        backend.put("c", b"C")
        assert backend.evictions == 1
        assert backend.get("b") is None
        assert backend.get("a") == b"A"
        assert backend.get("c") == b"C"
        assert len(backend) == 2

    def test_ttl_expiry_reads_as_miss(self):
        client = _redis_client()
        backend = RedisBackend(client=client, ttl_seconds=60)
        backend.put("a", b"A")
        assert client.ttl(backend.data_key("a")) > 0
        if not hasattr(client, "advance"):
            pytest.skip("client has no manual clock (real fakeredis)")
        client.advance(61)
        assert backend.get("a") is None
        assert backend.metrics.misses == 1
        # The stale LRU index slot was dropped with the failed touch.
        assert client.zcard(backend.lru_key) == 0

    def test_namespaces_are_isolated(self):
        client = _redis_client()
        one = RedisBackend(client=client, namespace="repro:one")
        two = RedisBackend(client=client, namespace="repro:two")
        one.put("a", b"A")
        assert two.get("a") is None
        assert len(two) == 0
        assert len(one) == 1

    def test_purge_tag_pipelines_all_members(self):
        backend = RedisBackend(client=_redis_client())
        backend.put("a", b"A", tags=("app1",))
        backend.put("b", b"B", tags=("app1", "big"))
        backend.put("c", b"C", tags=("app2",))
        assert backend.purge_tag("app1") == 2
        assert backend.keys() == ["c"]
        assert backend.purge_tag("app1") == 0
        assert backend.metrics.deletes == 2

    def test_close_releases_client(self):
        client = _redis_client()
        backend = RedisBackend(client=client)
        backend.close()
        if hasattr(client, "closed"):
            assert client.closed

    def test_unreachable_server_names_url_and_suggests_fallback(self):
        """The construct-time ping failure is a clear startup error:
        it names the target URL and points at --cache-backend memory."""

        class DeadClient(FakeRedisClient):
            def ping(self):
                raise ConnectionError("connection refused")

        with pytest.raises(RuntimeModelError) as excinfo:
            RedisBackend("redis://db.example:6379/0", client=DeadClient())
        message = str(excinfo.value)
        assert "redis://db.example:6379/0" in message
        assert "is the server reachable" in message
        assert "--cache-backend memory" in message


class FlakyRedisClient(FakeRedisClient):
    """A client whose next ``fail_next`` reads raise ConnectionError —
    the *transient* failure shape (vs ``fail_reads``' permanent one)."""

    def __init__(self, fail_next: int = 0):
        super().__init__()
        self.fail_next = fail_next

    def get(self, key):
        if self.fail_next > 0:
            self.fail_next -= 1
            raise ConnectionError("injected transient fault")
        return super().get(key)


class TestResilientBackend:
    """The transient-failure leg of the conformance suite: retry with
    backoff then success, and circuit-breaker degradation onto the
    in-memory fallback — both visible on the metrics the CLI line
    reports."""

    def _wrap(self, client, **kwargs):
        from repro.pipeline.store import ResilientBackend, RetryPolicy

        kwargs.setdefault(
            "policy", RetryPolicy(base_delay=0.0, jitter=0.0)
        )
        kwargs.setdefault("sleep", lambda _seconds: None)
        return ResilientBackend(RedisBackend(client=client), **kwargs)

    def test_transient_fault_retries_then_succeeds(self):
        client = FlakyRedisClient(fail_next=1)
        backend = self._wrap(client)
        backend.put("a", b"A")
        assert backend.get("a") == b"A"
        metrics = backend.metrics
        assert metrics.retries == 1
        assert metrics.errors == 0
        assert metrics.hits == 1
        assert not backend.tripped

    def test_exhausted_retries_degrade_to_counted_error_miss(self):
        client = FlakyRedisClient(fail_next=3)  # the whole budget
        backend = self._wrap(client)
        backend.put("a", b"A")
        assert backend.get("a") is None
        metrics = backend.metrics
        assert metrics.retries == 2
        assert metrics.errors == 1
        assert metrics.misses == 1
        assert not backend.tripped
        # The fault was transient: the next get recovers on the wire.
        assert backend.get("a") == b"A"

    def test_breaker_trips_onto_memory_fallback(self):
        import warnings

        client = _redis_client()
        backend = self._wrap(client, breaker_threshold=4)
        backend.put("a", b"A")
        client.fail_reads = True
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert backend.get("a") is None  # failures 1-3: exhausted
            assert backend.get("a") is None  # failure 4: breaker opens
        assert backend.tripped
        assert any(
            "circuit breaker" in str(warning.message)
            for warning in caught
        )
        # Post-trip operations never touch the wire again — even after
        # the server 'recovers' — and repeats hit the fallback.
        client.fail_reads = False
        backend.put("b", b"B")
        assert backend.get("b") == b"B"
        assert backend.fallback.get("b") == b"B"
        assert client.get(backend.data_key("b")) is None  # not on wire
        assert backend.metrics.degraded >= 3

    def test_wrapped_store_keeps_conformance_and_counts_resilience(
        self, fig1_app
    ):
        """TreeStore over the wrapper still round-trips identically,
        and the retry/degradation counters surface on the synthesis
        summary line the CLI prints."""
        client = FlakyRedisClient(fail_next=1)
        store = TreeStore(backend=self._wrap(client))
        root = ftss(fig1_app)
        stats = SynthesisStats()
        tree = synthesize_tree(
            fig1_app, root, CONFIG, stats=stats, store=store
        )
        cached = synthesize_tree(
            fig1_app, root, CONFIG, stats=stats, store=store
        )
        assert_trees_identical(tree, cached)
        stats.absorb_store(store)
        line = stats.summary_line()
        assert "store[redis]" in line
        assert "1 retries" in line
        assert "degraded" not in line  # breaker never tripped


@pytest.mark.skipif(
    not os.environ.get("REPRO_REDIS_URL"),
    reason="no real redis server configured (set REPRO_REDIS_URL)",
)
class TestRealRedisServer:
    """The nightly leg: the same conformance against a live server."""

    @pytest.fixture
    def store(self):
        pytest.importorskip("redis")
        url = os.environ["REPRO_REDIS_URL"]
        try:
            backend = RedisBackend(url, namespace="repro:test:conformance")
        except Exception as exc:  # pragma: no cover - server down
            pytest.skip(f"redis server unreachable: {exc}")
        for key in backend.keys():
            backend.delete(key)
        yield TreeStore(backend=backend)
        backend.close()

    def test_round_trip_and_repeat_hits(self, store, fig1_app):
        root = ftss(fig1_app)
        first = SynthesisStats()
        tree = synthesize_tree(
            fig1_app, root, CONFIG, stats=first, store=store
        )
        second = SynthesisStats()
        cached = synthesize_tree(
            fig1_app, root, CONFIG, stats=second, store=store
        )
        assert second.trees_built == 0
        assert (second.store_hits, second.store_misses) == (1, 0)
        assert_trees_identical(tree, cached)


class TestDriverLevelCaching:
    """A repeated experiment run is a 100%-hit, zero-build run — on
    every backend."""

    CONFIG = Table1Config(
        tree_sizes=(1, 2, 4), n_apps=1, n_processes=12, n_scenarios=30,
        seed=3,
    )

    @pytest.fixture(params=BACKENDS)
    def store(self, request, tmp_path):
        return make_store(request.param, tmp_path)

    def test_second_table1_run_is_fully_cached(self, store):
        first = SynthesisStats()
        rows = run_table1(self.CONFIG, stats=first, store=store)
        assert first.trees_built > 0
        assert first.store_hits == 0
        assert first.store_misses == first.trees_built

        second = SynthesisStats()
        again = run_table1(self.CONFIG, stats=second, store=store)
        assert second.trees_built == 0  # zero FTQS builds
        assert second.store_misses == 0
        assert second.store_hits == first.store_misses  # 100% hits

        # Cached-tree evaluation is bit-identical: every reported cell
        # matches the fresh-build run exactly.
        for row, twin in zip(rows, again):
            assert twin.nodes == row.nodes
            assert twin.utility_percent == row.utility_percent
            assert twin.n_apps == row.n_apps
