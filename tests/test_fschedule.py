"""Unit tests for f-schedules and the shared-slack timing analysis."""

import pytest

from repro.errors import SchedulingError
from repro.examples_support import paper_fig3_recovery
from repro.model.application import Application
from repro.model.graph import ProcessGraph
from repro.model.process import hard_process, soft_process
from repro.scheduling.fschedule import (
    FSchedule,
    ScheduledEntry,
    shared_recovery_demand,
)
from repro.utility.functions import ConstantUtility, StepUtility


class TestSharedRecoveryDemand:
    def test_zero_faults_zero_demand(self):
        assert shared_recovery_demand([(40, 3)], 0) == 0

    def test_single_process_all_faults(self):
        # Fig. 3: P1 wcet 30, µ 5, k 2 -> 2 recoveries of 35 each.
        wcet, mu, k = paper_fig3_recovery()
        assert shared_recovery_demand([(wcet + mu, k)], k) == 70

    def test_greedy_takes_most_expensive_first(self):
        # Two faults over {cost 50 cap 1, cost 30 cap 2}: 50 + 30.
        assert shared_recovery_demand([(30, 2), (50, 1)], 2) == 80

    def test_caps_respected(self):
        # Three faults but expensive process capped at 1.
        assert shared_recovery_demand([(50, 1), (10, 5)], 3) == 70

    def test_fewer_recoverable_than_faults(self):
        assert shared_recovery_demand([(50, 1)], 3) == 50

    def test_sharing_beats_private_reservation(self):
        """Shared slack never exceeds per-process private slack."""
        needs = [(40, 2), (30, 2), (20, 2)]
        k = 2
        shared = shared_recovery_demand(needs, k)
        private = sum(cost * min(cap, k) for cost, cap in needs)
        assert shared <= private


def _two_proc_app(period=300, k=1, mu=10, deadline=200):
    graph = ProcessGraph(
        [
            hard_process("H", 20, 50, deadline),
            soft_process("S", 10, 40, ConstantUtility(10)),
        ],
        [],
        period=period,
    )
    return Application(graph, period=period, k=k, mu=mu)


class TestFScheduleConstruction:
    def test_order_and_positions(self):
        app = _two_proc_app()
        sched = FSchedule(
            app, [ScheduledEntry("H", 1), ScheduledEntry("S", 0)]
        )
        assert sched.order == ["H", "S"]
        assert sched.position("S") == 1
        assert "H" in sched
        assert sched.reexecutions_of("H") == 1

    def test_hard_must_have_budget_reexecutions(self):
        app = _two_proc_app(k=2)
        with pytest.raises(SchedulingError):
            FSchedule(app, [ScheduledEntry("H", 1)])

    def test_duplicate_entry_rejected(self):
        app = _two_proc_app()
        with pytest.raises(SchedulingError):
            FSchedule(
                app, [ScheduledEntry("H", 1), ScheduledEntry("H", 1)]
            )

    def test_unknown_process_rejected(self):
        app = _two_proc_app()
        with pytest.raises(SchedulingError):
            FSchedule(app, [ScheduledEntry("X", 1)])

    def test_precedence_violation_rejected(self, fig1_app):
        # P2 scheduled before its predecessor P1 (P1 not dropped - hard).
        with pytest.raises(SchedulingError):
            FSchedule(
                fig1_app,
                [ScheduledEntry("P2", 0), ScheduledEntry("P1", 1)],
            )

    def test_dropped_predecessor_allows_successor(self):
        """A soft predecessor that is dropped (stale input) does not
        block its consumer (paper §2.1)."""
        graph = ProcessGraph(
            [
                soft_process("A", 5, 10, ConstantUtility(5)),
                soft_process("B", 5, 10, ConstantUtility(5)),
            ],
            [("A", "B")],
            period=100,
        )
        app = Application(graph, period=100, k=0, mu=0)
        sched = FSchedule(app, [ScheduledEntry("B", 0)])
        assert sched.dropped == frozenset({"A"})

    def test_negative_reexecutions_rejected(self):
        with pytest.raises(SchedulingError):
            ScheduledEntry("P", -1)


class TestWorstCaseAnalysis:
    def test_single_hard_process(self):
        app = _two_proc_app(k=1, mu=10)
        sched = FSchedule(app, [ScheduledEntry("H", 1)])
        # WCET 50 + one recovery (50 + 10).
        assert sched.worst_case_completions()["H"] == 110

    def test_shared_slack_two_processes(self, fig1_app):
        sched = FSchedule(
            fig1_app,
            [
                ScheduledEntry("P1", 1),
                ScheduledEntry("P2", 0),
                ScheduledEntry("P3", 0),
            ],
        )
        completions = sched.worst_case_completions()
        # P1: wcet 70 + (70 + 10) = 150 <= d = 180.
        assert completions["P1"] == 150
        # P2: 70 + 70 + 80 (same shared slack, only P1 recoverable).
        assert completions["P2"] == 220
        assert completions["P3"] == 300
        assert sched.is_schedulable()

    def test_soft_reexecutions_consume_slack(self, fig1_app):
        sched = FSchedule(
            fig1_app,
            [
                ScheduledEntry("P1", 1),
                ScheduledEntry("P2", 1),
                ScheduledEntry("P3", 0),
            ],
        )
        # P2's recovery need (70 + 10) equals P1's; k = 1 fault.
        assert sched.worst_case_completions()["P3"] == 300
        assert sched.is_schedulable()

    def test_missing_hard_process_unschedulable(self):
        # H and S are independent; omitting the hard process H makes
        # the schedule unschedulable by definition.
        app = _two_proc_app()
        sched = FSchedule(app, [ScheduledEntry("S", 0)])
        assert not sched.is_schedulable()

    def test_period_overrun_unschedulable(self):
        app = _two_proc_app(period=100, k=1, mu=10, deadline=100)
        with_slack = FSchedule(
            app, [ScheduledEntry("H", 1), ScheduledEntry("S", 0)]
        )
        # 50 + 40 + 60 recovery = 150 > 100.
        assert not with_slack.is_schedulable()

    def test_private_slack_more_pessimistic(self, fig1_app):
        shared = FSchedule(
            fig1_app,
            [
                ScheduledEntry("P1", 1),
                ScheduledEntry("P2", 1),
                ScheduledEntry("P3", 0),
            ],
        )
        private = FSchedule(
            fig1_app,
            [
                ScheduledEntry("P1", 1),
                ScheduledEntry("P2", 1),
                ScheduledEntry("P3", 0),
            ],
            slack_sharing=False,
        )
        assert (
            private.worst_case_completions()["P3"]
            > shared.worst_case_completions()["P3"]
        )

    def test_start_time_shifts_everything(self, fig1_app):
        base = FSchedule(fig1_app, [ScheduledEntry("P1", 1)])
        shifted = FSchedule(
            fig1_app, [ScheduledEntry("P1", 1)], start_time=40
        )
        assert (
            shifted.worst_case_completions()["P1"]
            == base.worst_case_completions()["P1"] + 40
        )


class TestExpectedCase:
    def test_expected_completions_use_aet(self, fig1_app):
        sched = FSchedule(
            fig1_app,
            [
                ScheduledEntry("P1", 1),
                ScheduledEntry("P2", 0),
                ScheduledEntry("P3", 0),
            ],
        )
        completions = sched.expected_completions()
        assert completions == {"P1": 50, "P2": 100, "P3": 160}

    def test_fig4_average_utilities(self, fig1_app):
        """S1 earns 30 and S2 earns 60 in the average case (paper §3)."""
        s1 = FSchedule(
            fig1_app,
            [
                ScheduledEntry("P1", 1),
                ScheduledEntry("P2", 0),
                ScheduledEntry("P3", 0),
            ],
        )
        s2 = FSchedule(
            fig1_app,
            [
                ScheduledEntry("P1", 1),
                ScheduledEntry("P3", 0),
                ScheduledEntry("P2", 0),
            ],
        )
        assert s1.expected_utility() == 30.0
        assert s2.expected_utility() == 60.0

    def test_fig4_b5_early_completion(self, fig1_app):
        """If P1 finishes at 30, the S1 ordering earns 70 (Fig. 4b5)."""
        s1_tail = FSchedule(
            fig1_app,
            [ScheduledEntry("P2", 0), ScheduledEntry("P3", 0)],
            start_time=30,
            prior_completed=["P1"],
        )
        assert s1_tail.expected_utility() == 70.0

    def test_completions_beyond_period_earn_nothing(self):
        graph = ProcessGraph(
            [
                soft_process("A", 50, 60, StepUtility(10, [])),
                soft_process("B", 50, 60, StepUtility(10, [])),
            ],
            [],
            period=100,
        )
        app = Application(graph, period=100, k=0, mu=0)
        sched = FSchedule(
            app, [ScheduledEntry("A", 0), ScheduledEntry("B", 0)]
        )
        # A completes at 55, B at 110 > period -> only A counts.
        assert sched.expected_utility() == 10.0

    def test_dropped_predecessor_degrades_utility(self, fig8_app):
        sched = FSchedule(
            fig8_app,
            [
                ScheduledEntry("P1", 2),
                ScheduledEntry("P3", 0),
                ScheduledEntry("P4", 0),
                ScheduledEntry("P5", 2),
            ],
        )
        assert "P2" in sched.dropped
        # P3 at 60 -> 30; P4 at 90 with alpha 2/3 -> 20.
        assert sched.expected_utility() == pytest.approx(50.0)


class TestDerivation:
    def test_signature_ignores_context(self, fig1_app):
        a = FSchedule(fig1_app, [ScheduledEntry("P1", 1)])
        b = FSchedule(
            fig1_app, [ScheduledEntry("P1", 1)], start_time=40
        )
        assert a.signature() == b.signature()

    def test_tail_context(self, fig1_app):
        sched = FSchedule(
            fig1_app,
            [
                ScheduledEntry("P1", 1),
                ScheduledEntry("P2", 0),
                ScheduledEntry("P3", 0),
            ],
        )
        ctx = sched.tail_context(upto=0, completion_time=42)
        assert ctx["start_time"] == 42
        assert ctx["prior_completed"] == frozenset({"P1"})
        tail = FSchedule(
            fig1_app,
            [ScheduledEntry("P3", 0), ScheduledEntry("P2", 0)],
            fault_budget=1,
            **ctx,
        )
        assert tail.order == ["P3", "P2"]

    def test_tail_context_bad_position(self, fig1_app):
        sched = FSchedule(fig1_app, [ScheduledEntry("P1", 1)])
        with pytest.raises(SchedulingError):
            sched.tail_context(upto=5, completion_time=10)

    def test_with_entries_preserves_context(self, fig1_app):
        sched = FSchedule(
            fig1_app, [ScheduledEntry("P1", 1)], start_time=10
        )
        derived = sched.with_entries(
            [ScheduledEntry("P1", 1), ScheduledEntry("P2", 0)]
        )
        assert derived.start_time == 10
        assert derived.order == ["P1", "P2"]
